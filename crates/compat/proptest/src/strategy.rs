//! The [`Strategy`] trait and core combinators.

use crate::test_rng::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of values for property tests.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy just
/// produces one value per call.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Reject values failing the predicate (regenerating up to a bounded
    /// number of attempts).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, f }
    }

    /// Recursive structures: repeatedly close `self` (the leaf strategy)
    /// under `recurse`, to the given depth. `_desired_size` and
    /// `_expected_branch_size` are accepted for API compatibility; the
    /// eager bounded-depth expansion already bounds output size.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = BoxedStrategy::new(self);
        let mut strat = base.clone();
        for _ in 0..depth {
            let grown = BoxedStrategy::new(recurse(strat));
            // Lean toward leaves so expected size stays small.
            strat = BoxedStrategy::new(Union::new(vec![(2, base.clone()), (1, grown)]));
        }
        strat
    }

    /// Type-erase into a clonable, reference-counted strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(self)
    }
}

/// Clonable type-erased strategy (`Rc`-backed; tests are single-threaded).
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> BoxedStrategy<V> {
    /// Erase a concrete strategy.
    pub fn new(s: impl Strategy<Value = V> + 'static) -> Self {
        BoxedStrategy(Rc::new(s))
    }
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
    }
}

/// Weighted choice between same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms.
    ///
    /// # Panics
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = arms.iter().map(|&(w, _)| w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive-weight arm");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut roll = rng.below(self.total);
        for (w, arm) in &self.arms {
            if roll < *w as u64 {
                return arm.generate(rng);
            }
            roll -= *w as u64;
        }
        unreachable!("weights summed during construction")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        start + rng.unit_f64() * (end - start)
    }
}

/// Regex-subset string strategy: `"[a-z][a-z0-9_]{0,8}"`, `"\\PC{0,200}"`, …
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+),)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_rng::TestRng;

    #[test]
    fn ranges_maps_filters_compose() {
        let mut rng = TestRng::from_seed(1);
        let s = (0u32..10).prop_map(|x| x * 2).prop_filter("nonzero", |&x| x > 0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v > 0 && v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn union_respects_arms() {
        let mut rng = TestRng::from_seed(2);
        let s = Union::new(vec![
            (1, BoxedStrategy::new(Just(1u8))),
            (1, BoxedStrategy::new(Just(2u8))),
        ]);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && !seen[0]);
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn size(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => {
                    assert!(*v < 10, "leaf outside generator range");
                    1
                }
                Tree::Node(a, b) => 1 + size(a) + size(b),
            }
        }
        let s = (0u8..10).prop_map(Tree::Leaf).prop_recursive(3, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::from_seed(3);
        let mut max = 0;
        for _ in 0..200 {
            max = max.max(size(&s.generate(&mut rng)));
        }
        assert!(max > 1, "recursion never fired");
        assert!(max <= 31, "depth bound exceeded: {max}");
    }
}
