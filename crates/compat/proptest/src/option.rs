//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_rng::TestRng;

/// Strategy for `Option<S::Value>`; `None` one time in four.
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// `prop::option::of(strategy)`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
