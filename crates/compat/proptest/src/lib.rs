//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds without registry access, so the external `proptest`
//! dev-dependency is replaced by this shim. It implements the API subset the
//! workspace's property tests use: the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_filter` / `prop_recursive`, range and tuple and
//! regex-pattern strategies, `prop::collection::vec`, `prop::option::of`,
//! [`arbitrary::any`], and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_oneof!` macros.
//!
//! Differences from real proptest: cases are generated from a deterministic
//! per-test RNG (seeded from the test's module path) rather than an entropy
//! source with persistence files, and failing inputs are **not shrunk** —
//! a failure panics with the assertion message directly.

pub mod arbitrary;
pub mod collection;
pub mod config;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_rng;

pub mod prelude {
    //! Single-import surface, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! Namespace re-exports (`prop::collection`, `prop::option`).
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Runs the cases of one `proptest!` test function.
///
/// Not part of the public API of real proptest; used by the generated code.
#[doc(hidden)]
pub fn run_cases(
    config: &config::ProptestConfig,
    test_path: &str,
    mut case: impl FnMut(&mut test_rng::TestRng),
) {
    let mut rng = test_rng::TestRng::deterministic(test_path);
    for _ in 0..config.cases {
        case(&mut rng);
    }
}

/// `proptest! { ... }`: run each enclosed test function over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::config::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $( $pat:pat_param in $strat:expr ),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::run_cases(
                    &config,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__proptest_rng| {
                        $(
                            let $pat = $crate::strategy::Strategy::generate(
                                &($strat),
                                __proptest_rng,
                            );
                        )*
                        // Bodies may `return Ok(())` early, as in real
                        // proptest where they run inside a Result-returning
                        // function.
                        let __proptest_outcome: ::std::result::Result<(), ::std::string::String> =
                            (move || {
                                $body
                                Ok(())
                            })();
                        if let Err(message) = __proptest_outcome {
                            panic!("proptest case failed: {message}");
                        }
                    },
                );
            }
        )*
    };
}

/// Shim `prop_assert!`: panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Shim `prop_assert_eq!`: panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Shim `prop_assert_ne!`: panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::BoxedStrategy::new($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::BoxedStrategy::new($strat)) ),+
        ])
    };
}
