//! Property tests: sparse vectors and dense bitsets agree with a BTreeSet
//! reference model on all set operations.

use logr_feature::{BitVec, FeatureId, QueryVector};
use proptest::prelude::*;
use std::collections::BTreeSet;

const UNIVERSE: u32 = 192;

fn arb_ids() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0..UNIVERSE, 0..24)
}

fn qv(ids: &[u32]) -> QueryVector {
    QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
}

fn set(ids: &[u32]) -> BTreeSet<u32> {
    ids.iter().copied().collect()
}

proptest! {
    #[test]
    fn vector_matches_set_model(a in arb_ids(), b in arb_ids()) {
        let (va, vb) = (qv(&a), qv(&b));
        let (sa, sb) = (set(&a), set(&b));

        prop_assert_eq!(va.len(), sa.len());
        prop_assert_eq!(va.intersection_size(&vb), sa.intersection(&sb).count());
        prop_assert_eq!(va.union_size(&vb), sa.union(&sb).count());
        prop_assert_eq!(
            va.symmetric_difference_size(&vb),
            sa.symmetric_difference(&sb).count()
        );
        prop_assert_eq!(va.contains_all(&vb), sb.is_subset(&sa));

        let u: BTreeSet<u32> = va.union(&vb).iter().map(|f| f.0).collect();
        prop_assert_eq!(u, sa.union(&sb).copied().collect::<BTreeSet<u32>>());
        let i: BTreeSet<u32> = va.intersection(&vb).iter().map(|f| f.0).collect();
        prop_assert_eq!(i, sa.intersection(&sb).copied().collect::<BTreeSet<u32>>());
    }

    #[test]
    fn bitvec_agrees_with_sparse(a in arb_ids(), b in arb_ids()) {
        let (va, vb) = (qv(&a), qv(&b));
        let da = BitVec::from_query_vector(&va, UNIVERSE as usize);
        let db = BitVec::from_query_vector(&vb, UNIVERSE as usize);

        prop_assert_eq!(da.count_ones(), va.len());
        prop_assert_eq!(da.and_count(&db), va.intersection_size(&vb));
        prop_assert_eq!(da.or_count(&db), va.union_size(&vb));
        prop_assert_eq!(da.xor_count(&db), va.symmetric_difference_size(&vb));
        prop_assert_eq!(da.contains_all(&db), va.contains_all(&vb));
        prop_assert_eq!(da.to_query_vector(), va);
    }

    #[test]
    fn containment_is_a_partial_order(a in arb_ids(), b in arb_ids(), c in arb_ids()) {
        let (va, vb, vc) = (qv(&a), qv(&b), qv(&c));
        // Reflexivity.
        prop_assert!(va.contains_all(&va));
        // Antisymmetry.
        if va.contains_all(&vb) && vb.contains_all(&va) {
            prop_assert_eq!(&va, &vb);
        }
        // Transitivity.
        if va.contains_all(&vb) && vb.contains_all(&vc) {
            prop_assert!(va.contains_all(&vc));
        }
    }

    #[test]
    fn construction_canonical(mut ids in arb_ids()) {
        let v1 = qv(&ids);
        ids.reverse();
        ids.extend(ids.clone()); // duplicates
        let v2 = qv(&ids);
        prop_assert_eq!(v1, v2);
    }
}
