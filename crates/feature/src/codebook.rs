//! The codebook: a bidirectional feature ↔ id mapping.
//!
//! "LogR-compressed data relies on a codebook based on structural elements
//! like SELECT items, FROM tables, or conjunctive WHERE clauses. This
//! codebook provides a bi-directional mapping from SQL queries to a
//! bit-vector encoding and back again" (paper §1). Interning features as
//! dense `u32` ids is what makes vectors, patterns and marginal tables
//! cheap downstream.

use crate::feature::Feature;
use std::collections::HashMap;

/// Dense identifier of an interned [`Feature`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FeatureId(pub u32);

impl FeatureId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interning table assigning dense ids to features, with reverse lookup.
#[derive(Debug, Clone, Default)]
pub struct Codebook {
    features: Vec<Feature>,
    index: HashMap<Feature, FeatureId>,
}

impl Codebook {
    /// Empty codebook.
    pub fn new() -> Self {
        Codebook::default()
    }

    /// Intern a feature, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, feature: Feature) -> FeatureId {
        if let Some(&id) = self.index.get(&feature) {
            return id;
        }
        let id = FeatureId(self.features.len() as u32);
        self.features.push(feature.clone());
        self.index.insert(feature, id);
        id
    }

    /// Look up an already-interned feature.
    pub fn get(&self, feature: &Feature) -> Option<FeatureId> {
        self.index.get(feature).copied()
    }

    /// Reverse lookup: the feature behind an id.
    ///
    /// # Panics
    /// Panics if the id was not produced by this codebook.
    pub fn feature(&self, id: FeatureId) -> &Feature {
        &self.features[id.index()]
    }

    /// Number of distinct interned features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Iterate `(id, feature)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (FeatureId, &Feature)> {
        self.features.iter().enumerate().map(|(i, f)| (FeatureId(i as u32), f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::FeatureClass;

    #[test]
    fn intern_is_idempotent() {
        let mut cb = Codebook::new();
        let a = cb.intern(Feature::select("x"));
        let b = cb.intern(Feature::select("x"));
        assert_eq!(a, b);
        assert_eq!(cb.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut cb = Codebook::new();
        let a = cb.intern(Feature::select("x"));
        let b = cb.intern(Feature::from_table("t"));
        let c = cb.intern(Feature::where_atom("x = ?"));
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
    }

    #[test]
    fn bidirectional_round_trip() {
        let mut cb = Codebook::new();
        let f = Feature::where_atom("status = ?");
        let id = cb.intern(f.clone());
        assert_eq!(cb.feature(id), &f);
        assert_eq!(cb.get(&f), Some(id));
        assert_eq!(cb.get(&Feature::select("nope")), None);
    }

    #[test]
    fn class_distinguishes_same_text() {
        let mut cb = Codebook::new();
        let a = cb.intern(Feature::new(FeatureClass::Select, "x"));
        let b = cb.intern(Feature::new(FeatureClass::GroupBy, "x"));
        assert_ne!(a, b);
        assert_eq!(cb.len(), 2);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut cb = Codebook::new();
        cb.intern(Feature::select("a"));
        cb.intern(Feature::select("b"));
        let collected: Vec<_> = cb.iter().map(|(id, f)| (id.0, f.text.clone())).collect();
        assert_eq!(collected, vec![(0, "a".to_string()), (1, "b".to_string())]);
    }
}
