//! Sparse binary feature vectors.
//!
//! A query is "a vector of its component features" (paper §2.3.1). Feature
//! universes reach thousands of features while queries average ~15, so the
//! canonical representation is a sorted, deduplicated id list. Containment
//! (`b ⊆ q`, the core operation behind every marginal count) is a linear
//! merge.

use crate::codebook::FeatureId;
use std::sync::Arc;

/// A sorted, deduplicated set of feature ids — one query (or pattern) as a
/// sparse binary vector.
///
/// The id storage is a shared `Arc<[FeatureId]>`: vectors are immutable
/// once built, so cloning one (log absorption, baseline rebuilds,
/// snapshot publication) bumps a reference count instead of copying the
/// id list. Comparisons and hashing still see the id *contents* — two
/// equal vectors compare equal whether or not they share storage.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryVector {
    ids: Arc<[FeatureId]>,
}

impl Default for QueryVector {
    fn default() -> Self {
        QueryVector::empty()
    }
}

impl QueryVector {
    /// Build from arbitrary ids (sorts and dedups).
    pub fn new(mut ids: Vec<FeatureId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        QueryVector { ids: ids.into() }
    }

    /// The empty vector.
    pub fn empty() -> Self {
        QueryVector { ids: Arc::from(Vec::new()) }
    }

    /// Number of set features.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if no features are set.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The sorted id slice.
    pub fn ids(&self) -> &[FeatureId] {
        &self.ids
    }

    /// Membership test (binary search).
    pub fn contains(&self, id: FeatureId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Pattern containment `other ⊆ self` — every id of `other` present here.
    pub fn contains_all(&self, other: &QueryVector) -> bool {
        if other.ids.len() > self.ids.len() {
            return false;
        }
        let mut it = self.ids.iter();
        'outer: for needle in other.ids.iter() {
            for id in it.by_ref() {
                if id == needle {
                    continue 'outer;
                }
                if id > needle {
                    return false;
                }
            }
            return false;
        }
        true
    }

    /// Size of the intersection with `other` (linear merge).
    pub fn intersection_size(&self, other: &QueryVector) -> usize {
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Size of the union with `other`.
    pub fn union_size(&self, other: &QueryVector) -> usize {
        self.ids.len() + other.ids.len() - self.intersection_size(other)
    }

    /// Size of the symmetric difference — the Hamming distance between the
    /// two binary vectors.
    pub fn symmetric_difference_size(&self, other: &QueryVector) -> usize {
        self.union_size(other) - self.intersection_size(other)
    }

    /// New vector holding the union of both id sets.
    pub fn union(&self, other: &QueryVector) -> QueryVector {
        let mut ids = Vec::with_capacity(self.ids.len() + other.ids.len());
        ids.extend_from_slice(&self.ids);
        ids.extend_from_slice(&other.ids);
        QueryVector::new(ids)
    }

    /// New vector holding the intersection of both id sets.
    pub fn intersection(&self, other: &QueryVector) -> QueryVector {
        let mut ids = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    ids.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        QueryVector { ids: ids.into() }
    }

    /// Iterate over set feature ids.
    pub fn iter(&self) -> impl Iterator<Item = FeatureId> + '_ {
        self.ids.iter().copied()
    }
}

impl FromIterator<FeatureId> for QueryVector {
    fn from_iter<T: IntoIterator<Item = FeatureId>>(iter: T) -> Self {
        QueryVector::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qv(ids: &[u32]) -> QueryVector {
        QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let v = qv(&[3, 1, 2, 1, 3]);
        assert_eq!(v.len(), 3);
        assert_eq!(v.ids().iter().map(|i| i.0).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn contains_and_contains_all() {
        let v = qv(&[1, 3, 5, 7]);
        assert!(v.contains(FeatureId(5)));
        assert!(!v.contains(FeatureId(4)));
        assert!(v.contains_all(&qv(&[1, 7])));
        assert!(v.contains_all(&qv(&[])));
        assert!(!v.contains_all(&qv(&[1, 2])));
        assert!(!qv(&[1]).contains_all(&v));
        // Reflexive.
        assert!(v.contains_all(&v));
    }

    #[test]
    fn set_operation_sizes() {
        let a = qv(&[1, 2, 3, 4]);
        let b = qv(&[3, 4, 5]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(a.union_size(&b), 5);
        assert_eq!(a.symmetric_difference_size(&b), 3);
    }

    #[test]
    fn union_and_intersection_vectors() {
        let a = qv(&[1, 2]);
        let b = qv(&[2, 3]);
        assert_eq!(a.union(&b), qv(&[1, 2, 3]));
        assert_eq!(a.intersection(&b), qv(&[2]));
        assert_eq!(a.intersection(&qv(&[9])), qv(&[]));
    }

    #[test]
    fn empty_vector_behaviour() {
        let e = QueryVector::empty();
        assert!(e.is_empty());
        assert_eq!(e.union_size(&e), 0);
        assert!(qv(&[1]).contains_all(&e));
        assert!(!e.contains_all(&qv(&[1])));
    }

    #[test]
    fn hamming_distance_symmetry() {
        let a = qv(&[1, 2, 3]);
        let b = qv(&[2, 4]);
        assert_eq!(a.symmetric_difference_size(&b), b.symmetric_difference_size(&a));
        assert_eq!(a.symmetric_difference_size(&a), 0);
    }

    #[test]
    fn from_iterator() {
        let v: QueryVector = [FeatureId(2), FeatureId(0)].into_iter().collect();
        assert_eq!(v, qv(&[0, 2]));
    }
}
