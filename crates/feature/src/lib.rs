//! Feature substrate for LogR.
//!
//! LogR reduces query-log compression to compactly representing *bags of
//! feature vectors* (paper §1, §2.2). This crate supplies that reduction:
//!
//! * [`feature`] — the Aligon et al. feature scheme: each feature is a
//!   ⟨column, SELECT⟩, ⟨table, FROM⟩ or ⟨atom, WHERE⟩ element (plus the
//!   Makiyama-style GROUP BY / ORDER BY extension, off by default);
//! * [`codebook`] — the bidirectional feature ↔ id mapping that underlies
//!   the bit-vector encoding of queries;
//! * [`vector`] — sparse sorted feature-id vectors with containment and
//!   overlap operations;
//! * [`bitvec`] — dense bitset mirror for distance-heavy code paths;
//! * [`extract`] — conjunctive query → feature set;
//! * [`log`] — [`log::QueryLog`]: the deduplicated, multiplicity-weighted
//!   bag of feature vectors, plus [`log::LogIngest`], the SQL-text front end
//!   that also accumulates the paper's Table 1 statistics.

pub mod bitvec;
pub mod codebook;
pub mod extract;
pub mod feature;
pub mod labeled;
pub mod log;
pub mod vector;

pub use bitvec::BitVec;
pub use codebook::{Codebook, FeatureId};
pub use extract::{branch_features, extract_features, ExtractConfig};
pub use feature::{Feature, FeatureClass};
pub use labeled::{LabeledDataset, LabeledRow};
pub use log::{anonymized_branches, IngestStats, LogIngest, QueryLog};
// The branch type `anonymized_branches` yields and `QueryLog::add_conjunctive`
// consumes, re-exported so featurization callers need not name `logr-sql`.
pub use logr_sql::ConjunctiveQuery;
pub use vector::QueryVector;
