//! Labeled binary datasets — the input shape of the itemset-summarization
//! baselines (paper §8).
//!
//! Laserlight consumes multi-dimensional binary data augmented with a binary
//! outcome attribute; MTV consumes plain binary transactions. Both are
//! covered by a bag of (feature vector, label, multiplicity) rows.

use crate::codebook::FeatureId;
use crate::vector::QueryVector;
use std::collections::HashMap;

/// One distinct row of a labeled dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledRow {
    /// The binary feature vector.
    pub vector: QueryVector,
    /// The augmented binary attribute (Laserlight's `v(t)`).
    pub label: bool,
    /// Multiplicity.
    pub weight: u64,
}

/// A bag of labeled binary rows over a fixed feature universe.
#[derive(Debug, Clone, Default)]
pub struct LabeledDataset {
    rows: Vec<LabeledRow>,
    index: HashMap<(QueryVector, bool), usize>,
    n_features: usize,
    /// Human-readable names per feature id (optional; empty = unnamed).
    feature_names: Vec<String>,
}

impl LabeledDataset {
    /// Empty dataset over `n_features` features.
    pub fn new(n_features: usize) -> Self {
        LabeledDataset {
            rows: Vec::new(),
            index: HashMap::new(),
            n_features,
            feature_names: Vec::new(),
        }
    }

    /// Attach feature names (length must match the universe).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn with_feature_names(mut self, names: Vec<String>) -> Self {
        assert_eq!(names.len(), self.n_features, "one name per feature");
        self.feature_names = names;
        self
    }

    /// Add a row (merges with an identical existing row).
    pub fn push(&mut self, vector: QueryVector, label: bool, weight: u64) {
        if weight == 0 {
            return;
        }
        if let Some(&last) = vector.ids().last() {
            assert!(last.index() < self.n_features, "feature id outside universe");
        }
        if let Some(&i) = self.index.get(&(vector.clone(), label)) {
            self.rows[i].weight += weight;
            return;
        }
        self.index.insert((vector.clone(), label), self.rows.len());
        self.rows.push(LabeledRow { vector, label, weight });
    }

    /// The distinct rows.
    pub fn rows(&self) -> &[LabeledRow] {
        &self.rows
    }

    /// Feature universe size.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Name of a feature (empty string when unnamed).
    pub fn feature_name(&self, f: FeatureId) -> &str {
        self.feature_names.get(f.index()).map(String::as_str).unwrap_or("")
    }

    /// Total row count including multiplicities.
    pub fn total(&self) -> u64 {
        self.rows.iter().map(|r| r.weight).sum()
    }

    /// Number of distinct (vector, label) rows.
    pub fn distinct(&self) -> usize {
        self.rows.len()
    }

    /// Weighted fraction of rows with `label = true`.
    pub fn label_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let pos: u64 = self.rows.iter().filter(|r| r.label).map(|r| r.weight).sum();
        pos as f64 / total as f64
    }

    /// Weighted support of a pattern (rows containing all its features).
    pub fn support(&self, pattern: &QueryVector) -> u64 {
        self.rows.iter().filter(|r| r.vector.contains_all(pattern)).map(|r| r.weight).sum()
    }

    /// Weighted label rate among rows containing the pattern; `None` when
    /// no row matches.
    pub fn label_rate_within(&self, pattern: &QueryVector) -> Option<f64> {
        let mut matched = 0u64;
        let mut pos = 0u64;
        for r in &self.rows {
            if r.vector.contains_all(pattern) {
                matched += r.weight;
                if r.label {
                    pos += r.weight;
                }
            }
        }
        if matched == 0 {
            None
        } else {
            Some(pos as f64 / matched as f64)
        }
    }

    /// Per-feature marginal probabilities.
    pub fn marginals(&self) -> Vec<f64> {
        let total = self.total();
        let mut counts = vec![0u64; self.n_features];
        for r in &self.rows {
            for f in r.vector.iter() {
                counts[f.index()] += r.weight;
            }
        }
        counts.into_iter().map(|c| if total == 0 { 0.0 } else { c as f64 / total as f64 }).collect()
    }

    /// Restrict to a subset of row indices (multiplicities preserved).
    pub fn subset(&self, row_indices: &[usize]) -> LabeledDataset {
        let mut out = LabeledDataset::new(self.n_features);
        out.feature_names = self.feature_names.clone();
        for &i in row_indices {
            let r = &self.rows[i];
            out.push(r.vector.clone(), r.label, r.weight);
        }
        out
    }

    /// View as an unlabeled [`crate::log::QueryLog`]-style bag: distinct
    /// vectors with multiplicities (labels folded away). Used when feeding
    /// the dataset to LogR's own machinery (naive encodings, clustering).
    pub fn to_query_log(&self) -> crate::log::QueryLog {
        let mut log = crate::log::QueryLog::new();
        for r in &self.rows {
            log.add_vector(r.vector.clone(), r.weight);
        }
        // Make the universe explicit even if high feature ids never occur.
        if self.n_features > 0 {
            log.reserve_universe(self.n_features);
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qv(ids: &[u32]) -> QueryVector {
        QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
    }

    fn sample() -> LabeledDataset {
        let mut d = LabeledDataset::new(4);
        d.push(qv(&[0, 1]), true, 3);
        d.push(qv(&[0]), false, 2);
        d.push(qv(&[2]), true, 1);
        d
    }

    #[test]
    fn totals_and_rates() {
        let d = sample();
        assert_eq!(d.total(), 6);
        assert_eq!(d.distinct(), 3);
        assert!((d.label_rate() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn push_merges_identical_rows() {
        let mut d = sample();
        d.push(qv(&[0, 1]), true, 2);
        assert_eq!(d.distinct(), 3);
        assert_eq!(d.total(), 8);
        // Same vector, different label: separate row.
        d.push(qv(&[0, 1]), false, 1);
        assert_eq!(d.distinct(), 4);
    }

    #[test]
    fn support_and_conditional_rate() {
        let d = sample();
        assert_eq!(d.support(&qv(&[0])), 5);
        assert_eq!(d.label_rate_within(&qv(&[0])), Some(0.6));
        assert_eq!(d.label_rate_within(&qv(&[0, 1])), Some(1.0));
        assert_eq!(d.label_rate_within(&qv(&[3])), None);
    }

    #[test]
    fn marginals_weighted() {
        let d = sample();
        let m = d.marginals();
        assert!((m[0] - 5.0 / 6.0).abs() < 1e-12);
        assert!((m[1] - 0.5).abs() < 1e-12);
        assert_eq!(m[3], 0.0);
    }

    #[test]
    fn subset_preserves_weights() {
        let d = sample();
        let s = d.subset(&[0, 2]);
        assert_eq!(s.total(), 4);
        assert_eq!(s.distinct(), 2);
        assert_eq!(s.n_features(), 4);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn feature_outside_universe_panics() {
        let mut d = LabeledDataset::new(2);
        d.push(qv(&[5]), true, 1);
    }

    #[test]
    fn to_query_log_folds_labels() {
        let mut d = LabeledDataset::new(4);
        d.push(qv(&[0, 1]), true, 1);
        d.push(qv(&[0, 1]), false, 2);
        let log = d.to_query_log();
        assert_eq!(log.distinct_count(), 1);
        assert_eq!(log.total_queries(), 3);
        assert_eq!(log.num_features(), 4);
    }

    #[test]
    fn feature_names_round_trip() {
        let d =
            LabeledDataset::new(2).with_feature_names(vec!["cap=red".into(), "cap=blue".into()]);
        assert_eq!(d.feature_name(FeatureId(1)), "cap=blue");
        assert_eq!(d.feature_name(FeatureId(9)), "");
    }
}
