//! The Aligon et al. feature scheme (paper §2.2).
//!
//! Each feature is a structural query element tagged with the clause it
//! appears in. Example 1 of the paper: `SELECT _id, sms_type, _time FROM
//! Messages WHERE status=? AND transport_type=?` has six features —
//! ⟨_id, SELECT⟩, ⟨sms_type, SELECT⟩, ⟨_time, SELECT⟩, ⟨Messages, FROM⟩,
//! ⟨status=?, WHERE⟩ and ⟨transport_type=?, WHERE⟩.

use std::fmt;

/// The clause a feature was extracted from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FeatureClass {
    /// Projected column / expression.
    Select,
    /// Source table or derived table.
    From,
    /// Conjunctive WHERE atom.
    Where,
    /// GROUP BY expression (Makiyama-scheme extension, optional).
    GroupBy,
    /// ORDER BY key (Makiyama-scheme extension, optional).
    OrderBy,
    /// Mined log template (free-form service logs; `logr-source`'s
    /// Drain-style miner — the structural skeleton of a record with
    /// variable positions wildcarded).
    Template,
    /// Parameter class of a variable position in a mined template
    /// (number, hex id, IP, path, …).
    Param,
}

impl FeatureClass {
    /// Short uppercase label used in feature rendering.
    pub fn label(self) -> &'static str {
        match self {
            FeatureClass::Select => "SELECT",
            FeatureClass::From => "FROM",
            FeatureClass::Where => "WHERE",
            FeatureClass::GroupBy => "GROUPBY",
            FeatureClass::OrderBy => "ORDERBY",
            FeatureClass::Template => "TEMPLATE",
            FeatureClass::Param => "PARAM",
        }
    }
}

impl fmt::Display for FeatureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// A single query feature: canonical text plus its clause class.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Feature {
    /// Clause class. Ordered first so features sort by clause.
    pub class: FeatureClass,
    /// Canonical text (printed by the SQL printer, so two spellings of the
    /// same atom coincide).
    pub text: String,
}

impl Feature {
    /// Construct a feature.
    pub fn new(class: FeatureClass, text: impl Into<String>) -> Self {
        Feature { class, text: text.into() }
    }

    /// ⟨column, SELECT⟩ convenience constructor.
    pub fn select(text: impl Into<String>) -> Self {
        Feature::new(FeatureClass::Select, text)
    }

    /// ⟨table, FROM⟩ convenience constructor.
    pub fn from_table(text: impl Into<String>) -> Self {
        Feature::new(FeatureClass::From, text)
    }

    /// ⟨atom, WHERE⟩ convenience constructor.
    pub fn where_atom(text: impl Into<String>) -> Self {
        Feature::new(FeatureClass::Where, text)
    }

    /// ⟨template, TEMPLATE⟩ convenience constructor (mined log templates).
    pub fn template(text: impl Into<String>) -> Self {
        Feature::new(FeatureClass::Template, text)
    }

    /// ⟨class, PARAM⟩ convenience constructor (template parameter classes).
    pub fn param(text: impl Into<String>) -> Self {
        Feature::new(FeatureClass::Param, text)
    }
}

impl fmt::Display for Feature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}⟩", self.text, self.class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Feature::select("_id").to_string(), "⟨_id, SELECT⟩");
        assert_eq!(Feature::from_table("Messages").to_string(), "⟨Messages, FROM⟩");
        assert_eq!(Feature::where_atom("status = ?").to_string(), "⟨status = ?, WHERE⟩");
    }

    #[test]
    fn features_order_by_clause_then_text() {
        let mut fs = [
            Feature::where_atom("a = ?"),
            Feature::select("z"),
            Feature::from_table("t"),
            Feature::select("a"),
        ];
        fs.sort();
        assert_eq!(
            fs.iter().map(|f| f.class).collect::<Vec<_>>(),
            vec![
                FeatureClass::Select,
                FeatureClass::Select,
                FeatureClass::From,
                FeatureClass::Where
            ]
        );
        assert_eq!(fs[0].text, "a");
        assert_eq!(fs[1].text, "z");
    }

    #[test]
    fn equality_is_class_sensitive() {
        assert_ne!(Feature::select("x"), Feature::where_atom("x"));
        assert_eq!(Feature::select("x"), Feature::select("x"));
    }
}
