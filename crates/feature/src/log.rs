//! The query log as a bag of feature vectors, plus the SQL ingestion front
//! end that accumulates the paper's Table 1 statistics.
//!
//! Aggregate workload statistics are order-independent (paper §1), so the
//! log stores **distinct** feature vectors with multiplicities. Every
//! downstream algorithm — entropy, marginals, clustering — is multiplicity-
//! weighted, which is what makes million-query logs tractable when they
//! contain only hundreds-to-thousands of distinct queries.

use crate::codebook::{Codebook, FeatureId};
use crate::extract::{extract_features, ExtractConfig};
use crate::feature::Feature;
use crate::vector::QueryVector;
use logr_sql::{anonymize_statement, parse_select, regularize, ConjunctiveQuery, ParseError};
use std::collections::HashMap;

/// Deduplicated, multiplicity-weighted bag of query feature vectors.
#[derive(Debug, Clone, Default)]
pub struct QueryLog {
    codebook: Codebook,
    entries: Vec<(QueryVector, u64)>,
    index: HashMap<QueryVector, usize>,
    total: u64,
    config: ExtractConfig,
    /// One past the largest feature id seen in any vector — lets callers add
    /// raw vectors without routing every feature through the codebook.
    max_feature: usize,
}

impl QueryLog {
    /// Empty log using the plain Aligon feature scheme.
    pub fn new() -> Self {
        QueryLog::default()
    }

    /// Empty log with an explicit extraction configuration.
    pub fn with_config(config: ExtractConfig) -> Self {
        QueryLog { config, ..QueryLog::default() }
    }

    /// Add a pre-extracted feature vector with multiplicity `count`.
    pub fn add_vector(&mut self, vector: QueryVector, count: u64) {
        if count == 0 {
            return;
        }
        if let Some(&last) = vector.ids().last() {
            self.max_feature = self.max_feature.max(last.index() + 1);
        }
        self.total += count;
        if let Some(&i) = self.index.get(&vector) {
            self.entries[i].1 += count;
            return;
        }
        self.index.insert(vector.clone(), self.entries.len());
        self.entries.push((vector, count));
    }

    /// Extract features from a conjunctive query and add it.
    pub fn add_conjunctive(&mut self, query: &ConjunctiveQuery, count: u64) {
        let v = extract_features(query, &mut self.codebook, self.config);
        self.add_vector(v, count);
    }

    /// Intern a pre-extracted feature list (in order) and add the
    /// resulting vector with multiplicity `count` — the source-agnostic
    /// twin of [`QueryLog::add_conjunctive`]: feeding it the features
    /// [`crate::extract::branch_features`] yields for a branch interns
    /// them in the same order `add_conjunctive` would, so the two paths
    /// build bit-identical logs.
    pub fn add_features(&mut self, features: &[Feature], count: u64) {
        let ids: Vec<_> = features.iter().map(|f| self.codebook.intern(f.clone())).collect();
        self.add_vector(QueryVector::new(ids), count);
    }

    /// The codebook mapping features to ids.
    pub fn codebook(&self) -> &Codebook {
        &self.codebook
    }

    /// Mutable codebook access (for callers pre-interning pattern features).
    pub fn codebook_mut(&mut self) -> &mut Codebook {
        &mut self.codebook
    }

    /// Distinct entries as `(vector, multiplicity)` pairs.
    pub fn entries(&self) -> &[(QueryVector, u64)] {
        &self.entries
    }

    /// Total queries including multiplicities.
    pub fn total_queries(&self) -> u64 {
        self.total
    }

    /// Number of distinct feature vectors.
    pub fn distinct_count(&self) -> usize {
        self.entries.len()
    }

    /// Size of the feature universe: the larger of the codebook and the
    /// largest raw feature id seen.
    pub fn num_features(&self) -> usize {
        self.codebook.len().max(self.max_feature)
    }

    /// Widen the feature universe to at least `n` features (for logs built
    /// from raw vectors whose high feature ids may not occur).
    pub fn reserve_universe(&mut self, n: usize) {
        self.max_feature = self.max_feature.max(n);
    }

    /// Largest multiplicity of any distinct query.
    pub fn max_multiplicity(&self) -> u64 {
        self.entries.iter().map(|&(_, c)| c).max().unwrap_or(0)
    }

    /// Multiplicity-weighted mean number of features per query.
    pub fn avg_features_per_query(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let weighted: u64 = self.entries.iter().map(|(v, c)| v.len() as u64 * c).sum();
        weighted as f64 / self.total as f64
    }

    /// Per-feature occurrence counts over the whole log.
    pub fn feature_counts(&self) -> Vec<u64> {
        self.feature_counts_for(&self.all_entry_indices())
    }

    /// Per-feature occurrence counts restricted to the given entries.
    pub fn feature_counts_for(&self, entry_indices: &[usize]) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_features()];
        for &i in entry_indices {
            let (v, c) = &self.entries[i];
            for id in v.iter() {
                counts[id.index()] += c;
            }
        }
        counts
    }

    /// Per-feature marginal probabilities `p(Xᵢ = 1)` over the whole log.
    pub fn marginals(&self) -> Vec<f64> {
        self.marginals_for(&self.all_entry_indices())
    }

    /// Marginals restricted to a subset of entries (one mixture component).
    pub fn marginals_for(&self, entry_indices: &[usize]) -> Vec<f64> {
        let total = self.total_for(entry_indices);
        let counts = self.feature_counts_for(entry_indices);
        if total == 0 {
            return vec![0.0; counts.len()];
        }
        counts.into_iter().map(|c| c as f64 / total as f64).collect()
    }

    /// Total multiplicity of a subset of entries.
    pub fn total_for(&self, entry_indices: &[usize]) -> u64 {
        entry_indices.iter().map(|&i| self.entries[i].1).sum()
    }

    /// Number of log queries containing the pattern (`Γ_b(L)`, paper §6.2).
    pub fn support(&self, pattern: &QueryVector) -> u64 {
        self.support_for(pattern, &self.all_entry_indices())
    }

    /// Pattern support restricted to a subset of entries.
    pub fn support_for(&self, pattern: &QueryVector, entry_indices: &[usize]) -> u64 {
        entry_indices
            .iter()
            .filter(|&&i| self.entries[i].0.contains_all(pattern))
            .map(|&i| self.entries[i].1)
            .sum()
    }

    /// All entry indices `0..distinct_count()`.
    pub fn all_entry_indices(&self) -> Vec<usize> {
        (0..self.entries.len()).collect()
    }

    /// Merge another log into this one, translating the other log's feature
    /// ids through feature identity (class + canonical text). New features
    /// are interned; overlapping distinct queries accumulate multiplicity.
    ///
    /// This is how windowed ingestion composes: each window builds its own
    /// log, and windows are absorbed into the long-running baseline.
    pub fn absorb(&mut self, other: &QueryLog) {
        // Translation table: other's id → our id.
        let translation: Vec<FeatureId> = (0..other.codebook.len())
            .map(|i| self.codebook.intern(other.codebook.feature(FeatureId(i as u32)).clone()))
            .collect();
        for (vector, count) in &other.entries {
            let translated: QueryVector = vector
                .iter()
                .map(|id| {
                    translation
                        .get(id.index())
                        .copied()
                        // Raw ids beyond the other codebook pass through.
                        .unwrap_or(id)
                })
                .collect();
            self.add_vector(translated, *count);
        }
    }
}

/// Parse one SQL statement to its anonymized conjunctive branches — the
/// exact vectors-to-be that [`LogIngest::ingest_with_count`] would add for
/// it: `parse → anonymize → regularize`, with unparseable, unsupported,
/// and non-rewritable statements collapsing to an empty branch list
/// (LogIngest counts those in its stats and adds nothing).
///
/// This factors the *statement-shaped* (codebook-independent) half of
/// ingestion out of [`LogIngest`] so streaming callers can cache it per
/// distinct statement: feeding each branch to
/// [`QueryLog::add_conjunctive`] in statement order reproduces the log
/// `LogIngest` would build, bit for bit, without re-parsing statements a
/// sliding window has already seen.
pub fn anonymized_branches(sql: &str) -> Vec<ConjunctiveQuery> {
    let mut stmt = match parse_select(sql) {
        Ok(stmt) => stmt,
        Err(_) => return Vec::new(),
    };
    anonymize_statement(&mut stmt);
    regularized(&stmt).branches
}

/// One regularizer pass over an (already anonymized) statement —
/// non-rewritable statements contribute no branches. The single
/// branch-extraction point both [`LogIngest::ingest_with_count`] and
/// [`anonymized_branches`] feed [`QueryLog::add_conjunctive`] from —
/// cached streaming logs and batch ingestion cannot drift apart.
fn regularized(stmt: &logr_sql::SelectStatement) -> AnonInfo {
    match regularize(stmt) {
        Ok(reg) => AnonInfo {
            was_conjunctive: reg.was_conjunctive,
            rewritable: true,
            branches: reg.branches,
        },
        Err(_) => AnonInfo { was_conjunctive: false, rewritable: false, branches: Vec::new() },
    }
}

/// Counters matching the rows of the paper's Table 1.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Statements offered to the ingester.
    pub total_statements: u64,
    /// Statements that failed to lex/parse.
    pub parse_errors: u64,
    /// Recognized but unsupported statements (stored procedures, DML, …).
    pub unsupported: u64,
    /// Valid SELECT statements ingested.
    pub parsed_selects: u64,
    /// Distinct raw SQL strings.
    pub distinct_raw: usize,
    /// Distinct queries after constant anonymization.
    pub distinct_anonymized: usize,
    /// Anonymized-distinct queries already in conjunctive form.
    pub distinct_conjunctive: usize,
    /// Anonymized-distinct queries rewritable to a UNION of conjunctive
    /// queries.
    pub distinct_rewritable: usize,
    /// Largest multiplicity among anonymized-distinct queries.
    pub max_multiplicity: u64,
    /// Distinct features before constant anonymization.
    pub features_with_const: usize,
}

/// SQL-text front end: parse → anonymize → regularize → featurize, while
/// accumulating [`IngestStats`].
///
/// A query whose regularized form is a UNION of `k` conjunctive branches
/// contributes `k` feature vectors, each at the query's multiplicity — the
/// paper's convention of treating rewritable queries as unions of
/// conjunctive queries compatible with the Aligon scheme.
#[derive(Debug, Default)]
pub struct LogIngest {
    log: QueryLog,
    stats: IngestStats,
    raw_counts: HashMap<String, u64>,
    anon_counts: HashMap<String, u64>,
    /// Per anonymized-distinct statement: Table 1 flags plus the branch
    /// set, regularized once at first sighting — repeats replay branches
    /// from here instead of re-running the regularizer.
    anon_info: HashMap<String, AnonInfo>,
    const_codebook: Codebook,
    const_config: ExtractConfig,
}

/// What one anonymized-distinct statement contributes: stats flags and
/// its (possibly empty) conjunctive branch set.
#[derive(Debug)]
struct AnonInfo {
    was_conjunctive: bool,
    rewritable: bool,
    branches: Vec<ConjunctiveQuery>,
}

impl LogIngest {
    /// New ingester with the plain Aligon scheme.
    pub fn new() -> Self {
        LogIngest::default()
    }

    /// New ingester with an explicit extraction configuration.
    pub fn with_config(config: ExtractConfig) -> Self {
        LogIngest {
            log: QueryLog::with_config(config),
            const_config: config,
            ..LogIngest::default()
        }
    }

    /// Ingest one statement occurring `count` times.
    ///
    /// Unparseable or unsupported statements are counted, not propagated —
    /// real logs contain them (13M of 73M operations in the paper's US bank
    /// log) and ingestion must keep going.
    pub fn ingest_with_count(&mut self, sql: &str, count: u64) {
        self.stats.total_statements += count;
        let stmt = match parse_select(sql) {
            Ok(stmt) => stmt,
            Err(ParseError::Unsupported { .. }) => {
                self.stats.unsupported += count;
                return;
            }
            Err(_) => {
                self.stats.parse_errors += count;
                return;
            }
        };
        self.stats.parsed_selects += count;
        *self.raw_counts.entry(sql.to_string()).or_insert(0) += count;

        // Features *with* constants: regularize the raw statement.
        if let Ok(raw_reg) = regularize(&stmt) {
            for branch in &raw_reg.branches {
                extract_features(branch, &mut self.const_codebook, self.const_config);
            }
        }

        let mut anon = stmt;
        anonymize_statement(&mut anon);
        let anon_text = anon.to_string();
        *self.anon_counts.entry(anon_text.clone()).or_insert(0) += count;

        // One regularizer pass per anonymized-distinct statement, through
        // the shared extraction point (`regularized`) — the streaming
        // parse cache must reproduce exactly these branches.
        let info = self.anon_info.entry(anon_text).or_insert_with(|| regularized(&anon));
        for branch in &info.branches {
            self.log.add_conjunctive(branch, count);
        }
    }

    /// Ingest one statement (multiplicity 1).
    pub fn ingest(&mut self, sql: &str) {
        self.ingest_with_count(sql, 1);
    }

    /// Ingest statements from a reader, one per line (the common shape of
    /// production query-log exports). Blank lines and `--` comment lines
    /// are skipped; unparseable lines are counted, not fatal.
    pub fn ingest_lines(&mut self, reader: impl std::io::BufRead) -> std::io::Result<u64> {
        let mut ingested = 0u64;
        for line in reader.lines() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with("--") {
                continue;
            }
            self.ingest(trimmed);
            ingested += 1;
        }
        Ok(ingested)
    }

    /// Finish ingestion, returning the feature log and the Table 1 stats.
    pub fn finish(mut self) -> (QueryLog, IngestStats) {
        self.stats.distinct_raw = self.raw_counts.len();
        self.stats.distinct_anonymized = self.anon_counts.len();
        self.stats.distinct_conjunctive =
            self.anon_info.values().filter(|i| i.was_conjunctive).count();
        self.stats.distinct_rewritable = self.anon_info.values().filter(|i| i.rewritable).count();
        self.stats.max_multiplicity = self.anon_counts.values().copied().max().unwrap_or(0);
        self.stats.features_with_const = self.const_codebook.len();
        (self.log, self.stats)
    }

    /// Peek at the log mid-ingestion.
    pub fn log(&self) -> &QueryLog {
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codebook::FeatureId;

    fn qv(ids: &[u32]) -> QueryVector {
        QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
    }

    #[test]
    fn add_vector_dedups_and_counts() {
        let mut log = QueryLog::new();
        log.add_vector(qv(&[1, 2]), 3);
        log.add_vector(qv(&[2, 1]), 2); // same set
        log.add_vector(qv(&[3]), 1);
        assert_eq!(log.distinct_count(), 2);
        assert_eq!(log.total_queries(), 6);
        assert_eq!(log.max_multiplicity(), 5);
        // Zero-count adds are ignored.
        log.add_vector(qv(&[9]), 0);
        assert_eq!(log.distinct_count(), 2);
    }

    #[test]
    fn example_2_probabilities() {
        // Paper Example 2: four queries, q1 = q3.
        let mut ingest = LogIngest::new();
        ingest.ingest("SELECT _id FROM Messages WHERE status = ?");
        ingest.ingest("SELECT _time FROM Messages WHERE status = ? AND sms_type = ?");
        ingest.ingest("SELECT _id FROM Messages WHERE status = ?");
        ingest.ingest("SELECT sms_type, _time FROM Messages WHERE sms_type = ?");
        let (log, stats) = ingest.finish();
        assert_eq!(log.total_queries(), 4);
        assert_eq!(log.distinct_count(), 3);
        assert_eq!(stats.distinct_anonymized, 3);
        // q1 (= q3) has probability 0.5 — multiplicity 2 of 4.
        assert_eq!(log.max_multiplicity(), 2);
        // Universe per Example 3: 6 features.
        assert_eq!(log.num_features(), 6);
    }

    #[test]
    fn marginals_match_hand_computation() {
        // Toy log of §5.1: 3 queries, 4 features.
        let mut ingest = LogIngest::new();
        ingest.ingest("SELECT id FROM Messages WHERE status = ?");
        ingest.ingest("SELECT id FROM Messages");
        ingest.ingest("SELECT sms_type FROM Messages");
        let (log, _) = ingest.finish();
        assert_eq!(log.num_features(), 4);
        let m = log.marginals();
        let mut sorted = m.clone();
        sorted.sort_by(f64::total_cmp);
        // Naive encoding of §5.1: (2/3, 1/3, 1, 1/3).
        assert!((sorted[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((sorted[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((sorted[2] - 2.0 / 3.0).abs() < 1e-12);
        assert!((sorted[3] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn support_counts_containing_queries() {
        let mut ingest = LogIngest::new();
        ingest.ingest_with_count("SELECT id FROM Messages WHERE status = ?", 5);
        ingest.ingest_with_count("SELECT id FROM Messages", 2);
        let (log, _) = ingest.finish();
        let status_atom =
            log.codebook().get(&crate::feature::Feature::where_atom("status = ?")).unwrap();
        let id_col = log.codebook().get(&crate::feature::Feature::select("id")).unwrap();
        assert_eq!(log.support(&QueryVector::new(vec![status_atom])), 5);
        assert_eq!(log.support(&QueryVector::new(vec![id_col])), 7);
        assert_eq!(log.support(&QueryVector::new(vec![id_col, status_atom])), 5);
        assert_eq!(log.support(&QueryVector::empty()), 7);
    }

    #[test]
    fn constants_collapse_after_anonymization() {
        let mut ingest = LogIngest::new();
        ingest.ingest("SELECT a FROM t WHERE b = 1");
        ingest.ingest("SELECT a FROM t WHERE b = 2");
        ingest.ingest("SELECT a FROM t WHERE b = 3");
        let (log, stats) = ingest.finish();
        assert_eq!(stats.distinct_raw, 3);
        assert_eq!(stats.distinct_anonymized, 1);
        assert_eq!(log.distinct_count(), 1);
        assert_eq!(log.max_multiplicity(), 3);
        // With constants: three distinct WHERE atoms + a + t.
        assert_eq!(stats.features_with_const, 5);
        // Without: one atom + a + t.
        assert_eq!(log.num_features(), 3);
    }

    #[test]
    fn unparseable_statements_are_counted_not_fatal() {
        let mut ingest = LogIngest::new();
        ingest.ingest("SELECT a FROM t");
        ingest.ingest("UPDATE t SET a = 1");
        ingest.ingest("THIS IS NOT SQL @@@");
        let (log, stats) = ingest.finish();
        assert_eq!(stats.total_statements, 3);
        assert_eq!(stats.parsed_selects, 1);
        assert_eq!(stats.unsupported, 1);
        assert_eq!(stats.parse_errors, 1);
        assert_eq!(log.total_queries(), 1);
    }

    #[test]
    fn union_branches_become_separate_vectors() {
        let mut ingest = LogIngest::new();
        ingest.ingest("SELECT a FROM t WHERE x = ? OR y = ?");
        let (log, stats) = ingest.finish();
        assert_eq!(stats.parsed_selects, 1);
        assert_eq!(stats.distinct_conjunctive, 0);
        assert_eq!(stats.distinct_rewritable, 1);
        // Two conjunctive branches → two vectors.
        assert_eq!(log.distinct_count(), 2);
        assert_eq!(log.total_queries(), 2);
    }

    #[test]
    fn subset_marginals_and_totals() {
        let mut log = QueryLog::new();
        log.add_vector(qv(&[0, 1]), 4);
        log.add_vector(qv(&[1]), 4);
        log.add_vector(qv(&[2]), 2);
        // Feature universe is implied by vectors only when a codebook is
        // absent; feature_counts length follows the codebook (empty here),
        // so intern dummy features first.
        for t in ["a", "b", "c"] {
            log.codebook_mut().intern(crate::feature::Feature::select(t));
        }
        let m01 = log.marginals_for(&[0, 1]);
        assert!((m01[0] - 0.5).abs() < 1e-12);
        assert!((m01[1] - 1.0).abs() < 1e-12);
        assert_eq!(log.total_for(&[0, 1]), 8);
        assert_eq!(log.total_for(&[2]), 2);
    }

    #[test]
    fn absorb_translates_feature_ids() {
        // Two logs whose codebooks assign different ids to the same
        // features (insertion order differs).
        let mut a = LogIngest::new();
        a.ingest("SELECT x FROM t");
        a.ingest_with_count("SELECT y FROM t", 2);
        let (mut log_a, _) = a.finish();

        let mut b = LogIngest::new();
        b.ingest_with_count("SELECT y FROM t", 3); // y interned first here
        b.ingest("SELECT z FROM t");
        let (log_b, _) = b.finish();

        log_a.absorb(&log_b);
        assert_eq!(log_a.total_queries(), 3 + 4);
        // y now has multiplicity 2 + 3 = 5 across one distinct vector.
        let y = log_a.codebook().get(&crate::feature::Feature::select("y")).unwrap();
        assert_eq!(log_a.support(&QueryVector::new(vec![y])), 5);
        // z arrived as a new feature.
        assert!(log_a.codebook().get(&crate::feature::Feature::select("z")).is_some());
        // Distinct count: x, y, z variants.
        assert_eq!(log_a.distinct_count(), 3);
    }

    #[test]
    fn absorb_into_empty_log_copies() {
        let mut src = LogIngest::new();
        src.ingest_with_count("SELECT a FROM t WHERE b = ?", 7);
        let (src_log, _) = src.finish();
        let mut dst = QueryLog::new();
        dst.absorb(&src_log);
        assert_eq!(dst.total_queries(), 7);
        assert_eq!(dst.num_features(), src_log.num_features());
        assert!((dst.marginals()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ingest_lines_skips_blanks_and_comments() {
        let input = "\
SELECT a FROM t\n\
\n\
-- a comment line\n\
SELECT b FROM t WHERE c = ?\n\
NOT SQL AT ALL %%\n";
        let mut ingest = LogIngest::new();
        let n = ingest.ingest_lines(input.as_bytes()).unwrap();
        assert_eq!(n, 3); // two queries + one garbage line offered
        let (log, stats) = ingest.finish();
        assert_eq!(stats.parse_errors, 1);
        assert_eq!(log.total_queries(), 2);
    }

    #[test]
    fn anonymized_branches_reproduce_log_ingest() {
        let statements = [
            ("SELECT id FROM Messages WHERE status = 3", 2u64),
            ("SELECT a FROM t WHERE x = ? OR y = ?", 1), // two branches
            ("UPDATE t SET a = 1", 5),                   // unsupported → no branches
            ("NOT SQL %%", 1),                           // parse error → no branches
            ("SELECT id FROM Messages WHERE status = 9", 3), // collapses with the first
        ];
        let mut ingest = LogIngest::new();
        let mut cached = QueryLog::new();
        for (sql, count) in statements {
            ingest.ingest_with_count(sql, count);
            for branch in anonymized_branches(sql) {
                cached.add_conjunctive(&branch, count);
            }
        }
        let (log, _) = ingest.finish();
        assert_eq!(cached.entries(), log.entries());
        assert_eq!(cached.num_features(), log.num_features());
        assert_eq!(cached.codebook().len(), log.codebook().len());
        // Same interning order, feature by feature.
        for i in 0..log.codebook().len() {
            let id = FeatureId(i as u32);
            assert_eq!(cached.codebook().feature(id), log.codebook().feature(id));
        }
    }

    #[test]
    fn avg_features_weighted_by_multiplicity() {
        let mut ingest = LogIngest::new();
        // 2 features, multiplicity 3; 3 features, multiplicity 1.
        ingest.ingest_with_count("SELECT a FROM t", 3);
        ingest.ingest_with_count("SELECT a, b FROM t", 1);
        let (log, _) = ingest.finish();
        assert!((log.avg_features_per_query() - (2.0 * 3.0 + 3.0) / 4.0).abs() < 1e-12);
    }
}
