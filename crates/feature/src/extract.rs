//! Feature extraction: conjunctive query → feature set (paper §2.2).
//!
//! The extractor consumes the regularizer's [`ConjunctiveQuery`] branches
//! and interns one feature per structural element. The base scheme is
//! Aligon et al. (SELECT / FROM / WHERE); [`ExtractConfig::with_extensions`]
//! additionally captures GROUP BY and ORDER BY elements à la Makiyama
//! et al., which the paper cites as a richer alternative (§2.2).

use crate::codebook::Codebook;
use crate::feature::Feature;
use crate::vector::QueryVector;
use logr_sql::{ConjunctiveQuery, SelectItem};

/// Extraction options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExtractConfig {
    /// Capture ⟨expr, GROUPBY⟩ and ⟨expr `[DESC]`, ORDERBY⟩ features
    /// (Makiyama-scheme extension). Off by default — the paper's
    /// experiments use the plain Aligon scheme.
    pub extensions: bool,
}

impl ExtractConfig {
    /// Plain Aligon scheme.
    pub fn aligon() -> Self {
        ExtractConfig::default()
    }

    /// Aligon + GROUP BY / ORDER BY extension.
    pub fn with_extensions() -> Self {
        ExtractConfig { extensions: true }
    }
}

/// Extract the features of one conjunctive query **without interning** —
/// the codebook-independent half of [`extract_features`], in the exact
/// order that function interns them. Featurizer implementations (see
/// `logr-source`) call this per branch and hand the result to
/// `QueryLog::add_features`, which reproduces `add_conjunctive`'s
/// interning order — and therefore every downstream bit — without the
/// extractor ever touching a codebook.
pub fn branch_features(query: &ConjunctiveQuery, config: ExtractConfig) -> Vec<Feature> {
    let mut features =
        Vec::with_capacity(query.select.len() + query.tables.len() + query.conjuncts.len() + 4);

    for item in &query.select {
        let text = match item {
            SelectItem::Wildcard => "*".to_string(),
            SelectItem::QualifiedWildcard(name) => format!("{name}.*"),
            // Aliases are presentation, not structure: drop them so
            // `a AS x` and `a AS y` featurize identically.
            SelectItem::Expr { expr, .. } => expr.to_string(),
        };
        features.push(Feature::select(text));
    }
    for table in &query.tables {
        features.push(Feature::from_table(table.clone()));
    }
    for conjunct in &query.conjuncts {
        features.push(Feature::where_atom(conjunct.to_string()));
    }
    if config.extensions {
        for g in &query.group_by {
            features.push(Feature::new(crate::feature::FeatureClass::GroupBy, g.to_string()));
        }
        for o in &query.order_by {
            features.push(Feature::new(crate::feature::FeatureClass::OrderBy, o.to_string()));
        }
    }

    features
}

/// Extract and intern the features of one conjunctive query.
///
/// Returns the query's sparse feature vector; new features are appended to
/// `codebook`.
pub fn extract_features(
    query: &ConjunctiveQuery,
    codebook: &mut Codebook,
    config: ExtractConfig,
) -> QueryVector {
    let ids: Vec<_> =
        branch_features(query, config).into_iter().map(|f| codebook.intern(f)).collect();
    QueryVector::new(ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_sql::{anonymize_statement, parse_select, regularize};

    fn conjunctive(sql: &str) -> Vec<ConjunctiveQuery> {
        let mut stmt = parse_select(sql).unwrap();
        anonymize_statement(&mut stmt);
        regularize(&stmt).unwrap().branches
    }

    #[test]
    fn paper_example_has_six_features() {
        // Example 1 of the paper.
        let branches = conjunctive(
            "SELECT _id, sms_type, _time FROM Messages WHERE status = ? AND transport_type = ?",
        );
        let mut cb = Codebook::new();
        let v = extract_features(&branches[0], &mut cb, ExtractConfig::aligon());
        assert_eq!(v.len(), 6);
        let texts: Vec<String> = v.iter().map(|id| cb.feature(id).to_string()).collect();
        assert!(texts.contains(&"⟨sms_type, SELECT⟩".to_string()));
        assert!(texts.contains(&"⟨Messages, FROM⟩".to_string()));
        assert!(texts.contains(&"⟨status = ?, WHERE⟩".to_string()));
        assert!(texts.contains(&"⟨transport_type = ?, WHERE⟩".to_string()));
    }

    #[test]
    fn shared_features_share_ids() {
        let mut cb = Codebook::new();
        let q1 = &conjunctive("SELECT _id FROM Messages WHERE status = ?")[0];
        let q2 = &conjunctive("SELECT _time FROM Messages WHERE status = ?")[0];
        let v1 = extract_features(q1, &mut cb, ExtractConfig::aligon());
        let v2 = extract_features(q2, &mut cb, ExtractConfig::aligon());
        // Messages + status=? shared; _id vs _time distinct.
        assert_eq!(v1.intersection_size(&v2), 2);
        assert_eq!(cb.len(), 4);
    }

    #[test]
    fn aliases_do_not_change_features() {
        let mut cb = Codebook::new();
        let a = extract_features(
            &conjunctive("SELECT a AS x FROM t")[0],
            &mut cb,
            ExtractConfig::aligon(),
        );
        let b = extract_features(
            &conjunctive("SELECT a AS y FROM t")[0],
            &mut cb,
            ExtractConfig::aligon(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn extensions_capture_group_and_order() {
        let mut cb = Codebook::new();
        let q = &conjunctive("SELECT a FROM t GROUP BY a ORDER BY a DESC")[0];
        let base = extract_features(q, &mut cb, ExtractConfig::aligon());
        let ext = extract_features(q, &mut cb, ExtractConfig::with_extensions());
        assert_eq!(base.len(), 2);
        assert_eq!(ext.len(), 4);
        assert!(ext.contains_all(&base));
    }

    #[test]
    fn wildcards_featurize() {
        let mut cb = Codebook::new();
        let v =
            extract_features(&conjunctive("SELECT * FROM t")[0], &mut cb, ExtractConfig::aligon());
        assert_eq!(v.len(), 2);
        assert!(cb.get(&Feature::select("*")).is_some());
    }

    #[test]
    fn commutative_queries_have_equal_vectors() {
        let mut cb = Codebook::new();
        let a = extract_features(
            &conjunctive("SELECT a, b FROM t WHERE x = ? AND y = ?")[0],
            &mut cb,
            ExtractConfig::aligon(),
        );
        let b = extract_features(
            &conjunctive("SELECT b, a FROM t WHERE y = ? AND x = ?")[0],
            &mut cb,
            ExtractConfig::aligon(),
        );
        assert_eq!(a, b);
    }
}
