//! Dense bitset mirror of [`crate::vector::QueryVector`].
//!
//! Clustering distance kernels touch every pair of distinct queries; for
//! those inner loops a dense `u64`-block bitset with popcount-based set
//! operations beats the sparse merge once vectors are materialized per
//! dataset. The two representations are interconvertible and agree on all
//! set operations (property-tested in `vector` round-trip tests).

use crate::codebook::FeatureId;
use crate::vector::QueryVector;

/// Fixed-width dense bitset over the feature universe.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    bits: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// All-zeros bitset over a universe of `len` features.
    pub fn zeros(len: usize) -> Self {
        BitVec { bits: vec![0; len.div_ceil(64)], len }
    }

    /// Build from a sparse vector given the universe size.
    ///
    /// # Panics
    /// Panics if any id is outside the universe.
    pub fn from_query_vector(v: &QueryVector, universe: usize) -> Self {
        let mut b = BitVec::zeros(universe);
        for id in v.iter() {
            b.set(id.index());
        }
        b
    }

    /// Convert back to a sparse vector.
    pub fn to_query_vector(&self) -> QueryVector {
        self.iter_ones().map(|i| FeatureId(i as u32)).collect()
    }

    /// Universe size in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.bits[i / 64] |= 1 << (i % 64);
    }

    /// Clear bit `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.bits[i / 64] &= !(1 << (i % 64));
    }

    /// Read bit `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// `|self ∧ other|` — intersection size.
    ///
    /// # Panics
    /// Panics on universe mismatch.
    pub fn and_count(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "universe mismatch");
        self.bits.iter().zip(&other.bits).map(|(a, b)| (a & b).count_ones() as usize).sum()
    }

    /// `|self ∨ other|` — union size.
    pub fn or_count(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "universe mismatch");
        self.bits.iter().zip(&other.bits).map(|(a, b)| (a | b).count_ones() as usize).sum()
    }

    /// `|self ⊕ other|` — Hamming distance.
    pub fn xor_count(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "universe mismatch");
        self.bits.iter().zip(&other.bits).map(|(a, b)| (a ^ b).count_ones() as usize).sum()
    }

    /// `|self ⊕ other|` across unequal universes: the narrower bitset is
    /// implicitly zero-extended to the wider one. A feature universe only
    /// ever grows (codebooks intern, never forget), so a vector's set bits
    /// are identical under any universe at least as wide — which makes the
    /// mismatch count well-defined without re-materializing old bitsets.
    /// Equal-width calls agree with [`BitVec::xor_count`].
    pub fn xor_count_padded(&self, other: &BitVec) -> usize {
        let (short, long) =
            if self.bits.len() <= other.bits.len() { (self, other) } else { (other, self) };
        let mut d = 0usize;
        for (i, &b) in long.bits.iter().enumerate() {
            let a = short.bits.get(i).copied().unwrap_or(0);
            d += (a ^ b).count_ones() as usize;
        }
        d
    }

    /// The same bits over a universe widened to `len` features (the new
    /// high bits are zero). Mismatch counts against any vector are
    /// unchanged — widening is how spill-format records built at an older,
    /// narrower universe are re-serialized at the current one.
    ///
    /// # Panics
    /// Panics if `len` is smaller than the current universe.
    pub fn widened(&self, len: usize) -> BitVec {
        assert!(len >= self.len, "widened({len}) would shrink a {}-bit universe", self.len);
        let mut bits = self.bits.clone();
        bits.resize(len.div_ceil(64), 0);
        BitVec { bits, len }
    }

    /// Append the bitset's little-endian wire form to `out`:
    /// `len` as a `u64`, then `⌈len / 64⌉` `u64` blocks, all LE. The form
    /// is self-describing (the block count follows from `len`), so records
    /// can concatenate bitsets back to back and
    /// [`BitVec::read_bytes`] them off sequentially — which is how the
    /// shard spill format (`logr-cluster::spill`) packs point payloads.
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        for block in &self.bits {
            out.extend_from_slice(&block.to_le_bytes());
        }
    }

    /// Serialized size of [`BitVec::write_bytes`]'s output in bytes.
    pub fn wire_len(&self) -> usize {
        8 + 8 * self.bits.len()
    }

    /// Decode one bitset from the front of `bytes`, returning it and the
    /// number of bytes consumed. `None` when `bytes` is too short for the
    /// declared length or when a bit beyond `len` is set (every valid
    /// writer zero-pads the last block, and the equality/hash contract
    /// relies on canonical padding — garbage tails must not round-trip).
    pub fn read_bytes(bytes: &[u8]) -> Option<(BitVec, usize)> {
        let len_bytes: [u8; 8] = bytes.get(..8)?.try_into().ok()?;
        let len = usize::try_from(u64::from_le_bytes(len_bytes)).ok()?;
        let n_blocks = len.div_ceil(64);
        let consumed = 8usize.checked_add(n_blocks.checked_mul(8)?)?;
        let body = bytes.get(8..consumed)?;
        let bits: Vec<u64> = body
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact yields 8 bytes")))
            .collect();
        if let Some(&last) = bits.last() {
            let tail_bits = len % 64;
            if tail_bits != 0 && last >> tail_bits != 0 {
                return None;
            }
        }
        Some((BitVec { bits, len }, consumed))
    }

    /// Containment: every set bit of `other` is set here.
    pub fn contains_all(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "universe mismatch");
        self.bits.iter().zip(&other.bits).all(|(a, b)| b & !a == 0)
    }

    /// The underlying `u64` blocks (bit `i` lives in block `i / 64` at bit
    /// `i % 64`).
    pub fn blocks(&self) -> &[u64] {
        &self.bits
    }

    /// Call `f` with each set index in ascending order. Hand-rolled block
    /// loop: equivalent to [`BitVec::iter_ones`] but without iterator
    /// adaptor overhead, which matters in the clustering hot loops
    /// (especially in unoptimized builds).
    #[inline]
    pub fn for_each_one(&self, mut f: impl FnMut(usize)) {
        for (block_idx, &block) in self.bits.iter().enumerate() {
            let mut b = block;
            while b != 0 {
                let tz = b.trailing_zeros() as usize;
                b &= b - 1;
                f(block_idx * 64 + tz);
            }
        }
    }

    /// Iterate indexes of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(block_idx, &block)| {
            let mut b = block;
            std::iter::from_fn(move || {
                if b == 0 {
                    return None;
                }
                let tz = b.trailing_zeros() as usize;
                b &= b - 1;
                Some(block_idx * 64 + tz)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qv(ids: &[u32]) -> QueryVector {
        QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
    }

    #[test]
    fn set_get_clear() {
        let mut b = BitVec::zeros(130);
        assert!(!b.get(129));
        b.set(129);
        assert!(b.get(129));
        b.clear(129);
        assert!(!b.get(129));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        BitVec::zeros(10).get(10);
    }

    #[test]
    fn round_trip_with_query_vector() {
        let v = qv(&[0, 5, 63, 64, 127]);
        let b = BitVec::from_query_vector(&v, 128);
        assert_eq!(b.to_query_vector(), v);
        assert_eq!(b.count_ones(), 5);
    }

    #[test]
    fn set_ops_match_sparse() {
        let a = qv(&[1, 2, 3, 70]);
        let b = qv(&[3, 70, 99]);
        let da = BitVec::from_query_vector(&a, 100);
        let db = BitVec::from_query_vector(&b, 100);
        assert_eq!(da.and_count(&db), a.intersection_size(&b));
        assert_eq!(da.or_count(&db), a.union_size(&b));
        assert_eq!(da.xor_count(&db), a.symmetric_difference_size(&b));
        assert_eq!(da.contains_all(&db), a.contains_all(&b));
        let sub = BitVec::from_query_vector(&qv(&[1, 70]), 100);
        assert!(da.contains_all(&sub));
    }

    #[test]
    fn iter_ones_crosses_block_boundaries() {
        let mut b = BitVec::zeros(200);
        for i in [0, 63, 64, 65, 128, 199] {
            b.set(i);
        }
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 65, 128, 199]);
    }

    #[test]
    fn xor_count_padded_zero_extends() {
        let narrow = BitVec::from_query_vector(&qv(&[1, 60]), 64);
        let wide = BitVec::from_query_vector(&qv(&[1, 100, 190]), 200);
        // {60} ⊕ {100, 190} under zero extension.
        assert_eq!(narrow.xor_count_padded(&wide), 3);
        assert_eq!(wide.xor_count_padded(&narrow), 3);
        // Equal widths agree with the strict path.
        let a = BitVec::from_query_vector(&qv(&[0, 5]), 70);
        let b = BitVec::from_query_vector(&qv(&[5, 69]), 70);
        assert_eq!(a.xor_count_padded(&b), a.xor_count(&b));
        // Empty vs anything counts the set bits.
        assert_eq!(BitVec::zeros(0).xor_count_padded(&wide), 3);
    }

    #[test]
    fn wire_round_trip() {
        for ids in [&[][..], &[0], &[0, 63], &[64], &[1, 100, 190]] {
            for universe in [0usize, 1, 64, 65, 200] {
                if ids.iter().any(|&i| i as usize >= universe) {
                    continue;
                }
                let b = BitVec::from_query_vector(&qv(ids), universe);
                let mut buf = vec![0xAAu8; 3]; // leading garbage the writer must not touch
                let before = buf.len();
                b.write_bytes(&mut buf);
                assert_eq!(buf.len() - before, b.wire_len());
                let (back, consumed) = BitVec::read_bytes(&buf[before..]).unwrap();
                assert_eq!(back, b, "ids={ids:?} universe={universe}");
                assert_eq!(consumed, b.wire_len());
            }
        }
    }

    #[test]
    fn wire_reads_concatenate() {
        let a = BitVec::from_query_vector(&qv(&[1, 2]), 70);
        let b = BitVec::from_query_vector(&qv(&[0]), 3);
        let mut buf = Vec::new();
        a.write_bytes(&mut buf);
        b.write_bytes(&mut buf);
        let (ra, used) = BitVec::read_bytes(&buf).unwrap();
        let (rb, rest) = BitVec::read_bytes(&buf[used..]).unwrap();
        assert_eq!((ra, rb), (a, b));
        assert_eq!(used + rest, buf.len());
    }

    #[test]
    fn wire_rejects_truncation_and_padding_garbage() {
        let b = BitVec::from_query_vector(&qv(&[1, 100]), 130);
        let mut buf = Vec::new();
        b.write_bytes(&mut buf);
        // Every strict prefix is too short.
        for cut in 0..buf.len() {
            assert!(BitVec::read_bytes(&buf[..cut]).is_none(), "prefix of {cut} bytes decoded");
        }
        // A set bit beyond `len` (non-canonical padding) is rejected: only
        // bits 0..2 of the last block are inside the 130-bit universe.
        let mut dirty = buf.clone();
        let last_block = dirty.len() - 8;
        dirty[last_block] |= 1 << 4;
        assert!(BitVec::read_bytes(&dirty).is_none(), "padding garbage decoded");
        // An absurd declared length cannot allocate or wrap.
        let mut huge = buf;
        huge[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(BitVec::read_bytes(&huge).is_none());
    }

    #[test]
    fn empty_universe() {
        let b = BitVec::zeros(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.iter_ones().count(), 0);
    }
}
