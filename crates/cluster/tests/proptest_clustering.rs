//! Property tests for the clustering substrate: distance axioms, valid
//! partitions from every method, nested hierarchical cuts, and k-means
//! objective sanity on random inputs.

use logr_cluster::{hierarchical_cluster, kmeans_binary, Distance, KMeansConfig};
use logr_feature::{FeatureId, QueryVector};
use proptest::prelude::*;

const UNIVERSE: usize = 32;

fn arb_points() -> impl Strategy<Value = Vec<QueryVector>> {
    prop::collection::vec(prop::collection::vec(0..UNIVERSE as u32, 0..8), 2..16).prop_map(|rows| {
        rows.into_iter()
            .map(|ids| QueryVector::new(ids.into_iter().map(FeatureId).collect()))
            .collect()
    })
}

fn all_metrics() -> Vec<Distance> {
    vec![
        Distance::Euclidean,
        Distance::Manhattan,
        Distance::Minkowski(4.0),
        Distance::Hamming,
        Distance::Chebyshev,
        Distance::Canberra,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn distance_axioms(points in arb_points()) {
        for metric in all_metrics() {
            for a in &points {
                prop_assert_eq!(metric.between(a, a, UNIVERSE), 0.0);
                for b in &points {
                    let d_ab = metric.between(a, b, UNIVERSE);
                    prop_assert!(d_ab >= 0.0);
                    prop_assert_eq!(d_ab, metric.between(b, a, UNIVERSE));
                    if a != b {
                        prop_assert!(d_ab > 0.0, "distinct points at distance 0 ({metric:?})");
                    }
                }
            }
        }
    }

    #[test]
    fn triangle_inequality(points in arb_points()) {
        // All implemented metrics are metrics on binary vectors.
        for metric in [Distance::Euclidean, Distance::Manhattan, Distance::Hamming, Distance::Chebyshev] {
            for a in &points {
                for b in &points {
                    for c in &points {
                        let ab = metric.between(a, b, UNIVERSE);
                        let bc = metric.between(b, c, UNIVERSE);
                        let ac = metric.between(a, c, UNIVERSE);
                        prop_assert!(ac <= ab + bc + 1e-9, "{metric:?} triangle violated");
                    }
                }
            }
        }
    }

    #[test]
    fn kmeans_produces_valid_partition(points in arb_points(), k in 1usize..6, seed in any::<u64>()) {
        let refs: Vec<&QueryVector> = points.iter().collect();
        let weights = vec![1.0; refs.len()];
        let (c, inertia) = kmeans_binary(&refs, &weights, UNIVERSE, KMeansConfig::new(k, seed));
        prop_assert_eq!(c.len(), refs.len());
        prop_assert!(c.assignments.iter().all(|&a| a < c.k));
        prop_assert!(inertia >= -1e-9);
        // Identical points land in the same cluster.
        for i in 0..refs.len() {
            for j in 0..refs.len() {
                if refs[i] == refs[j] {
                    prop_assert_eq!(c.assignments[i], c.assignments[j]);
                }
            }
        }
    }

    #[test]
    fn hierarchical_cuts_nested(points in arb_points(), seed in any::<u64>()) {
        let _ = seed;
        let refs: Vec<&QueryVector> = points.iter().collect();
        let weights = vec![1.0; refs.len()];
        let d = hierarchical_cluster(&refs, &weights, UNIVERSE, Distance::Hamming);
        let n = refs.len();
        prop_assert_eq!(d.merges().len(), n - 1);
        for k in 1..n {
            let coarse = d.cut(k);
            let fine = d.cut(k + 1);
            prop_assert!(coarse.non_empty() <= k);
            // Nestedness: fine clusters map into exactly one coarse cluster.
            let mut map = std::collections::HashMap::new();
            for i in 0..n {
                let entry = map.entry(fine.assignments[i]).or_insert(coarse.assignments[i]);
                prop_assert_eq!(*entry, coarse.assignments[i], "cut({}) not nested", k);
            }
        }
    }

    #[test]
    fn kmeans_k1_inertia_matches_variance(points in arb_points()) {
        // With one cluster the centroid is the weighted mean; inertia equals
        // total squared deviation, which is minimal — re-running with any
        // seed gives the same value.
        let refs: Vec<&QueryVector> = points.iter().collect();
        let weights = vec![1.0; refs.len()];
        let (_, i1) = kmeans_binary(&refs, &weights, UNIVERSE, KMeansConfig::new(1, 1));
        let (_, i2) = kmeans_binary(&refs, &weights, UNIVERSE, KMeansConfig::new(1, 99));
        prop_assert!((i1 - i2).abs() < 1e-9);
    }
}
