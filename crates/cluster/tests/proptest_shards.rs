//! Property tests for the sharded condensed build: a `ShardedPointSet`
//! assembled from arbitrary shard partitions (including shard size 1 and
//! one-shard-equals-whole-set) merges to the **bit-identical** condensed
//! matrix of the monolithic `PointSet::distances` build, for every §6.1
//! metric — mirroring PR 1's dense-vs-sparse oracle pattern. A second
//! battery pins the shard fan-out's determinism across forced worker
//! counts, a third covers the universe-growth path (early shards built
//! under a narrower codebook), and a fourth (PR 3) forces every shard
//! through the on-disk spill store — evict and reload included — and
//! proves the reloaded set bit-identical to both the all-resident set and
//! the monolithic build.

use logr_cluster::testutil::TempStore;
use logr_cluster::{Distance, PointSet, ShardedPointSet, SpillConfig};
use logr_feature::{FeatureId, QueryVector};
use proptest::prelude::*;
fn all_metrics() -> Vec<Distance> {
    vec![
        Distance::Euclidean,
        Distance::Manhattan,
        Distance::Minkowski(4.0),
        Distance::Hamming,
        Distance::Chebyshev,
        Distance::Canberra,
    ]
}

/// Random point sets over random universe sizes (1–160 features, one to
/// three `u64` blocks), plus a shard size to partition them with.
fn arb_instance() -> impl Strategy<Value = (Vec<QueryVector>, usize, usize)> {
    (
        1usize..160,
        prop::collection::vec(prop::collection::vec(0u32..4096, 0..12), 2..24),
        1usize..26,
    )
        .prop_map(|(universe, rows, shard_size)| {
            let vectors: Vec<QueryVector> = rows
                .into_iter()
                .map(|ids| {
                    QueryVector::new(
                        ids.into_iter().map(|i| FeatureId(i % universe as u32)).collect(),
                    )
                })
                .collect();
            // Clamp so shard size 1, interior sizes, and the whole set all
            // occur.
            let shard_size = shard_size.min(vectors.len());
            (vectors, universe, shard_size)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharded build == monolithic build, bit for bit, for every metric
    /// and every shard partition.
    #[test]
    fn sharded_merge_bit_identical_to_monolithic(
        (vectors, universe, shard_size) in arb_instance(),
    ) {
        let refs: Vec<&QueryVector> = vectors.iter().collect();
        let monolithic = PointSet::from_vectors(&refs, universe);
        let mut sharded = ShardedPointSet::new();
        for chunk in refs.chunks(shard_size) {
            sharded.push_shard(chunk, universe);
        }
        prop_assert_eq!(sharded.len(), refs.len());
        for metric in all_metrics() {
            let whole = monolithic.distances(metric);
            let merged = sharded.condensed(metric);
            prop_assert_eq!(merged.n(), whole.n());
            for (a, b) in merged.as_slice().iter().zip(whole.as_slice()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{:?} shard_size={}", metric, shard_size);
            }
            // The borrowing view serves the same folded reads.
            let view = sharded.condensed_shards(metric);
            for i in 0..refs.len() {
                for j in 0..refs.len() {
                    prop_assert_eq!(view.get(i, j).to_bits(), whole.get(i, j).to_bits());
                }
            }
        }
    }

    /// The shard fan-out writes disjoint slices of integer mismatch
    /// counts, so any forced worker count produces the same buffers.
    #[test]
    fn shard_fanout_deterministic_across_thread_counts(
        (vectors, universe, shard_size) in arb_instance(),
    ) {
        let refs: Vec<&QueryVector> = vectors.iter().collect();
        let build = |n_threads: usize| {
            let mut sharded = ShardedPointSet::new();
            for chunk in refs.chunks(shard_size) {
                sharded.push_shard_threads(chunk, universe, n_threads);
            }
            sharded.condensed(Distance::Manhattan)
        };
        let serial = build(1);
        for n_threads in [2usize, 3, 8] {
            let threaded = build(n_threads);
            for (a, b) in serial.as_slice().iter().zip(threaded.as_slice()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "n_threads={}", n_threads);
            }
        }
    }

    /// Spill → evict → reload round-trip (the PR 3 headline): a set whose
    /// shards are forced through the on-disk store — budget 0 evicts
    /// everything but the pinned tail during the build, and `spill_all`
    /// then forces *every* shard (tail included) out before reading —
    /// serves condensed merges and point reads **bit-identical** to the
    /// all-resident `ShardedPointSet` and to the monolithic
    /// `PointSet::distances`, across every §6.1 metric, every shard
    /// partition (size 1 through whole-set), and growing universes.
    #[test]
    fn spilled_reload_bit_identical_to_resident_and_monolithic(
        (vectors, universe, shard_size) in arb_instance(),
        growth in 1usize..64,
    ) {
        let store = TempStore::new("proptest-spill");
        let refs: Vec<&QueryVector> = vectors.iter().collect();
        let final_universe = universe + growth;
        let mut resident = ShardedPointSet::new();
        let mut spilled = ShardedPointSet::new();
        spilled.set_spill(SpillConfig { dir: store.path().to_path_buf(), resident_budget: 0 })
            .expect("attach spill store");
        let chunks: Vec<_> = refs.chunks(shard_size).collect();
        for (s, chunk) in chunks.iter().enumerate() {
            // Widen the universe on the last shard only (the streaming
            // codebook-growth path crosses the store too).
            let width = if s + 1 == chunks.len() { final_universe } else { universe };
            resident.push_shard(chunk, width);
            spilled.push_shard(chunk, width);
        }
        // Budget 0 pinned only the hot tail during the build…
        prop_assert_eq!(spilled.spilled_shards(), spilled.n_shards() - 1);
        // …and forced eviction takes the tail too: nothing stays resident.
        spilled.spill_all().expect("force-evict every shard");
        prop_assert_eq!(spilled.resident_bytes(), 0);

        let monolithic = PointSet::from_vectors(&refs, final_universe);
        for metric in all_metrics() {
            let whole = monolithic.distances(metric);
            let from_disk = spilled.condensed(metric);
            let from_ram = resident.condensed(metric);
            prop_assert_eq!(from_disk.n(), whole.n());
            for ((a, b), c) in
                from_disk.as_slice().iter().zip(from_ram.as_slice()).zip(whole.as_slice())
            {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{:?} disk != resident", metric);
                prop_assert_eq!(a.to_bits(), c.to_bits(), "{:?} disk != monolithic", metric);
            }
        }
        // Point reads reload through the cache and agree too.
        for i in (0..refs.len()).step_by(3) {
            for j in (0..refs.len()).step_by(2) {
                prop_assert_eq!(spilled.mismatches(i, j), resident.mismatches(i, j));
            }
        }
    }

    /// Early shards built under a narrower universe merge identically to a
    /// monolithic build at the final width (the streaming codebook-growth
    /// path).
    #[test]
    fn growing_universe_matches_final_width_build(
        (vectors, universe, shard_size) in arb_instance(),
        growth in 1usize..64,
    ) {
        let refs: Vec<&QueryVector> = vectors.iter().collect();
        let final_universe = universe + growth;
        let mut sharded = ShardedPointSet::new();
        let chunks: Vec<_> = refs.chunks(shard_size).collect();
        for (s, chunk) in chunks.iter().enumerate() {
            // Widen the universe on the last shard only.
            let width = if s + 1 == chunks.len() { final_universe } else { universe };
            sharded.push_shard(chunk, width);
        }
        let monolithic = PointSet::from_vectors(&refs, final_universe);
        for metric in all_metrics() {
            let whole = monolithic.distances(metric);
            let merged = sharded.condensed(metric);
            for (a, b) in merged.as_slice().iter().zip(whole.as_slice()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{:?}", metric);
            }
        }
    }
}
