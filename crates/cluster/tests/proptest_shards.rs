//! Property tests for the sharded condensed build: a `ShardedPointSet`
//! assembled from arbitrary shard partitions (including shard size 1 and
//! one-shard-equals-whole-set) merges to the **bit-identical** condensed
//! matrix of the monolithic `PointSet::distances` build, for every §6.1
//! metric — mirroring PR 1's dense-vs-sparse oracle pattern. A second
//! battery pins the shard fan-out's determinism across forced worker
//! counts, and a third covers the universe-growth path (early shards built
//! under a narrower codebook).

use logr_cluster::{Distance, PointSet, ShardedPointSet};
use logr_feature::{FeatureId, QueryVector};
use proptest::prelude::*;

fn all_metrics() -> Vec<Distance> {
    vec![
        Distance::Euclidean,
        Distance::Manhattan,
        Distance::Minkowski(4.0),
        Distance::Hamming,
        Distance::Chebyshev,
        Distance::Canberra,
    ]
}

/// Random point sets over random universe sizes (1–160 features, one to
/// three `u64` blocks), plus a shard size to partition them with.
fn arb_instance() -> impl Strategy<Value = (Vec<QueryVector>, usize, usize)> {
    (
        1usize..160,
        prop::collection::vec(prop::collection::vec(0u32..4096, 0..12), 2..24),
        1usize..26,
    )
        .prop_map(|(universe, rows, shard_size)| {
            let vectors: Vec<QueryVector> = rows
                .into_iter()
                .map(|ids| {
                    QueryVector::new(
                        ids.into_iter().map(|i| FeatureId(i % universe as u32)).collect(),
                    )
                })
                .collect();
            // Clamp so shard size 1, interior sizes, and the whole set all
            // occur.
            let shard_size = shard_size.min(vectors.len());
            (vectors, universe, shard_size)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharded build == monolithic build, bit for bit, for every metric
    /// and every shard partition.
    #[test]
    fn sharded_merge_bit_identical_to_monolithic(
        (vectors, universe, shard_size) in arb_instance(),
    ) {
        let refs: Vec<&QueryVector> = vectors.iter().collect();
        let monolithic = PointSet::from_vectors(&refs, universe);
        let mut sharded = ShardedPointSet::new();
        for chunk in refs.chunks(shard_size) {
            sharded.push_shard(chunk, universe);
        }
        prop_assert_eq!(sharded.len(), refs.len());
        for metric in all_metrics() {
            let whole = monolithic.distances(metric);
            let merged = sharded.condensed(metric);
            prop_assert_eq!(merged.n(), whole.n());
            for (a, b) in merged.as_slice().iter().zip(whole.as_slice()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{:?} shard_size={}", metric, shard_size);
            }
            // The borrowing view serves the same folded reads.
            let view = sharded.condensed_shards(metric);
            for i in 0..refs.len() {
                for j in 0..refs.len() {
                    prop_assert_eq!(view.get(i, j).to_bits(), whole.get(i, j).to_bits());
                }
            }
        }
    }

    /// The shard fan-out writes disjoint slices of integer mismatch
    /// counts, so any forced worker count produces the same buffers.
    #[test]
    fn shard_fanout_deterministic_across_thread_counts(
        (vectors, universe, shard_size) in arb_instance(),
    ) {
        let refs: Vec<&QueryVector> = vectors.iter().collect();
        let build = |n_threads: usize| {
            let mut sharded = ShardedPointSet::new();
            for chunk in refs.chunks(shard_size) {
                sharded.push_shard_threads(chunk, universe, n_threads);
            }
            sharded.condensed(Distance::Manhattan)
        };
        let serial = build(1);
        for n_threads in [2usize, 3, 8] {
            let threaded = build(n_threads);
            for (a, b) in serial.as_slice().iter().zip(threaded.as_slice()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "n_threads={}", n_threads);
            }
        }
    }

    /// Early shards built under a narrower universe merge identically to a
    /// monolithic build at the final width (the streaming codebook-growth
    /// path).
    #[test]
    fn growing_universe_matches_final_width_build(
        (vectors, universe, shard_size) in arb_instance(),
        growth in 1usize..64,
    ) {
        let refs: Vec<&QueryVector> = vectors.iter().collect();
        let final_universe = universe + growth;
        let mut sharded = ShardedPointSet::new();
        let chunks: Vec<_> = refs.chunks(shard_size).collect();
        for (s, chunk) in chunks.iter().enumerate() {
            // Widen the universe on the last shard only.
            let width = if s + 1 == chunks.len() { final_universe } else { universe };
            sharded.push_shard(chunk, width);
        }
        let monolithic = PointSet::from_vectors(&refs, final_universe);
        for metric in all_metrics() {
            let whole = monolithic.distances(metric);
            let merged = sharded.condensed(metric);
            for (a, b) in merged.as_slice().iter().zip(whole.as_slice()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{:?}", metric);
            }
        }
    }
}
