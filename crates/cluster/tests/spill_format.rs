//! Adversarial tests for the shard spill format: every way a file can be
//! wrong — truncated, foreign, future-versioned, bit-flipped — must come
//! back as a typed [`SpillError`], never a panic, an over-allocation, or
//! (worst of all) a silently-wrong distance.

use logr_cluster::spill::{self, ShardRecord, SpillError, MAGIC, VERSION};
use logr_cluster::testutil::TempStore;
use logr_feature::{BitVec, FeatureId, QueryVector};
fn qv(ids: &[u32]) -> QueryVector {
    QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
}

/// A representative record: non-trivial intra triangle, cross block, and
/// multi-block bitsets.
fn record() -> ShardRecord {
    let nf = 150;
    let points = [&[0u32, 1, 64][..], &[2, 100, 149], &[], &[7]];
    let bits: Vec<BitVec> =
        points.iter().map(|ids| BitVec::from_query_vector(&qv(ids), nf)).collect();
    ShardRecord {
        n_features: nf,
        start: 3,
        intra: vec![4, 5, 3, 6, 2, 1],                   // 4·3/2
        cross: vec![9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2], // 3·4
        bits,
    }
}

#[test]
fn valid_file_round_trips() {
    let store = TempStore::new("ok");
    let path = store.join("shard.bin");
    let record = record();
    spill::write_file(&path, &record).unwrap();
    assert_eq!(spill::read_file(&path).unwrap(), record);
}

#[test]
fn truncated_file_is_a_typed_error_at_every_cut() {
    let store = TempStore::new("trunc");
    let bytes = spill::encode(&record());
    let path = store.join("cut.bin");
    // Cut the file at every length short of whole — header cuts, payload
    // cuts, checksum cuts. Each must decode to Truncated (the total
    // length is derivable from the header, so truncation is diagnosed as
    // itself, not as the checksum mismatch it also causes).
    for cut in 0..bytes.len() {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = spill::read_file(&path).unwrap_err();
        assert!(
            matches!(err, SpillError::Truncated { .. }),
            "cut at {cut}/{} gave {err}",
            bytes.len()
        );
    }
}

#[test]
fn wrong_magic_is_a_typed_error() {
    let mut bytes = spill::encode(&record());
    bytes[..8].copy_from_slice(b"NOTSHARD");
    match spill::decode(&bytes).unwrap_err() {
        SpillError::BadMagic { found } => assert_eq!(&found, b"NOTSHARD"),
        other => panic!("expected BadMagic, got {other}"),
    }
    // A single flipped magic byte counts too.
    let mut bytes = spill::encode(&record());
    bytes[0] ^= 0x01;
    assert!(matches!(spill::decode(&bytes).unwrap_err(), SpillError::BadMagic { .. }));
}

#[test]
fn wrong_version_is_a_typed_error() {
    let mut bytes = spill::encode(&record());
    bytes[8..12].copy_from_slice(&(VERSION + 1).to_le_bytes());
    match spill::decode(&bytes).unwrap_err() {
        SpillError::BadVersion { found } => assert_eq!(found, VERSION + 1),
        other => panic!("expected BadVersion, got {other}"),
    }
}

#[test]
fn every_flipped_payload_byte_is_caught() {
    // The checksum regression: flip each payload byte in turn — intra
    // counts, cross counts, and point bitsets all decode structurally
    // fine with a flipped bit (they are plain integers), so *only*
    // checksum verification stands between a flipped byte and a
    // silently-wrong distance. If a future edit skips verification, this
    // test fails on its first iteration.
    let clean = spill::encode(&record());
    let header_end = 8 + 4 + 24; // magic + version + header words
    let payload_end = clean.len() - 8;
    let mut caught = 0usize;
    for i in header_end..payload_end {
        let mut bytes = clean.clone();
        bytes[i] ^= 0x10;
        match spill::decode(&bytes) {
            Err(SpillError::ChecksumMismatch { stored, computed }) => {
                assert_ne!(stored, computed);
                caught += 1;
            }
            Err(other) => panic!("payload byte {i}: expected ChecksumMismatch, got {other}"),
            Ok(_) => panic!("payload byte {i}: flipped byte decoded successfully"),
        }
    }
    assert_eq!(caught, payload_end - header_end);
    // Flipping the stored checksum itself is caught the same way.
    let mut bytes = clean;
    let last = bytes.len() - 1;
    bytes[last] ^= 0x80;
    assert!(matches!(spill::decode(&bytes).unwrap_err(), SpillError::ChecksumMismatch { .. }));
}

#[test]
fn flipped_header_bytes_never_panic_or_overallocate() {
    // Header corruption lands before the checksum check by design (sizes
    // are validated first so a hostile length cannot drive a huge
    // allocation); whatever the variant, it must be an error, not a
    // panic.
    let clean = spill::encode(&record());
    for i in 12..36 {
        for mask in [0x01u8, 0x80] {
            let mut bytes = clean.clone();
            bytes[i] ^= mask;
            assert!(spill::decode(&bytes).is_err(), "header byte {i} (mask {mask:#x}) decoded");
        }
    }
    // The pathological case: a header declaring astronomically many
    // points must fail cleanly (no multi-gigabyte reservation).
    let mut bytes = clean.clone();
    bytes[28..36].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(bytes.len() < 1 << 20, "test premise: the input itself is small");
    assert!(spill::decode(&bytes).is_err());
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = spill::encode(&record());
    bytes.extend_from_slice(&[0xAB; 16]);
    assert!(matches!(spill::decode(&bytes).unwrap_err(), SpillError::Corrupt(_)));
}

#[test]
fn error_display_is_informative() {
    let err = spill::decode(&[0u8; 4]).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("truncated"), "{msg}");
    let magic_err = spill::decode(&{
        let mut b = spill::encode(&record());
        b[..8].copy_from_slice(b"XXXXXXXX");
        b
    })
    .unwrap_err();
    assert!(magic_err.to_string().contains(&format!("{MAGIC:02x?}")), "{magic_err}");
}
