//! Property tests for the dense popcount engine: the dense `PointSet`
//! distance matrix is bit-identical to the sparse reference across all six
//! metrics and random universes, and the condensed-layout hierarchical
//! clustering reproduces the dendrogram of a full-`Matrix` reference
//! implementation.

use logr_cluster::{distance_matrix, hierarchical_cluster, Dendrogram, Distance, PointSet};
use logr_feature::{FeatureId, QueryVector};
use logr_math::Matrix;
use proptest::prelude::*;

fn all_metrics() -> Vec<Distance> {
    vec![
        Distance::Euclidean,
        Distance::Manhattan,
        Distance::Minkowski(4.0),
        Distance::Hamming,
        Distance::Chebyshev,
        Distance::Canberra,
    ]
}

/// Random point sets over random universe sizes (1–160 features, so the
/// bitsets span one to three `u64` blocks). Ids are drawn wide and folded
/// into the sampled universe.
fn arb_instance() -> impl Strategy<Value = (Vec<QueryVector>, usize)> {
    (1usize..160, prop::collection::vec(prop::collection::vec(0u32..4096, 0..12), 2..24)).prop_map(
        |(universe, rows)| {
            let vectors = rows
                .into_iter()
                .map(|ids| {
                    QueryVector::new(
                        ids.into_iter().map(|i| FeatureId(i % universe as u32)).collect(),
                    )
                })
                .collect();
            (vectors, universe)
        },
    )
}

/// The pre-PR-1 reference: NN-chain average linkage over a full symmetric
/// `Matrix`, kept verbatim so the condensed rewrite has an oracle.
fn hierarchical_reference(
    points: &[&QueryVector],
    weights: &[f64],
    n_features: usize,
    metric: Distance,
) -> Vec<(usize, usize, f64)> {
    let n = points.len();
    let mut dist: Matrix = distance_matrix(points, metric, n_features);
    let mut size: Vec<f64> = weights.to_vec();
    let mut active: Vec<bool> = vec![true; n];
    let mut node_of: Vec<usize> = (0..n).collect();
    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    let mut chain: Vec<usize> = Vec::with_capacity(n);
    let mut remaining = n;
    while remaining > 1 {
        if chain.is_empty() {
            let first = active.iter().position(|&a| a).expect("active cluster exists");
            chain.push(first);
        }
        let a = *chain.last().expect("chain non-empty");
        let mut best = usize::MAX;
        let mut best_d = f64::INFINITY;
        for j in 0..n {
            if j != a && active[j] && dist[(a, j)] < best_d {
                best_d = dist[(a, j)];
                best = j;
            }
        }
        let b = best;
        if chain.len() >= 2 && chain[chain.len() - 2] == b {
            chain.pop();
            chain.pop();
            let (keep, drop) = if a < b { (a, b) } else { (b, a) };
            let new_node = n + merges.len();
            merges.push((node_of[keep], node_of[drop], best_d));
            let (sa, sb) = (size[keep], size[drop]);
            for j in 0..n {
                if j != keep && j != drop && active[j] {
                    let d = (sa * dist[(keep, j)] + sb * dist[(drop, j)]) / (sa + sb);
                    dist[(keep, j)] = d;
                    dist[(j, keep)] = d;
                }
            }
            size[keep] = sa + sb;
            active[drop] = false;
            node_of[keep] = new_node;
            remaining -= 1;
        } else {
            chain.push(b);
        }
    }
    merges
}

fn merges_of(d: &Dendrogram) -> Vec<(usize, usize, f64)> {
    d.merges().iter().map(|m| (m.a, m.b, m.distance)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dense and sparse kernels agree bit-for-bit on every pair, metric,
    /// and universe size.
    #[test]
    fn dense_matrix_bit_identical_to_sparse((vectors, universe) in arb_instance()) {
        let refs: Vec<&QueryVector> = vectors.iter().collect();
        let points = PointSet::from_vectors(&refs, universe);
        for metric in all_metrics() {
            let sparse = distance_matrix(&refs, metric, universe);
            let dense = points.distances(metric);
            for i in 0..refs.len() {
                for j in 0..refs.len() {
                    prop_assert_eq!(
                        sparse[(i, j)].to_bits(),
                        dense.get(i, j).to_bits(),
                        "{:?} differs at ({}, {})", metric, i, j
                    );
                }
            }
            // And the condensed expansion equals the sparse full matrix.
            prop_assert!(dense.to_full() == sparse, "{:?}: to_full mismatch", metric);
        }
    }

    /// Per-pair dense distances agree with the batch matrix (the matrix is
    /// filled row-parallel; `distance` is the scalar path).
    #[test]
    fn scalar_and_batch_dense_agree((vectors, universe) in arb_instance()) {
        let refs: Vec<&QueryVector> = vectors.iter().collect();
        let points = PointSet::from_vectors(&refs, universe);
        for metric in all_metrics() {
            let cm = points.distances(metric);
            for i in 0..points.len() {
                for j in 0..points.len() {
                    prop_assert_eq!(
                        cm.get(i, j).to_bits(),
                        points.distance(i, j, metric).to_bits()
                    );
                }
            }
        }
    }

    /// The condensed-layout hierarchical clustering emits exactly the
    /// dendrogram of the old full-`Matrix` implementation.
    #[test]
    fn condensed_hierarchical_matches_full_matrix_reference(
        (vectors, universe) in arb_instance(),
        weighted in any::<bool>(),
    ) {
        let refs: Vec<&QueryVector> = vectors.iter().collect();
        let weights: Vec<f64> = (0..refs.len())
            .map(|i| if weighted { 1.0 + (i % 5) as f64 } else { 1.0 })
            .collect();
        for metric in [Distance::Hamming, Distance::Manhattan] {
            let dendro = hierarchical_cluster(&refs, &weights, universe, metric);
            let reference = hierarchical_reference(&refs, &weights, universe, metric);
            prop_assert_eq!(
                merges_of(&dendro),
                reference,
                "{:?}: dendrogram diverged from full-matrix reference", metric
            );
        }
    }
}
