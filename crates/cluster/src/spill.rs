//! Persistent shard store: the on-disk format closed shards spill to.
//!
//! A [`crate::ShardedPointSet`] shard is **immutable** once closed — its
//! condensed triangle covers only its own points and its cross block only
//! earlier ones, so later pushes never touch it. That makes closed shards
//! the natural spill unit for bounded-memory streaming: serialize the
//! shard to disk, drop its buffers, and reload on demand. Reloaded shards
//! are byte-for-byte the structures that were written (integer mismatch
//! counts and bit-packed point payloads — no floats are stored), so every
//! distance served across a mix of resident and spilled shards is
//! **bit-identical** to the all-resident build (property-tested in
//! `tests/proptest_shards.rs`).
//!
//! # Format (version 1, all integers little-endian)
//!
//! ```text
//! offset  size             field
//! ──────  ───────────────  ────────────────────────────────────────────
//!      0  8                magic  b"LOGRSHRD"
//!      8  4                version (u32, = 1)
//!     12  8                n_features (u64) — universe at shard close
//!     20  8                start (u64) — points before this shard
//!     28  8                w (u64) — points in this shard
//!     36  4·w(w−1)/2       intra: condensed strict-upper-triangle
//!                          mismatch counts (u32 each)
//!      …  4·start·w        cross: mismatch counts vs all earlier points,
//!                          row-major by earlier point index (u32 each)
//!      …  w × (8 + 8·⌈n_features/64⌉)
//!                          bits: one BitVec wire record per point
//!                          (`BitVec::write_bytes`: len u64 + LE blocks)
//!    end−8  8              checksum: FNV-1a 64 over bytes [8, end−8)
//! ```
//!
//! The magic sits outside the checksum (it identifies the file); the
//! version and every header/payload byte sit inside it. Readers validate
//! in order — length floor, magic, version, checksum, then structure — so
//! a truncated download reports [`SpillError::Truncated`], a foreign file
//! [`SpillError::BadMagic`], a future writer [`SpillError::BadVersion`],
//! and any flipped payload byte [`SpillError::ChecksumMismatch`]: every
//! corruption is a typed error, never a panic or a silently-wrong
//! distance.

use crate::vfs::{retry_io, RealFs, Vfs};
use logr_feature::BitVec;
use std::fmt;
use std::path::Path;

/// First 8 bytes of every shard spill file.
pub const MAGIC: [u8; 8] = *b"LOGRSHRD";

/// Format version this build writes and the only one it reads.
pub const VERSION: u32 = 1;

/// Size of everything before the intra payload (magic through `w`).
const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8;

/// Magic + version + the three header words + trailing checksum: no valid
/// file is shorter.
const MIN_LEN: usize = HEADER_LEN + 8;

/// Why a shard file failed to load (or to write).
#[derive(Debug)]
pub enum SpillError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a shard file.
    BadMagic { found: [u8; 8] },
    /// A shard file from a writer this build does not understand.
    BadVersion { found: u32 },
    /// The file ends before its declared payloads do.
    Truncated { expected: usize, found: usize },
    /// Payload bytes do not hash to the stored checksum: bit rot, a
    /// partial overwrite, or tampering.
    ChecksumMismatch { stored: u64, computed: u64 },
    /// Structurally invalid payload (e.g. a point record with set bits
    /// beyond its declared universe, or trailing bytes after the last
    /// payload).
    Corrupt(&'static str),
    /// The file decodes cleanly but is not the shard that belongs at this
    /// position in the store's chain — its start offset or feature
    /// universe disagrees with the shards before it. The classic cause is
    /// shard files whose payloads were swapped or restored from the wrong
    /// store; the engine surfaces this as a store mismatch rather than
    /// ever serving a distance from the wrong shard.
    ChainMismatch { detail: &'static str },
}

impl fmt::Display for SpillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpillError::Io(e) => write!(f, "shard spill I/O error: {e}"),
            SpillError::BadMagic { found } => {
                write!(f, "not a shard file (magic {found:02x?}, want {MAGIC:02x?})")
            }
            SpillError::BadVersion { found } => {
                write!(f, "unsupported shard format version {found} (this build reads {VERSION})")
            }
            SpillError::Truncated { expected, found } => {
                write!(f, "truncated shard file: need {expected} bytes, have {found}")
            }
            SpillError::ChecksumMismatch { stored, computed } => write!(
                f,
                "shard payload checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SpillError::Corrupt(what) => write!(f, "corrupt shard file: {what}"),
            SpillError::ChainMismatch { detail } => {
                write!(f, "shard file does not belong at this chain position: {detail}")
            }
        }
    }
}

impl std::error::Error for SpillError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpillError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SpillError {
    fn from(e: std::io::Error) -> Self {
        SpillError::Io(e)
    }
}

/// One closed shard in serializable form — exactly the state
/// [`crate::ShardedPointSet`] holds for it in memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRecord {
    /// Feature-universe size when the shard closed (each point bitset's
    /// width; later shards may be wider — padded xors reconcile them).
    pub n_features: usize,
    /// Number of points in earlier shards (the cross block's row count).
    pub start: usize,
    /// Condensed strict-upper-triangle mismatch counts between the
    /// shard's own points (`w·(w−1)/2` entries).
    pub intra: Vec<u32>,
    /// Mismatch counts vs every earlier point, row-major by earlier index
    /// (`start · w` entries).
    pub cross: Vec<u32>,
    /// The shard's points as dense bitsets (`w` entries, each
    /// `n_features` wide).
    pub bits: Vec<BitVec>,
}

impl ShardRecord {
    /// Points in the shard.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True for a zero-point shard (still a valid record).
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Heap bytes this record pins while resident — the quantity the
    /// [`crate::ShardedPointSet`] eviction budget is measured in.
    pub fn payload_bytes(&self) -> usize {
        4 * (self.intra.len() + self.cross.len())
            + self
                .bits
                .iter()
                .map(|b| 8 * b.blocks().len() + std::mem::size_of::<BitVec>())
                .sum::<usize>()
    }
}

/// FNV-1a 64-bit over `bytes` — dependency-free, byte-order independent,
/// and plenty for integrity (this guards against rot and truncation, not
/// adversaries with write access to the store). Public because the engine
/// manifest (`logr::manifest`) checksums its own payload the same way —
/// one hash for every file the store writes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Serialize a shard to its wire form (see the module docs for the
/// layout).
pub fn encode(record: &ShardRecord) -> Vec<u8> {
    let w = record.bits.len();
    debug_assert_eq!(record.intra.len(), w * w.saturating_sub(1) / 2, "intra/point mismatch");
    debug_assert_eq!(record.cross.len(), record.start * w, "cross/point mismatch");
    let bits_len: usize = record.bits.iter().map(BitVec::wire_len).sum();
    let mut out =
        Vec::with_capacity(MIN_LEN + 4 * (record.intra.len() + record.cross.len()) + bits_len);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(record.n_features as u64).to_le_bytes());
    out.extend_from_slice(&(record.start as u64).to_le_bytes());
    out.extend_from_slice(&(w as u64).to_le_bytes());
    for &d in &record.intra {
        out.extend_from_slice(&d.to_le_bytes());
    }
    for &d in &record.cross {
        out.extend_from_slice(&d.to_le_bytes());
    }
    for b in &record.bits {
        b.write_bytes(&mut out);
    }
    let checksum = fnv1a64(&out[8..]);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Read a little-endian `u64` at `offset` (caller guarantees bounds).
fn read_u64(bytes: &[u8], offset: usize) -> u64 {
    let mut le = [0u8; 8];
    le.copy_from_slice(&bytes[offset..offset + 8]);
    u64::from_le_bytes(le)
}

/// Decode and validate a shard's wire form. Checks, in order: minimum
/// length, magic, version, total length (derivable from the header alone,
/// so truncation is reported as [`SpillError::Truncated`] rather than as
/// the checksum mismatch it also causes), checksum over `[8, end−8)`,
/// then payload structure — so every way a file can be wrong maps to one
/// [`SpillError`] variant and decoding never panics or over-allocates on
/// hostile headers.
pub fn decode(bytes: &[u8]) -> Result<ShardRecord, SpillError> {
    decode_inner(bytes, true)
}

/// [`decode`] minus the checksum pass — for **re**-reads of a file this
/// process already validated in full. The shard store verifies each
/// spill file once, at first load; a budget-bounded workload then
/// reloads the same immutable file every time the shard is evicted and
/// faulted back in, and re-hashing the whole payload on every fault is
/// pure overhead. Structural validation (length arithmetic, bitset
/// widths) still runs — it is what makes parsing safe — so a file that
/// changed shape underneath us still fails typed rather than panicking;
/// only silent same-shape bit rot between reads goes undetected, which
/// is exactly the window the first validated read already bounded.
pub fn decode_trusted(bytes: &[u8]) -> Result<ShardRecord, SpillError> {
    decode_inner(bytes, false)
}

fn decode_inner(bytes: &[u8], verify_checksum: bool) -> Result<ShardRecord, SpillError> {
    if bytes.len() < MIN_LEN {
        return Err(SpillError::Truncated { expected: MIN_LEN, found: bytes.len() });
    }
    if bytes[..8] != MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&bytes[..8]);
        return Err(SpillError::BadMagic { found });
    }
    let mut version_le = [0u8; 4];
    version_le.copy_from_slice(&bytes[8..12]);
    let version = u32::from_le_bytes(version_le);
    if version != VERSION {
        return Err(SpillError::BadVersion { found: version });
    }

    let n_features = usize::try_from(read_u64(bytes, 12))
        .map_err(|_| SpillError::Corrupt("n_features exceeds the address space"))?;
    let start = usize::try_from(read_u64(bytes, 20))
        .map_err(|_| SpillError::Corrupt("start exceeds the address space"))?;
    let w = usize::try_from(read_u64(bytes, 28))
        .map_err(|_| SpillError::Corrupt("shard width exceeds the address space"))?;

    // The total length is a pure function of the header (every point
    // bitset is `n_features` wide), so size-check before touching — let
    // alone allocating for — any payload: a flipped header byte must not
    // become a multi-gigabyte Vec reservation.
    let intra_len = w
        .checked_mul(w.saturating_sub(1))
        .map(|c| c / 2)
        .ok_or(SpillError::Corrupt("intra size overflows"))?;
    let cross_len = start.checked_mul(w).ok_or(SpillError::Corrupt("cross size overflows"))?;
    let counts_bytes = intra_len
        .checked_add(cross_len)
        .and_then(|c| c.checked_mul(4))
        .ok_or(SpillError::Corrupt("payload size overflows"))?;
    let point_bytes = n_features
        .checked_add(63)
        .map(|n| 8 + 8 * (n / 64))
        .ok_or(SpillError::Corrupt("point size overflows"))?;
    let expected = point_bytes
        .checked_mul(w)
        .and_then(|b| b.checked_add(counts_bytes))
        .and_then(|b| b.checked_add(MIN_LEN))
        .ok_or(SpillError::Corrupt("file size overflows"))?;
    if bytes.len() < expected {
        return Err(SpillError::Truncated { expected, found: bytes.len() });
    }
    if bytes.len() > expected {
        return Err(SpillError::Corrupt("trailing bytes after the last point payload"));
    }

    if verify_checksum {
        let stored = read_u64(bytes, bytes.len() - 8);
        let computed = fnv1a64(&bytes[8..bytes.len() - 8]);
        if stored != computed {
            return Err(SpillError::ChecksumMismatch { stored, computed });
        }
    }

    let payload = &bytes[HEADER_LEN..bytes.len() - 8];
    let decode_u32s = |slice: &[u8]| -> Vec<u32> {
        slice.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()
    };
    let intra = decode_u32s(&payload[..intra_len * 4]);
    let cross = decode_u32s(&payload[intra_len * 4..counts_bytes]);

    let mut bits = Vec::with_capacity(w);
    let mut rest = &payload[counts_bytes..];
    for _ in 0..w {
        // Lengths were validated above; what's left to catch here is a
        // checksummed-but-malformed record (non-canonical padding bits or
        // a width disagreeing with the header) — a writer bug, not rot.
        let (b, used) = BitVec::read_bytes(rest)
            .ok_or(SpillError::Corrupt("point payload has set bits beyond its universe"))?;
        if b.len() != n_features {
            return Err(SpillError::Corrupt("point bitset width disagrees with the header"));
        }
        bits.push(b);
        rest = &rest[used..];
    }
    Ok(ShardRecord { n_features, start, intra, cross, bits })
}

/// Durably write a shard record to `path` through `vfs`: encode, write a
/// `.tmp` sibling, **fsync it**, rename over `path`, then fsync the
/// parent directory. The fsync before the rename is what makes the
/// protocol crash-safe — without it a journaling filesystem may commit
/// the rename before the data, leaving a durable name over unwritten
/// pages (a zero-length or torn shard) after power loss. Transient
/// errors (`EINTR`/`EAGAIN`) are retried with bounded backoff; anything
/// else aborts with the `.tmp` swept so no partial file is orphaned.
/// Returns the file's byte length.
pub fn write_file_with(
    vfs: &dyn Vfs,
    path: &Path,
    record: &ShardRecord,
) -> Result<u64, SpillError> {
    let bytes = encode(record);
    let tmp = path.with_extension("tmp");
    let protocol = (|| {
        retry_io(|| vfs.write(&tmp, &bytes))?;
        retry_io(|| vfs.fsync(&tmp))?;
        retry_io(|| vfs.rename(&tmp, path))?;
        if let Some(parent) = path.parent() {
            retry_io(|| vfs.sync_dir(parent))?;
        }
        Ok(())
    })();
    if let Err(e) = protocol {
        // A retried eviction draws a fresh file name, so a partial .tmp
        // left here would be orphaned forever — sweep it now.
        let _: Result<(), _> = vfs.remove(&tmp);
        return Err(SpillError::Io(e));
    }
    Ok(bytes.len() as u64)
}

/// [`write_file_with`] on the real filesystem.
pub fn write_file(path: &Path, record: &ShardRecord) -> Result<u64, SpillError> {
    write_file_with(&RealFs, path, record)
}

/// Load and validate a shard record from `path` through `vfs`, riding
/// out transient read errors.
pub fn read_file_with(vfs: &dyn Vfs, path: &Path) -> Result<ShardRecord, SpillError> {
    decode(&retry_io(|| vfs.read(path))?)
}

/// [`read_file_with`] on the real filesystem.
pub fn read_file(path: &Path) -> Result<ShardRecord, SpillError> {
    read_file_with(&RealFs, path)
}

/// [`read_file_with`] for a file already validated by this process —
/// decodes via [`decode_trusted`], skipping the checksum pass.
pub fn read_file_trusted_with(vfs: &dyn Vfs, path: &Path) -> Result<ShardRecord, SpillError> {
    decode_trusted(&retry_io(|| vfs.read(path))?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_feature::{FeatureId, QueryVector};

    fn sample_record() -> ShardRecord {
        let qv = |ids: &[u32]| QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect());
        let nf = 130;
        let bits: Vec<BitVec> = [&[0u32, 1, 64][..], &[2, 129], &[]]
            .iter()
            .map(|ids| BitVec::from_query_vector(&qv(ids), nf))
            .collect();
        ShardRecord {
            n_features: nf,
            start: 2,
            intra: vec![5, 3, 4],          // 3·2/2
            cross: vec![1, 2, 3, 4, 5, 6], // 2·3
            bits,
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let record = sample_record();
        let bytes = encode(&record);
        assert_eq!(decode(&bytes).unwrap(), record);
    }

    #[test]
    fn trusted_decode_skips_only_the_checksum_pass() {
        let record = sample_record();
        let mut bytes = encode(&record);
        let n = bytes.len();
        // Flip a checksummed payload byte: the validating decode reports
        // the mismatch, the trusted re-read decode parses it (same-shape
        // rot between reads is out of its contract).
        bytes[HEADER_LEN] ^= 1;
        assert!(matches!(decode(&bytes), Err(SpillError::ChecksumMismatch { .. })));
        assert!(decode_trusted(&bytes).is_ok());
        bytes[HEADER_LEN] ^= 1;
        assert_eq!(decode_trusted(&bytes).unwrap(), record);
        // Structural validation still runs under trust.
        assert!(matches!(decode_trusted(&bytes[..n - 9]), Err(SpillError::Truncated { .. })));
    }

    #[test]
    fn empty_shard_round_trips() {
        let record =
            ShardRecord { n_features: 0, start: 7, intra: vec![], cross: vec![], bits: vec![] };
        assert_eq!(decode(&encode(&record)).unwrap(), record);
    }

    #[test]
    fn file_round_trips() {
        let store = crate::testutil::TempStore::new("spill-unit");
        let path = store.join("shard.bin");
        let record = sample_record();
        let written = write_file(&path, &record).unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());
        assert_eq!(read_file(&path).unwrap(), record);
        // The atomic-rename temp sibling is gone.
        assert!(!path.with_extension("tmp").exists());
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = read_file(Path::new("/nonexistent/logr/shard.bin")).unwrap_err();
        assert!(matches!(err, SpillError::Io(_)), "{err}");
    }

    #[test]
    fn write_protocol_fsyncs_tmp_then_renames_then_syncs_dir() {
        use crate::vfs::{FaultFs, IoOp, Vfs as _};
        let fs = FaultFs::new();
        let dir = Path::new("/store");
        fs.create_dir_all(dir).unwrap();
        let path = dir.join("shard-00000.bin");
        let tmp = dir.join("shard-00000.tmp");
        let before = fs.trace_len();
        write_file_with(&fs, &path, &sample_record()).unwrap();
        let trace = fs.trace();
        let ops = &trace[before..];
        // The exact durable-replace sequence — the fsync of the tmp file
        // BEFORE the rename is the regression this test pins (the
        // unsynced-page hole: rename committed ahead of data).
        assert_eq!(ops.len(), 4, "{ops:?}");
        assert!(matches!(&ops[0], IoOp::Write { path: p, .. } if p == &tmp), "{ops:?}");
        assert!(matches!(&ops[1], IoOp::Fsync { path: p } if p == &tmp), "{ops:?}");
        assert!(
            matches!(&ops[2], IoOp::Rename { from, to } if from == &tmp && to == &path),
            "{ops:?}"
        );
        assert!(matches!(&ops[3], IoOp::SyncDir { dir: d } if d == dir), "{ops:?}");
    }

    #[test]
    fn power_cut_during_shard_write_never_leaves_a_bad_durable_shard() {
        use crate::vfs::{durable_state, FaultFs, LastOpVariant, Vfs as _};
        let record = sample_record();
        let fs = FaultFs::new();
        let dir = Path::new("/store");
        fs.create_dir_all(dir).unwrap();
        let path = dir.join("shard-00000.bin");
        write_file_with(&fs, &path, &record).unwrap();
        let trace = fs.trace();
        let expect = encode(&record);
        for k in 0..=trace.len() {
            for variant in [LastOpVariant::Lost, LastOpVariant::Applied, LastOpVariant::Torn] {
                let (files, _) = durable_state(&trace[..k], variant);
                // Under the shard's durable name there is either nothing
                // (crash before the replace committed) or the complete
                // record — never a zero-length or torn file, because the
                // tmp content is fsynced before the rename.
                if let Some(bytes) = files.get(&path) {
                    assert_eq!(bytes, &expect, "prefix {k}, {variant:?}");
                }
            }
        }
    }
}
