//! Agglomerative hierarchical clustering (average linkage).
//!
//! The paper points to hierarchical clustering as the monotonic alternative
//! to flat clustering (§6.1.1): cutting the dendrogram at successive K gives
//! *nested* partitions, so the Error/Verbosity trade-off can be tuned
//! dynamically without reshuffling clusters.
//!
//! Uses the nearest-neighbor-chain algorithm — `O(n²)` time for reducible
//! linkages such as (weighted) average linkage — over the condensed
//! upper-triangular distance matrix produced by the dense popcount engine
//! ([`PointSet::distances`]), which halves the matrix memory and builds in
//! parallel.

use crate::assign::Clustering;
use crate::distance::Distance;
use crate::pointset::{CondensedMatrix, PointSet};
use logr_feature::QueryVector;

/// One dendrogram merge, in node-id space: leaves are `0..n`, the merge at
/// emission index `i` creates node `n + i`. Children always have smaller
/// node ids than the node they create.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First merged node.
    pub a: usize,
    /// Second merged node.
    pub b: usize,
    /// Average-linkage distance at which the merge happened.
    pub distance: f64,
}

/// The full merge tree produced by agglomerative clustering.
///
/// Merges are stored in *emission order* (nearest-neighbor-chain order),
/// which is not globally sorted by distance; [`Dendrogram::cut`] applies
/// them in stable distance order, which reproduces the greedy agglomerative
/// sequence for reducible linkages.
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    n_leaves: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Number of leaf items.
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// Merges in emission order.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Emission indices sorted by (distance, emission order).
    fn application_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.merges.len()).collect();
        order.sort_by(|&x, &y| self.merges[x].distance.total_cmp(&self.merges[y].distance));
        order
    }

    /// A representative leaf per node id. Safe in emission order: every
    /// merge references only previously created nodes.
    fn leaf_of_nodes(&self) -> Vec<usize> {
        let n = self.n_leaves;
        let mut leaf: Vec<usize> = (0..n + self.merges.len()).collect();
        for (i, m) in self.merges.iter().enumerate() {
            leaf[n + i] = leaf[m.a];
        }
        leaf
    }

    /// Cut the tree into (at most) `k` clusters by applying the `n − k`
    /// cheapest merges.
    ///
    /// The `n − 1` merges form a spanning tree over the leaves (each merge
    /// is one edge between a leaf of its left and right subtree), so *any*
    /// subset of `n − k` merge edges yields exactly `k` components, even
    /// when floating-point noise makes a parent's linkage distance tie or
    /// dip below a child's. Cuts are **monotonic**: `cut(k)` applies a
    /// superset of `cut(k + 1)`'s edges, so it is a coarsening.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn cut(&self, k: usize) -> Clustering {
        assert!(k > 0, "k must be positive");
        let n = self.n_leaves;
        let k = k.min(n);

        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }

        let leaf_of = self.leaf_of_nodes();
        for &mi in self.application_order().iter().take(n - k) {
            let m = self.merges[mi];
            let ra = find(&mut parent, leaf_of[m.a]);
            let rb = find(&mut parent, leaf_of[m.b]);
            parent[rb] = ra;
        }

        let mut remap = std::collections::HashMap::new();
        let mut assignments = Vec::with_capacity(n);
        for i in 0..n {
            let r = find(&mut parent, i);
            let next = remap.len();
            let c = *remap.entry(r).or_insert(next);
            assignments.push(c);
        }
        Clustering::new(remap.len(), assignments)
    }
}

/// Build the average-linkage dendrogram of sparse binary vectors.
///
/// Convenience wrapper: batch-converts the points into a [`PointSet`] and
/// delegates to [`hierarchical_cluster_pointset`]. Callers clustering the
/// same dataset repeatedly should build the `PointSet` once themselves.
///
/// # Panics
/// Panics if `points` is empty or lengths mismatch.
pub fn hierarchical_cluster(
    points: &[&QueryVector],
    weights: &[f64],
    n_features: usize,
    metric: Distance,
) -> Dendrogram {
    hierarchical_cluster_pointset(&PointSet::from_vectors(points, n_features), weights, metric)
}

/// Build the average-linkage dendrogram over a pre-converted [`PointSet`].
///
/// `weights` act as item multiplicities: a vector occurring `c` times pulls
/// linkage averages with weight `c`, exactly as if it appeared `c` times.
/// The working distances live in a condensed upper-triangular matrix —
/// `n·(n−1)/2` doubles instead of the full `n²` — and the initial fill is
/// the parallel popcount kernel.
///
/// # Panics
/// Panics if `points` is empty or lengths mismatch.
pub fn hierarchical_cluster_pointset(
    points: &PointSet,
    weights: &[f64],
    metric: Distance,
) -> Dendrogram {
    assert!(!points.is_empty(), "hierarchical clustering over empty point set");
    hierarchical_cluster_condensed(points.distances(metric), weights)
}

/// Build the average-linkage dendrogram from a precomputed condensed
/// distance matrix (consumed: the Lance–Williams updates overwrite it).
///
/// This is the entry point the sharded/streaming path uses: a
/// [`crate::CondensedShards`] view materializes its merged matrix once and
/// clustering proceeds without recomputing any pairwise distance.
///
/// # Panics
/// Panics if the matrix is empty or its size mismatches `weights`.
pub fn hierarchical_cluster_condensed(mut dist: CondensedMatrix, weights: &[f64]) -> Dendrogram {
    let n = dist.n();
    assert!(n > 0, "hierarchical clustering over empty distance matrix");
    assert_eq!(n, weights.len(), "weights length mismatch");
    let mut size: Vec<f64> = weights.to_vec();
    let mut active: Vec<bool> = vec![true; n];
    // Slot → current node id (leaves 0..n; the i-th merge creates n + i).
    let mut node_of: Vec<usize> = (0..n).collect();
    let mut merges: Vec<Merge> = Vec::with_capacity(n.saturating_sub(1));

    let mut chain: Vec<usize> = Vec::with_capacity(n);
    let mut remaining = n;

    while remaining > 1 {
        if chain.is_empty() {
            // lint:allow(no-panic-paths): remaining > 1 guarantees at least one active slot — loop invariant, not input
            let first = active.iter().position(|&a| a).expect("active cluster exists");
            chain.push(first);
        }
        // lint:allow(no-panic-paths): the branch above pushes when the chain is empty, so last() cannot miss
        let a = *chain.last().expect("chain non-empty");
        // Nearest active neighbor of a (one condensed row + column scan).
        let mut best = usize::MAX;
        let mut best_d = f64::INFINITY;
        for (j, &is_active) in active.iter().enumerate() {
            if j != a && is_active {
                let d = dist.get(a, j);
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
        }
        let b = best;
        if chain.len() >= 2 && chain[chain.len() - 2] == b {
            // Reciprocal nearest neighbors: merge a and b into slot `keep`.
            chain.pop();
            chain.pop();
            let (keep, drop) = if a < b { (a, b) } else { (b, a) };
            let new_node = n + merges.len();
            merges.push(Merge { a: node_of[keep], b: node_of[drop], distance: best_d });
            // Lance–Williams update for weighted average linkage; one
            // condensed write covers both orientations.
            let (sa, sb) = (size[keep], size[drop]);
            for (j, &is_active) in active.iter().enumerate() {
                if j != keep && j != drop && is_active {
                    let d = (sa * dist.get(keep, j) + sb * dist.get(drop, j)) / (sa + sb);
                    dist.set(keep, j, d);
                }
            }
            size[keep] = sa + sb;
            active[drop] = false;
            node_of[keep] = new_node;
            remaining -= 1;
        } else {
            chain.push(b);
        }
    }

    Dendrogram { n_leaves: n, merges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_feature::FeatureId;

    fn qv(ids: &[u32]) -> QueryVector {
        QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
    }

    fn sample() -> Vec<QueryVector> {
        vec![
            qv(&[0, 1, 2]),
            qv(&[0, 1]),
            qv(&[1, 2]),
            qv(&[10, 11, 12]),
            qv(&[10, 11]),
            qv(&[11, 12]),
        ]
    }

    #[test]
    fn produces_n_minus_one_merges() {
        let vs = sample();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let d = hierarchical_cluster(&refs, &[1.0; 6], 16, Distance::Manhattan);
        assert_eq!(d.n_leaves(), 6);
        assert_eq!(d.merges().len(), 5);
    }

    #[test]
    fn children_precede_parents_in_emission_order() {
        let vs = sample();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let d = hierarchical_cluster(&refs, &[1.0; 6], 16, Distance::Manhattan);
        for (i, m) in d.merges().iter().enumerate() {
            assert!(m.a < 6 + i, "merge {i} references future node {}", m.a);
            assert!(m.b < 6 + i, "merge {i} references future node {}", m.b);
        }
    }

    #[test]
    fn parent_distance_at_least_child_distance() {
        // Reducibility of average linkage in practice.
        let vs = sample();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let d = hierarchical_cluster(&refs, &[1.0; 6], 16, Distance::Manhattan);
        let n = d.n_leaves();
        for (i, m) in d.merges().iter().enumerate() {
            for child in [m.a, m.b] {
                if child >= n {
                    let cd = d.merges()[child - n].distance;
                    assert!(cd <= m.distance + 1e-12, "merge {i} cheaper than child");
                }
            }
        }
    }

    #[test]
    fn cut_two_separates_workloads() {
        let vs = sample();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let d = hierarchical_cluster(&refs, &[1.0; 6], 16, Distance::Hamming);
        let c = d.cut(2);
        assert_eq!(c.non_empty(), 2);
        assert_eq!(c.assignments[0], c.assignments[1]);
        assert_eq!(c.assignments[0], c.assignments[2]);
        assert_eq!(c.assignments[3], c.assignments[4]);
        assert_ne!(c.assignments[0], c.assignments[3]);
    }

    #[test]
    fn cuts_are_monotonic_refinements() {
        let vs = sample();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let d = hierarchical_cluster(&refs, &[1.0; 6], 16, Distance::Manhattan);
        for k in 1..6 {
            let coarse = d.cut(k);
            let fine = d.cut(k + 1);
            // Every fine cluster maps into exactly one coarse cluster.
            let mut mapping = std::collections::HashMap::new();
            for i in 0..6 {
                let entry = mapping.entry(fine.assignments[i]).or_insert(coarse.assignments[i]);
                assert_eq!(*entry, coarse.assignments[i], "cut({k}) not a coarsening");
            }
        }
    }

    #[test]
    fn cut_extremes() {
        let vs = sample();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let d = hierarchical_cluster(&refs, &[1.0; 6], 16, Distance::Manhattan);
        assert_eq!(d.cut(1).non_empty(), 1);
        assert_eq!(d.cut(6).non_empty(), 6);
        // k beyond n clamps.
        assert_eq!(d.cut(100).non_empty(), 6);
    }

    #[test]
    fn single_point_dendrogram() {
        let vs = [qv(&[0])];
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let d = hierarchical_cluster(&refs, &[1.0], 4, Distance::Manhattan);
        assert_eq!(d.merges().len(), 0);
        assert_eq!(d.cut(1).k, 1);
    }

    #[test]
    fn weights_affect_linkage() {
        // Heavily weighted outlier pulls average-linkage distances.
        let vs = [qv(&[0]), qv(&[0, 1]), qv(&[5, 6, 7])];
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let d1 = hierarchical_cluster(&refs, &[1.0, 1.0, 1.0], 8, Distance::Manhattan);
        let d2 = hierarchical_cluster(&refs, &[100.0, 1.0, 1.0], 8, Distance::Manhattan);
        // Both still merge the two close points first.
        assert_eq!(d1.merges()[0].distance, d2.merges()[0].distance);
        assert_eq!(d1.cut(2).assignments, d2.cut(2).assignments);
    }

    #[test]
    fn condensed_entry_point_matches_pointset_path() {
        let vs = sample();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let ps = PointSet::from_vectors(&refs, 16);
        let weights = vec![1.0; refs.len()];
        let via_points = hierarchical_cluster_pointset(&ps, &weights, Distance::Hamming);
        let via_matrix = hierarchical_cluster_condensed(ps.distances(Distance::Hamming), &weights);
        assert_eq!(via_points, via_matrix);
    }

    #[test]
    fn larger_random_instance_is_consistent() {
        // 40 points in two blocks; all cuts valid partitions.
        let mut vs = Vec::new();
        for i in 0..20u32 {
            vs.push(qv(&[i % 5, (i + 1) % 5]));
            vs.push(qv(&[20 + i % 5, 20 + (i + 1) % 5]));
        }
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let weights = vec![1.0; refs.len()];
        let d = hierarchical_cluster(&refs, &weights, 32, Distance::Hamming);
        for k in [1, 2, 3, 7, 40] {
            let c = d.cut(k);
            assert_eq!(c.len(), 40);
            assert!(c.non_empty() <= k.min(40));
        }
        assert_eq!(d.cut(2).non_empty(), 2);
    }
}
