//! Test-support helpers shared by the spill/eviction suites across the
//! workspace (this crate's unit + integration tests and `logr-core`'s).
//! Hidden from docs; not part of the public API surface.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique temp directory for one test, removed on drop. The name carries
/// the pid and a process-global sequence number so parallel test binaries
/// and shrinking proptest reruns never collide under a shared `TMPDIR`.
pub struct TempStore(PathBuf);

impl TempStore {
    /// Create `$TMPDIR/logr-<tag>-<pid>-<seq>`.
    ///
    /// # Panics
    /// Panics if the directory cannot be created.
    pub fn new(tag: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "logr-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        // lint:allow(vfs-bypass, no-panic-paths): test-only scaffolding that manages the real TMPDIR around whatever Vfs is under test; a failed mkdir should abort the test
        std::fs::create_dir_all(&dir).expect("create temp store dir");
        TempStore(dir)
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.0
    }

    /// A path inside the directory.
    pub fn join(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        // lint:allow(vfs-bypass): cleanup of the real TMPDIR this helper created; routing it through a Vfs under test would delete through the fault injector
        let _ = std::fs::remove_dir_all(&self.0);
    }
}
