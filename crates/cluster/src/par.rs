//! Scoped-thread parallel helpers for the clustering hot paths.
//!
//! Built directly on `std::thread::scope` so the workspace stays
//! dependency-free: rayon is the natural fit but is unavailable in offline
//! builds. The `parallel` cargo feature (default on) enables threading;
//! without it every helper degrades to the serial loop, so all call sites
//! are written once and behave identically either way.
//!
//! Work is distributed round-robin over at most [`threads`] workers, which
//! balances the triangular row lengths of condensed distance matrices
//! without a work-stealing queue.

/// Below this many points, row/chunk-parallel fills run serially; the
/// thread handshake would dominate the work. Shared by the condensed
/// matrix build and the spectral affinity fill.
pub(crate) const PARALLEL_MIN_POINTS: usize = 128;

/// Upper bound on worker threads (1 when the `parallel` feature is off).
///
/// The `LOGR_THREADS` environment variable overrides the detected core
/// count (still requires the `parallel` feature). CI uses it to exercise
/// the multi-worker fan-out on single-core runners.
pub(crate) fn threads() -> usize {
    #[cfg(feature = "parallel")]
    {
        if let Some(n) = std::env::var("LOGR_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
            return n.max(1);
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
}

/// Process `tasks` on up to `n_threads` workers; each worker folds its tasks
/// into an accumulator seeded by `init`. Returns the per-worker accumulators
/// in worker order (deterministic for a fixed thread count).
pub(crate) fn fold_tasks<T, A, I, W>(tasks: Vec<T>, n_threads: usize, init: I, worker: W) -> Vec<A>
where
    T: Send,
    A: Send,
    I: Fn() -> A + Sync,
    W: Fn(&mut A, T) + Sync,
{
    let n_threads = n_threads.clamp(1, tasks.len().max(1));
    if n_threads == 1 {
        let mut acc = init();
        for task in tasks {
            worker(&mut acc, task);
        }
        return vec![acc];
    }

    let mut buckets: Vec<Vec<T>> = (0..n_threads).map(|_| Vec::new()).collect();
    for (i, task) in tasks.into_iter().enumerate() {
        buckets[i % n_threads].push(task);
    }
    let init = &init;
    let worker = &worker;
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    let mut acc = init();
                    for task in bucket {
                        worker(&mut acc, task);
                    }
                    acc
                })
            })
            .collect();
        // lint:allow(no-panic-paths): join() only errs when the worker itself panicked; re-raising that panic on the caller is the correct propagation, not a new failure mode
        handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect()
    })
}

/// Split a condensed strict-upper-triangle buffer over `n` points into its
/// per-row slices `(i, rowᵢ)` — row `i` holds the `n − 1 − i` cells
/// `(i, i+1..n)`. The rows partition the buffer, so [`run_tasks`] can fill
/// them lock-free. Shared by the monolithic build, the shard build, and
/// the shard merge.
pub(crate) fn triangle_rows<T>(buf: &mut [T], n: usize) -> Vec<(usize, &mut [T])> {
    let mut rows: Vec<(usize, &mut [T])> = Vec::with_capacity(n.saturating_sub(1));
    let mut rest = buf;
    for i in 0..n.saturating_sub(1) {
        let (row, tail) = rest.split_at_mut(n - 1 - i);
        rows.push((i, row));
        rest = tail;
    }
    rows
}

/// Process `tasks` on up to `n_threads` workers, discarding results.
pub(crate) fn run_tasks<T, W>(tasks: Vec<T>, n_threads: usize, worker: W)
where
    T: Send,
    W: Fn(T) + Sync,
{
    fold_tasks(tasks, n_threads, || (), |(), task| worker(task));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_covers_every_task_once() {
        for n_threads in [1, 2, 7] {
            let tasks: Vec<usize> = (0..100).collect();
            let partials = fold_tasks(tasks, n_threads, || 0usize, |acc, t| *acc += t);
            assert_eq!(partials.iter().sum::<usize>(), 4950, "threads={n_threads}");
        }
    }

    #[test]
    fn run_tasks_writes_disjoint_slices() {
        let mut data = vec![0u32; 64];
        let chunks: Vec<(usize, &mut [u32])> = data.chunks_mut(10).enumerate().collect();
        run_tasks(chunks, threads(), |(idx, chunk)| {
            for c in chunk.iter_mut() {
                *c = idx as u32 + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[63], 7);
    }

    #[test]
    fn empty_task_list_is_fine() {
        let partials = fold_tasks(Vec::<usize>::new(), 8, || 0usize, |acc, t| *acc += t);
        assert_eq!(partials.iter().sum::<usize>(), 0);
    }
}
