//! Scoped-thread parallel helpers for the clustering hot paths.
//!
//! Built directly on `std::thread::scope` so the workspace stays
//! dependency-free: rayon is the natural fit but is unavailable in offline
//! builds. The `parallel` cargo feature (default on) enables threading;
//! without it every helper degrades to the serial loop, so all call sites
//! are written once and behave identically either way.
//!
//! Work is distributed round-robin over at most [`threads`] workers, which
//! balances the triangular row lengths of condensed distance matrices
//! without a work-stealing queue.

/// Below this many points, row/chunk-parallel fills run serially; the
/// thread handshake would dominate the work. Shared by the condensed
/// matrix build and the spectral affinity fill.
pub(crate) const PARALLEL_MIN_POINTS: usize = 128;

/// Upper bound on worker threads (1 when the `parallel` feature is off).
pub(crate) fn threads() -> usize {
    #[cfg(feature = "parallel")]
    {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
}

/// Process `tasks` on up to `n_threads` workers; each worker folds its tasks
/// into an accumulator seeded by `init`. Returns the per-worker accumulators
/// in worker order (deterministic for a fixed thread count).
pub(crate) fn fold_tasks<T, A, I, W>(tasks: Vec<T>, n_threads: usize, init: I, worker: W) -> Vec<A>
where
    T: Send,
    A: Send,
    I: Fn() -> A + Sync,
    W: Fn(&mut A, T) + Sync,
{
    let n_threads = n_threads.clamp(1, tasks.len().max(1));
    if n_threads == 1 {
        let mut acc = init();
        for task in tasks {
            worker(&mut acc, task);
        }
        return vec![acc];
    }

    let mut buckets: Vec<Vec<T>> = (0..n_threads).map(|_| Vec::new()).collect();
    for (i, task) in tasks.into_iter().enumerate() {
        buckets[i % n_threads].push(task);
    }
    let init = &init;
    let worker = &worker;
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    let mut acc = init();
                    for task in bucket {
                        worker(&mut acc, task);
                    }
                    acc
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect()
    })
}

/// Process `tasks` on up to `n_threads` workers, discarding results.
pub(crate) fn run_tasks<T, W>(tasks: Vec<T>, n_threads: usize, worker: W)
where
    T: Send,
    W: Fn(T) + Sync,
{
    fold_tasks(tasks, n_threads, || (), |(), task| worker(task));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_covers_every_task_once() {
        for n_threads in [1, 2, 7] {
            let tasks: Vec<usize> = (0..100).collect();
            let partials = fold_tasks(tasks, n_threads, || 0usize, |acc, t| *acc += t);
            assert_eq!(partials.iter().sum::<usize>(), 4950, "threads={n_threads}");
        }
    }

    #[test]
    fn run_tasks_writes_disjoint_slices() {
        let mut data = vec![0u32; 64];
        let chunks: Vec<(usize, &mut [u32])> = data.chunks_mut(10).enumerate().collect();
        run_tasks(chunks, threads(), |(idx, chunk)| {
            for c in chunk.iter_mut() {
                *c = idx as u32 + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[63], 7);
    }

    #[test]
    fn empty_task_list_is_fine() {
        let partials = fold_tasks(Vec::<usize>::new(), 8, || 0usize, |acc, t| *acc += t);
        assert_eq!(partials.iter().sum::<usize>(), 0);
    }
}
