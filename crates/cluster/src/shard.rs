//! Appendable, sharded condensed-matrix construction (streaming windows).
//!
//! The monolithic [`PointSet::distances`](crate::PointSet::distances) build
//! recomputes every pair each time a dataset grows, which makes windowed
//! ingestion quadratic in the whole history. [`ShardedPointSet`] fixes the
//! cost model: points arrive in **shards** (one per streaming window, or one
//! per dataset), and closing a shard of `w` points against a history of `h`
//! only computes
//!
//! * the shard's own condensed triangle — `w·(w−1)/2` pairs — and
//! * the `h × w` cross block against the existing points,
//!
//! both on scoped threads via the existing `parallel` feature. Earlier
//! shards are never touched again.
//!
//! Shards store **integer mismatch counts** (`d = |x ⊕ y|`), not metric
//! values: every §6.1 metric is a function of `(d, n_features)`, and the
//! feature universe may still be growing while early shards are built. A
//! metric is applied only at read time, through the same
//! [`Distance::of_mismatches`] kernel as the monolithic path — so the merged
//! view is **bit-identical** to `PointSet::distances` over the concatenated
//! points at the final universe (property-tested in
//! `tests/proptest_shards.rs`).
//!
//! [`CondensedShards`] is the merged read view: it serves the same
//! `n()`/`get(i, j)` reads as [`CondensedMatrix`], and
//! [`CondensedShards::to_condensed`] materializes a real `CondensedMatrix`
//! for the consumers that mutate distances in place (hierarchical
//! Lance–Williams) or scan the raw buffer (spectral's median-σ heuristic).

use crate::distance::Distance;
use crate::par;
use crate::par::PARALLEL_MIN_POINTS;
use crate::pointset::{condensed_row_start, CondensedMatrix};
use logr_feature::{BitVec, QueryVector};

/// Cell-count threshold below which shard fills run serially (the same
/// break-even as `PARALLEL_MIN_POINTS` points in the monolithic build).
const PARALLEL_MIN_CELLS: usize = PARALLEL_MIN_POINTS * (PARALLEL_MIN_POINTS - 1) / 2;

/// A dataset of binary vectors accumulated shard by shard, with pairwise
/// mismatch counts maintained incrementally.
#[derive(Debug, Clone, Default)]
pub struct ShardedPointSet {
    bits: Vec<BitVec>,
    /// Widest universe seen so far; reads normalize against this.
    n_features: usize,
    /// Shard `s` spans points `shard_starts[s] .. shard_starts[s + 1]`.
    shard_starts: Vec<usize>,
    /// Per-shard condensed (strict upper triangle) mismatch counts.
    intra: Vec<Vec<u32>>,
    /// Per-shard cross block vs all earlier points, row-major by the
    /// earlier point's index: `cross[s][i * w_s + (j − start_s)]`.
    cross: Vec<Vec<u32>>,
}

impl ShardedPointSet {
    /// Empty set (zero shards, empty universe).
    pub fn new() -> Self {
        ShardedPointSet { shard_starts: vec![0], ..ShardedPointSet::default() }
    }

    /// Total number of points across all shards.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when no points have been pushed.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Number of shards pushed (empty shards count).
    pub fn n_shards(&self) -> usize {
        self.shard_starts.len() - 1
    }

    /// Current feature-universe size (the widest push so far).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The point range covered by shard `s`.
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    pub fn shard_range(&self, s: usize) -> std::ops::Range<usize> {
        self.shard_starts[s]..self.shard_starts[s + 1]
    }

    /// Append one shard of points over a universe of `n_features`,
    /// computing its internal triangle and its cross block against all
    /// earlier points. Cost: `O(w² + h·w)` popcounts for a shard of `w`
    /// points over a history of `h` — never `O((h + w)²)`.
    ///
    /// # Panics
    /// Panics if `n_features` is smaller than a previous push's universe
    /// (codebooks only grow), or if a vector sets a feature outside it.
    pub fn push_shard(&mut self, vectors: &[&QueryVector], n_features: usize) {
        self.push_shard_threads(vectors, n_features, par::threads());
    }

    /// [`ShardedPointSet::push_shard`] with an explicit worker count.
    /// Mismatch counts are integers written to disjoint slices, so the
    /// result is identical for every `n_threads` (unit- and
    /// property-tested); this entry point exists so tests and benches can
    /// force the fan-out.
    pub fn push_shard_threads(
        &mut self,
        vectors: &[&QueryVector],
        n_features: usize,
        n_threads: usize,
    ) {
        assert!(
            n_features >= self.n_features,
            "feature universe may only grow ({} < {})",
            n_features,
            self.n_features
        );
        self.n_features = n_features;
        let start = self.bits.len();
        let w = vectors.len();
        let new_bits: Vec<BitVec> =
            vectors.iter().map(|v| BitVec::from_query_vector(v, n_features)).collect();

        // Intra-shard strict upper triangle: rows (i, i+1..w) partition the
        // condensed buffer, so they fill lock-free.
        let mut intra = vec![0u32; w * w.saturating_sub(1) / 2];
        if w >= 2 {
            let cells = intra.len();
            let rows = par::triangle_rows(&mut intra, w);
            let nt = if cells < PARALLEL_MIN_CELLS { 1 } else { n_threads };
            let nb = &new_bits;
            par::run_tasks(rows, nt, |(i, row)| {
                let a = &nb[i];
                for (offset, cell) in row.iter_mut().enumerate() {
                    *cell = a.xor_count(&nb[i + 1 + offset]) as u32;
                }
            });
        }

        // Cross block against the history: one row per earlier point.
        // Earlier bitsets may be narrower (the universe grew); the padded
        // xor zero-extends them, which preserves mismatch counts exactly.
        let mut cross = vec![0u32; start * w];
        if start > 0 && w > 0 {
            let rows: Vec<(usize, &mut [u32])> = cross.chunks_mut(w).enumerate().collect();
            let nt = if start * w < PARALLEL_MIN_CELLS { 1 } else { n_threads };
            let nb = &new_bits;
            let history = &self.bits;
            par::run_tasks(rows, nt, |(i, row)| {
                let a = &history[i];
                for (j, cell) in row.iter_mut().enumerate() {
                    *cell = a.xor_count_padded(&nb[j]) as u32;
                }
            });
        }

        self.bits.extend(new_bits);
        self.shard_starts.push(self.bits.len());
        self.intra.push(intra);
        self.cross.push(cross);
    }

    /// Shard containing point `i` (the latest shard when empty shards
    /// share a boundary, which is always the one that owns the point).
    fn shard_of(&self, i: usize) -> usize {
        self.shard_starts.partition_point(|&s| s <= i) - 1
    }

    /// `|xᵢ ⊕ xⱼ|`, served from the precomputed shard buffers.
    ///
    /// # Panics
    /// Panics if an index is out of range.
    pub fn mismatches(&self, i: usize, j: usize) -> usize {
        let n = self.bits.len();
        assert!(i < n && j < n, "index ({i}, {j}) out of range {n}");
        if i == j {
            return 0;
        }
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        let s = self.shard_of(j);
        let start = self.shard_starts[s];
        let w = self.shard_starts[s + 1] - start;
        if i >= start {
            // Same shard: condensed triangle of shard s.
            let (a, b) = (i - start, j - start);
            self.intra[s][condensed_row_start(w, a) + (b - a - 1)] as usize
        } else {
            self.cross[s][i * w + (j - start)] as usize
        }
    }

    /// Distance between points `i` and `j` under `metric`, normalized at
    /// the **current** universe — identical to what the monolithic
    /// `PointSet` would report for the concatenated points.
    #[inline]
    pub fn distance(&self, i: usize, j: usize, metric: Distance) -> f64 {
        metric.of_mismatches(self.mismatches(i, j), self.n_features)
    }

    /// Merged read view under `metric` (borrowing; no materialization).
    pub fn condensed_shards(&self, metric: Distance) -> CondensedShards<'_> {
        CondensedShards { set: self, metric }
    }

    /// Materialize the merged condensed matrix under `metric` — the exact
    /// bits `PointSet::distances` would produce for the same points.
    pub fn condensed(&self, metric: Distance) -> CondensedMatrix {
        self.condensed_shards(metric).to_condensed()
    }
}

/// Merged view over a [`ShardedPointSet`]'s per-shard buffers: serves the
/// same `n()`/`get(i, j)` reads as [`CondensedMatrix`] without copying, and
/// materializes one on demand for consumers that mutate in place.
#[derive(Debug, Clone, Copy)]
pub struct CondensedShards<'a> {
    set: &'a ShardedPointSet,
    metric: Distance,
}

impl CondensedShards<'_> {
    /// Number of points (side length of the represented square matrix).
    pub fn n(&self) -> usize {
        self.set.len()
    }

    /// The metric this view folds mismatch counts through.
    pub fn metric(&self) -> Distance {
        self.metric
    }

    /// Distance between `i` and `j` (0 on the diagonal) — the same
    /// contract as [`CondensedMatrix::get`].
    ///
    /// # Panics
    /// Panics if an index is out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.set.distance(i, j, self.metric)
    }

    /// Materialize as a [`CondensedMatrix`], filling rows in parallel.
    ///
    /// Merged row `i` is a concatenation of **contiguous** source runs —
    /// the suffix of point `i`'s row in its own shard's triangle, then one
    /// cross-block row per later shard — so materialization is a straight
    /// metric fold over slices, with no per-cell shard lookup.
    pub fn to_condensed(&self) -> CondensedMatrix {
        let n = self.set.len();
        let mut cm = CondensedMatrix::zeros(n);
        if n < 2 {
            return cm;
        }
        let rows = par::triangle_rows(cm.data_mut(), n);
        let n_threads = if n < PARALLEL_MIN_POINTS { 1 } else { par::threads() };
        let set = self.set;
        let metric = self.metric;
        let nf = set.n_features;
        par::run_tasks(rows, n_threads, |(i, row)| {
            let s = set.shard_of(i);
            let start = set.shard_starts[s];
            let w = set.shard_starts[s + 1] - start;
            let a = i - start;
            // Cells (i, i+1..shard_end): the tail of row `a` in shard s's
            // condensed triangle.
            let intra_run = &set.intra[s][condensed_row_start(w, a)..][..w - 1 - a];
            let mut out = 0;
            for &d in intra_run {
                row[out] = metric.of_mismatches(d as usize, nf);
                out += 1;
            }
            // Cells (i, shard t): row `i` of each later shard's cross block.
            for t in s + 1..set.n_shards() {
                let wt = set.shard_starts[t + 1] - set.shard_starts[t];
                for &d in &set.cross[t][i * wt..][..wt] {
                    row[out] = metric.of_mismatches(d as usize, nf);
                    out += 1;
                }
            }
            debug_assert_eq!(out, row.len());
        });
        cm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pointset::PointSet;
    use logr_feature::FeatureId;

    fn qv(ids: &[u32]) -> QueryVector {
        QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
    }

    fn sample() -> Vec<QueryVector> {
        vec![
            qv(&[0, 1, 2]),
            qv(&[2, 3]),
            qv(&[]),
            qv(&[0, 5, 63, 64]),
            qv(&[64]),
            qv(&[1]),
            qv(&[7, 8]),
        ]
    }

    fn all_metrics() -> [Distance; 6] {
        [
            Distance::Euclidean,
            Distance::Manhattan,
            Distance::Minkowski(4.0),
            Distance::Hamming,
            Distance::Chebyshev,
            Distance::Canberra,
        ]
    }

    #[test]
    fn sharded_matches_monolithic_across_shardings() {
        let vs = sample();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let nf = 80;
        let monolithic = PointSet::from_vectors(&refs, nf);
        for shard_size in [1, 2, 3, refs.len()] {
            let mut sharded = ShardedPointSet::new();
            for chunk in refs.chunks(shard_size) {
                sharded.push_shard(chunk, nf);
            }
            assert_eq!(sharded.len(), refs.len());
            for metric in all_metrics() {
                let merged = sharded.condensed(metric);
                let whole = monolithic.distances(metric);
                assert_eq!(
                    merged.as_slice(),
                    whole.as_slice(),
                    "{metric:?} shard_size={shard_size}"
                );
            }
        }
    }

    #[test]
    fn view_reads_match_materialized_matrix() {
        let vs = sample();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let mut sharded = ShardedPointSet::new();
        for chunk in refs.chunks(3) {
            sharded.push_shard(chunk, 80);
        }
        let view = sharded.condensed_shards(Distance::Hamming);
        let cm = view.to_condensed();
        assert_eq!(view.n(), cm.n());
        for i in 0..view.n() {
            for j in 0..view.n() {
                assert_eq!(view.get(i, j).to_bits(), cm.get(i, j).to_bits(), "({i}, {j})");
            }
        }
        assert_eq!(view.get(2, 2), 0.0);
    }

    #[test]
    fn growing_universe_normalizes_at_the_widest_push() {
        // Shard 1 lives in a 8-feature universe, shard 2 widens it to 128;
        // Hamming must normalize every pair by the final width, exactly as
        // a monolithic build over the final universe would.
        let a = [qv(&[0, 1]), qv(&[2])];
        let b = [qv(&[100, 127]), qv(&[0])];
        let refs_a: Vec<&QueryVector> = a.iter().collect();
        let refs_b: Vec<&QueryVector> = b.iter().collect();
        let mut sharded = ShardedPointSet::new();
        sharded.push_shard(&refs_a, 8);
        sharded.push_shard(&refs_b, 128);
        assert_eq!(sharded.n_features(), 128);

        let all: Vec<&QueryVector> = a.iter().chain(b.iter()).collect();
        let monolithic = PointSet::from_vectors(&all, 128);
        for metric in all_metrics() {
            assert_eq!(
                sharded.condensed(metric).as_slice(),
                monolithic.distances(metric).as_slice(),
                "{metric:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "universe may only grow")]
    fn shrinking_universe_rejected() {
        let v = qv(&[0]);
        let mut sharded = ShardedPointSet::new();
        sharded.push_shard(&[&v], 16);
        sharded.push_shard(&[&v], 8);
    }

    #[test]
    fn empty_shards_are_transparent() {
        let vs = sample();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let mut sharded = ShardedPointSet::new();
        sharded.push_shard(&[], 80);
        sharded.push_shard(&refs[..4], 80);
        sharded.push_shard(&[], 80);
        sharded.push_shard(&refs[4..], 80);
        assert_eq!(sharded.n_shards(), 4);
        assert_eq!(sharded.shard_range(1), 0..4);
        assert!(sharded.shard_range(2).is_empty());
        let monolithic = PointSet::from_vectors(&refs, 80);
        assert_eq!(
            sharded.condensed(Distance::Manhattan).as_slice(),
            monolithic.distances(Distance::Manhattan).as_slice()
        );
    }

    #[test]
    fn forced_thread_counts_are_deterministic() {
        // Big enough to cross PARALLEL_MIN_CELLS in both intra and cross.
        let vs: Vec<QueryVector> =
            (0..300u32).map(|i| qv(&[i % 32, (i * 7) % 32, (i * 13) % 32])).collect();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let mut results = Vec::new();
        for n_threads in [1usize, 2, 7] {
            let mut sharded = ShardedPointSet::new();
            for chunk in refs.chunks(150) {
                sharded.push_shard_threads(chunk, 32, n_threads);
            }
            results.push(sharded.condensed(Distance::Euclidean));
        }
        assert_eq!(results[0].as_slice(), results[1].as_slice());
        assert_eq!(results[0].as_slice(), results[2].as_slice());
    }

    #[test]
    fn degenerate_sizes() {
        let empty = ShardedPointSet::new();
        assert!(empty.is_empty());
        assert_eq!(empty.n_shards(), 0);
        assert_eq!(empty.condensed(Distance::Hamming).n(), 0);

        let v = qv(&[1]);
        let mut one = ShardedPointSet::new();
        one.push_shard(&[&v], 4);
        assert_eq!(one.len(), 1);
        assert_eq!(one.mismatches(0, 0), 0);
        let cm = one.condensed(Distance::Manhattan);
        assert_eq!(cm.n(), 1);
        assert_eq!(cm.get(0, 0), 0.0);
    }
}
