//! Appendable, sharded condensed-matrix construction (streaming windows),
//! with optional out-of-core storage for closed shards.
//!
//! The monolithic [`PointSet::distances`](crate::PointSet::distances) build
//! recomputes every pair each time a dataset grows, which makes windowed
//! ingestion quadratic in the whole history. [`ShardedPointSet`] fixes the
//! cost model: points arrive in **shards** (one per streaming window, or one
//! per dataset), and closing a shard of `w` points against a history of `h`
//! only computes
//!
//! * the shard's own condensed triangle — `w·(w−1)/2` pairs — and
//! * the `h × w` cross block against the existing points,
//!
//! both on scoped threads via the existing `parallel` feature. Earlier
//! shards are never touched again — which also makes them **immutable**,
//! and immutability is what the out-of-core layer exploits.
//!
//! # Out-of-core shards (PR 3)
//!
//! Shard payloads grow quadratically with the history (`Σ hₛ·wₛ` cross
//! cells), so an unbounded stream eventually cannot keep every closed
//! shard resident. [`ShardedPointSet::set_spill`] attaches a persistent
//! store ([`SpillConfig`]: a directory plus a resident-byte budget in the
//! versioned, checksummed [`crate::spill`] format); after every append the
//! set evicts closed shards oldest-first — the hot tail (the newest
//! shard) is pinned — until the resident payload fits the budget. Spilled
//! shards reload transparently on read: point lookups go through a
//! single-slot reload cache, and bulk merges ([`CondensedShards`]) stream
//! one spilled shard at a time, so peak memory is the budget plus one
//! shard. Files are written once (shards are immutable) and re-eviction
//! after a reload is free. Reloaded payloads are integer mismatch counts
//! and bit-packed points — no floats touch disk — so a spilled/reloaded
//! set serves **bit-identical** distances to the all-resident build
//! (property-tested in `tests/proptest_shards.rs`).
//!
//! Shards store **integer mismatch counts** (`d = |x ⊕ y|`), not metric
//! values: every §6.1 metric is a function of `(d, n_features)`, and the
//! feature universe may still be growing while early shards are built. A
//! metric is applied only at read time, through the same
//! [`Distance::of_mismatches`] kernel as the monolithic path — so the merged
//! view is **bit-identical** to `PointSet::distances` over the concatenated
//! points at the final universe (property-tested in
//! `tests/proptest_shards.rs`).
//!
//! [`CondensedShards`] is the merged read view: it serves the same
//! `n()`/`get(i, j)` reads as [`CondensedMatrix`], and
//! [`CondensedShards::to_condensed`] materializes a real `CondensedMatrix`
//! for the consumers that mutate distances in place (hierarchical
//! Lance–Williams) or scan the raw buffer (spectral's median-σ heuristic).

use crate::distance::Distance;
use crate::par;
use crate::par::PARALLEL_MIN_POINTS;
use crate::pointset::{condensed_row_start, CondensedMatrix};
use crate::spill::{self, ShardRecord, SpillError};
use crate::vfs::{self, Vfs};
use logr_feature::{BitVec, QueryVector};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cell-count threshold below which shard fills run serially (the same
/// break-even as `PARALLEL_MIN_POINTS` points in the monolithic build).
const PARALLEL_MIN_CELLS: usize = PARALLEL_MIN_POINTS * (PARALLEL_MIN_POINTS - 1) / 2;

/// Process-global sequence for spill file names. Clones of a spilling set
/// share a directory, so per-set indexes alone would collide; the file
/// name also carries the pid so concurrent processes pointed at one
/// store directory cannot overwrite each other's shards.
static SPILL_FILE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Out-of-core policy for a [`ShardedPointSet`].
#[derive(Debug, Clone)]
pub struct SpillConfig {
    /// Directory shard files are written to (created if absent). Files
    /// are never deleted by the set — a shard's file outlives reloads, so
    /// re-evicting it later costs no I/O.
    pub dir: PathBuf,
    /// Resident shard-payload budget in bytes. After every append the set
    /// evicts closed shards oldest-first (hot tail pinned) until resident
    /// bytes fit; `0` keeps only the pinned tail resident. Oldest-first
    /// *is* least-recently-appended, and merges touch every shard
    /// equally, so no finer recency signal exists to act on.
    pub resident_budget: usize,
}

/// One shard and where its payload currently lives.
#[derive(Debug, Clone)]
struct ShardSlot {
    /// `Some` while resident; `None` once spilled (then `path` is `Some`).
    data: Option<Arc<ShardRecord>>,
    /// The shard's spill file, once it has ever been written.
    path: Option<PathBuf>,
    /// Payload heap size (stable across spill/reload).
    bytes: usize,
}

/// Single-slot cache for point reads against spilled shards, so repeated
/// `get(i, j)` probes into the same shard pay one reload, not one per
/// probe. Bulk merges bypass it (they stream shards explicitly).
#[derive(Debug, Default)]
struct ReloadCache {
    entry: Option<(usize, Arc<ShardRecord>)>,
}

/// A dataset of binary vectors accumulated shard by shard, with pairwise
/// mismatch counts maintained incrementally and (optionally) spilled to a
/// persistent store under a resident-memory budget.
#[derive(Debug)]
pub struct ShardedPointSet {
    /// Widest universe seen so far; reads normalize against this.
    n_features: usize,
    /// Shard `s` spans points `shard_starts[s] .. shard_starts[s + 1]`.
    shard_starts: Vec<usize>,
    shards: Vec<ShardSlot>,
    spill: Option<SpillConfig>,
    /// Storage layer all spill reads/writes go through ([`crate::vfs`]);
    /// [`vfs::RealFs`] unless a test injected a fault filesystem.
    vfs: Arc<dyn Vfs>,
    cache: Mutex<ReloadCache>,
}

impl Clone for ShardedPointSet {
    fn clone(&self) -> Self {
        ShardedPointSet {
            n_features: self.n_features,
            shard_starts: self.shard_starts.clone(),
            shards: self.shards.clone(),
            spill: self.spill.clone(),
            vfs: self.vfs.clone(),
            cache: Mutex::new(ReloadCache { entry: self.cache_lock().entry.clone() }),
        }
    }
}

impl Default for ShardedPointSet {
    fn default() -> Self {
        ShardedPointSet::new()
    }
}

impl ShardedPointSet {
    /// Empty set (zero shards, empty universe, no spill store).
    pub fn new() -> Self {
        ShardedPointSet {
            n_features: 0,
            // One boundary, zero shards — `len()` reads the last entry,
            // so this must never be empty (Default delegates here).
            shard_starts: vec![0],
            shards: Vec::new(),
            spill: None,
            vfs: vfs::default_vfs(),
            cache: Mutex::new(ReloadCache::default()),
        }
    }

    /// Route every subsequent spill read/write through `vfs` — the
    /// injection point fault tests build on. Production code never calls
    /// this ([`vfs::RealFs`] is the default).
    pub fn set_vfs(&mut self, vfs: Arc<dyn Vfs>) {
        self.vfs = vfs;
    }

    /// The storage layer this set's spill I/O goes through.
    pub fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.vfs
    }

    /// Rebuild a set from a directory of previously spilled shard files —
    /// the recovery path behind `logr::Engine::open`. Every file is fully
    /// decoded (length, magic, version, checksum, structure) — the
    /// **once-per-open validation**; later reloads of these write-once
    /// files skip the checksum pass ([`spill::decode_trusted`]) — and the
    /// chain is validated — each record's `start` must equal the points
    /// before it and the feature universe may only grow — then dropped
    /// again, so
    /// the rebuilt set starts with **zero resident bytes** regardless of
    /// the budget and every read reloads transparently, exactly as after
    /// a long-running eviction.
    ///
    /// Any invalid file surfaces as the [`SpillError`] the decoder
    /// reports (missing → `Io`, cut short → `Truncated`, rotted →
    /// `ChecksumMismatch`, …); a chain inconsistency between valid files —
    /// including shard files whose payloads were swapped — is
    /// [`SpillError::ChainMismatch`]. Never panics.
    pub fn from_spilled_files(
        config: SpillConfig,
        files: &[PathBuf],
    ) -> Result<ShardedPointSet, SpillError> {
        ShardedPointSet::from_spilled_files_with(vfs::default_vfs(), config, files)
    }

    /// [`ShardedPointSet::from_spilled_files`] with every file operation
    /// routed through `vfs`.
    pub fn from_spilled_files_with(
        vfs: Arc<dyn Vfs>,
        config: SpillConfig,
        files: &[PathBuf],
    ) -> Result<ShardedPointSet, SpillError> {
        vfs.create_dir_all(&config.dir)?;
        let mut shard_starts = vec![0usize];
        let mut shards = Vec::with_capacity(files.len());
        let mut n_features = 0usize;
        let mut len = 0usize;
        for path in files {
            let record = spill::read_file_with(&*vfs, path)?;
            if record.start != len {
                return Err(SpillError::ChainMismatch {
                    detail: "recovered shard chain has a start/length mismatch",
                });
            }
            if record.n_features < n_features {
                return Err(SpillError::ChainMismatch {
                    detail: "recovered shard chain shrinks the feature universe",
                });
            }
            n_features = record.n_features;
            len += record.len();
            shard_starts.push(len);
            shards.push(ShardSlot {
                data: None,
                path: Some(path.clone()),
                bytes: record.payload_bytes(),
            });
        }
        Ok(ShardedPointSet {
            n_features,
            shard_starts,
            shards,
            spill: Some(config),
            vfs,
            cache: Mutex::new(ReloadCache::default()),
        })
    }

    /// The single-slot reload cache, with poisoning folded to a panic in
    /// one place.
    fn cache_lock(&self) -> std::sync::MutexGuard<'_, ReloadCache> {
        // lint:allow(no-panic-paths): the cache is pure redundancy (the spill file always exists), but a poisoned lock means another thread panicked mid-reload — propagating the abort is safer than serving a half-updated cache
        self.cache.lock().expect("reload cache poisoned")
    }

    /// Total number of points across all shards.
    pub fn len(&self) -> usize {
        // lint:allow(no-panic-paths): shard_starts is initialized to [0] and only ever appended to; an empty vec is unreachable by construction
        *self.shard_starts.last().expect("shard_starts is never empty")
    }

    /// True when no points have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards pushed (empty shards count).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Current feature-universe size (the widest push so far).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The point range covered by shard `s`.
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    pub fn shard_range(&self, s: usize) -> std::ops::Range<usize> {
        self.shard_starts[s]..self.shard_starts[s + 1]
    }

    /// Attach (or reconfigure) the out-of-core store: creates `dir` and
    /// immediately enforces the budget over the existing shards. The set
    /// works identically afterwards — reads against spilled shards reload
    /// transparently.
    pub fn set_spill(&mut self, config: SpillConfig) -> Result<(), SpillError> {
        self.vfs.create_dir_all(&config.dir)?;
        self.spill = Some(config);
        self.enforce_budget()
    }

    /// The active out-of-core policy, if any.
    pub fn spill_config(&self) -> Option<&SpillConfig> {
        self.spill.as_ref()
    }

    /// Re-bound the resident budget of an already-attached spill store,
    /// immediately enforcing the new bound (shrinking evicts oldest-first;
    /// growing lets future reloads stay resident). No-op without a spill
    /// store — a purely in-memory set has nowhere to evict to.
    pub fn set_resident_budget(&mut self, bytes: usize) -> Result<(), SpillError> {
        match self.spill.as_mut() {
            Some(config) => {
                config.resident_budget = bytes;
                self.enforce_budget()
            }
            None => Ok(()),
        }
    }

    /// Bytes of shard payload currently resident (including the reload
    /// cache). The eviction budget bounds this between appends; a bulk
    /// merge over spilled shards transiently adds at most one shard.
    pub fn resident_bytes(&self) -> usize {
        let slots: usize = self.shards.iter().filter(|s| s.data.is_some()).map(|s| s.bytes).sum();
        let cached = match &self.cache_lock().entry {
            // A cache entry for a shard that is (still) resident would
            // double-count, but the cache only ever holds spilled shards.
            Some((s, _)) if self.shards[*s].data.is_none() => self.shards[*s].bytes,
            _ => 0,
        };
        slots + cached
    }

    /// Number of shards whose payload is currently on disk only.
    pub fn spilled_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.data.is_none()).count()
    }

    /// True when shard `s`'s payload is in memory.
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    pub fn shard_is_resident(&self, s: usize) -> bool {
        self.shards[s].data.is_some()
    }

    /// Ensure shard `s` has a store file (first write only — shards are
    /// immutable, so the file is reused forever after), leaving its
    /// residency untouched.
    ///
    /// # Panics
    /// Panics if no store was configured via
    /// [`ShardedPointSet::set_spill`] and the shard has never been
    /// written.
    fn write_shard_file(&mut self, s: usize) -> Result<(), SpillError> {
        if self.shards[s].path.is_some() {
            return Ok(());
        }
        // lint:allow(no-panic-paths): shards spill only through write_shard_file, so an unwritten shard still holds its payload — invariant, not input
        let data = self.shards[s].data.clone().expect("an unwritten shard is always resident");
        let dir = &self
            .spill
            .as_ref()
            // lint:allow(no-panic-paths): documented "# Panics" contract — calling persist without set_spill is a caller bug, not a runtime condition
            .expect("configure a spill store (set_spill) before persisting shards")
            .dir;
        let seq = SPILL_FILE_SEQ.fetch_add(1, Ordering::Relaxed);
        // pid + process-global sequence: unique across clones sharing
        // the directory AND across concurrent processes pointed at
        // the same store (either would otherwise overwrite the
        // other's checksum-valid files).
        let path = dir.join(format!("shard-{s:05}-{}-{seq:08x}.bin", std::process::id()));
        spill::write_file_with(&*self.vfs, &path, &data)?;
        self.shards[s].path = Some(path);
        Ok(())
    }

    /// Write shard `s` to the store (first eviction only — the file is
    /// reused afterwards) and drop its resident payload. Returns `false`
    /// when the shard was already spilled. A write failure keeps the
    /// payload resident (no data loss).
    ///
    /// # Panics
    /// Panics if `s` is out of range, or if no store was configured via
    /// [`ShardedPointSet::set_spill`] and the shard has never been
    /// written.
    pub fn spill_shard(&mut self, s: usize) -> Result<bool, SpillError> {
        if self.shards[s].data.is_none() {
            return Ok(false);
        }
        self.write_shard_file(s)?;
        self.shards[s].data = None;
        Ok(true)
    }

    /// Write every shard that has never been written to the store,
    /// **without evicting anything** — afterwards each shard's payload
    /// exists on disk (the durability point `Engine::open` recovers from)
    /// while residency, and therefore read performance, is unchanged.
    /// Returns how many files this call wrote.
    ///
    /// # Panics
    /// Panics if no store was configured via
    /// [`ShardedPointSet::set_spill`] and a shard has never been written.
    pub fn persist_all(&mut self) -> Result<usize, SpillError> {
        let mut written = 0;
        for s in 0..self.shards.len() {
            if self.shards[s].path.is_none() {
                self.write_shard_file(s)?;
                written += 1;
            }
        }
        Ok(written)
    }

    /// Shard `s`'s store file, once it has ever been written
    /// ([`ShardedPointSet::persist_all`] / eviction assign it).
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    pub fn shard_file(&self, s: usize) -> Option<&Path> {
        self.shards[s].path.as_deref()
    }

    /// Force every shard to disk, including the pinned tail, and clear the
    /// reload cache — afterwards `resident_bytes() == 0` and every read
    /// reloads. Returns how many shards this call evicted.
    ///
    /// # Panics
    /// Panics if no store was configured via
    /// [`ShardedPointSet::set_spill`] and a shard has never been written
    /// (same contract as [`ShardedPointSet::spill_shard`]).
    pub fn spill_all(&mut self) -> Result<usize, SpillError> {
        let mut evicted = 0;
        for s in 0..self.shards.len() {
            if self.spill_shard(s)? {
                evicted += 1;
            }
        }
        self.cache_lock().entry = None;
        Ok(evicted)
    }

    /// Evict until the resident payload fits the budget: drop the reload
    /// cache first (it is pure redundancy — the file already exists), then
    /// spill resident shards oldest-first (= least recently appended;
    /// merges touch every shard equally, so there is no finer per-shard
    /// recency to act on). The newest shard is pinned — the streaming
    /// close path reads it immediately — so the budget is honored
    /// whenever it covers at least that one shard.
    fn enforce_budget(&mut self) -> Result<(), SpillError> {
        let Some(budget) = self.spill.as_ref().map(|c| c.resident_budget) else {
            return Ok(());
        };
        if self.resident_bytes() > budget {
            self.cache_lock().entry = None;
        }
        // One pass: track the remaining resident total and resume the
        // oldest-first scan where it left off, instead of recomputing
        // `resident_bytes()` (a full slot scan plus a lock) per eviction
        // — bulk evictions are O(shards), not O(shards²).
        let mut resident = self.resident_bytes();
        let mut from = 0;
        while resident > budget {
            let pinned = self.shards.len().saturating_sub(1);
            let candidate = self.shards[from..pinned.max(from)]
                .iter()
                .position(|slot| slot.data.is_some())
                .map(|offset| from + offset);
            let Some(s) = candidate else { break };
            resident -= self.shards[s].bytes;
            self.spill_shard(s)?;
            from = s + 1;
        }
        Ok(())
    }

    /// Run `f` over shard `s`'s payload, reloading from the store when it
    /// is spilled (through the single-slot cache).
    fn try_with_shard<R>(
        &self,
        s: usize,
        f: impl FnOnce(&ShardRecord) -> R,
    ) -> Result<R, SpillError> {
        let data = self.load_shard(s, true)?;
        Ok(f(&data))
    }

    /// Infallible [`ShardedPointSet::try_with_shard`] for read paths whose
    /// signatures predate the store.
    ///
    /// # Panics
    /// Panics if a spilled shard cannot be reloaded (store deleted or
    /// corrupted underneath the set).
    fn with_shard<R>(&self, s: usize, f: impl FnOnce(&ShardRecord) -> R) -> R {
        self.try_with_shard(s, f).unwrap_or_else(|e| self.reload_panic(s, e))
    }

    /// Panic for an infallible read path whose reload failed, naming the
    /// shard's file — a store directory holds many pid/sequence-named
    /// files, so the shard index alone would not say which one to
    /// inspect or restore.
    fn reload_panic(&self, s: usize, e: SpillError) -> ! {
        // lint:allow(no-panic-paths): the one deliberate bridge from pre-store infallible read signatures to store errors; fallible callers use try_with_shard instead
        panic!("reloading spilled shard {s} ({:?}) failed: {e}", self.shards[s].path)
    }

    /// The one reload path: shard `s`'s payload from memory, the reload
    /// cache, or (last) the store — optionally caching a store miss. Both
    /// the caching and transient read flavors fold through here, so the
    /// reload invariants ("a spilled shard always has a file"; a
    /// single-slot cache, only ever holding spilled shards) live in one
    /// place.
    fn load_shard(&self, s: usize, populate_cache: bool) -> Result<Arc<ShardRecord>, SpillError> {
        if let Some(data) = &self.shards[s].data {
            return Ok(data.clone());
        }
        let mut cache = self.cache_lock();
        if let Some((cached, data)) = &cache.entry {
            if *cached == s {
                return Ok(data.clone());
            }
        }
        // lint:allow(no-panic-paths): spilling writes the file before dropping the payload, so a spilled shard without a path is unreachable by construction
        let path = self.shards[s].path.as_ref().expect("a spilled shard always has a file");
        // Validate-once: every slot's file was checksummed in full exactly
        // once in this process — `from_spilled_files_with` decodes every
        // recovered file before admitting it, and every other path is a
        // file this process encoded and wrote itself. Shard files are
        // write-once, so reloads re-parse the (still structurally
        // validated) payload without re-hashing it — a budget-bounded
        // workload faults the same immutable files back in constantly,
        // and the checksum pass was the dominant redundant cost.
        let data = Arc::new(spill::read_file_trusted_with(&*self.vfs, path)?);
        if populate_cache {
            cache.entry = Some((s, data.clone()));
        }
        Ok(data)
    }

    /// Append one shard of points over a universe of `n_features`,
    /// computing its internal triangle and its cross block against all
    /// earlier points. Cost: `O(w² + h·w)` popcounts for a shard of `w`
    /// points over a history of `h` — never `O((h + w)²)`.
    ///
    /// # Panics
    /// Panics if `n_features` is smaller than a previous push's universe
    /// (codebooks only grow), if a vector sets a feature outside it, or —
    /// with a spill store attached — if the store fails
    /// ([`ShardedPointSet::try_push_shard`] reports that as a typed error
    /// instead).
    pub fn push_shard(&mut self, vectors: &[&QueryVector], n_features: usize) {
        self.push_shard_threads(vectors, n_features, par::threads());
    }

    /// [`ShardedPointSet::push_shard`] with an explicit worker count.
    /// Mismatch counts are integers written to disjoint slices, so the
    /// result is identical for every `n_threads` (unit- and
    /// property-tested); this entry point exists so tests and benches can
    /// force the fan-out.
    pub fn push_shard_threads(
        &mut self,
        vectors: &[&QueryVector],
        n_features: usize,
        n_threads: usize,
    ) {
        self.try_push_shard_threads(vectors, n_features, n_threads)
            // lint:allow(no-panic-paths): documented "# Panics" contract of the legacy infallible append; try_push_shard is the typed-error route
            .unwrap_or_else(|e| panic!("shard spill store failed during append: {e}"));
    }

    /// Fallible [`ShardedPointSet::push_shard`]: appending against spilled
    /// history reads the store (and may evict afterwards), and this
    /// variant surfaces those failures as [`SpillError`]s.
    ///
    /// Error semantics: a failure while **reloading history** for the
    /// cross block leaves the set untouched (safe to retry); a failure
    /// while **evicting** afterwards means the append itself already
    /// succeeded — check `len()` before retrying, or points double-append.
    pub fn try_push_shard(
        &mut self,
        vectors: &[&QueryVector],
        n_features: usize,
    ) -> Result<(), SpillError> {
        self.try_push_shard_threads(vectors, n_features, par::threads())
    }

    /// [`ShardedPointSet::try_push_shard`] with an explicit worker count.
    pub fn try_push_shard_threads(
        &mut self,
        vectors: &[&QueryVector],
        n_features: usize,
        n_threads: usize,
    ) -> Result<(), SpillError> {
        assert!(
            n_features >= self.n_features,
            "feature universe may only grow ({} < {})",
            n_features,
            self.n_features
        );
        let start = self.len();
        let w = vectors.len();
        let new_bits: Vec<BitVec> =
            vectors.iter().map(|v| BitVec::from_query_vector(v, n_features)).collect();

        // Intra-shard strict upper triangle: rows (i, i+1..w) partition the
        // condensed buffer, so they fill lock-free.
        let mut intra = vec![0u32; w * w.saturating_sub(1) / 2];
        if w >= 2 {
            let cells = intra.len();
            let rows = par::triangle_rows(&mut intra, w);
            let nt = if cells < PARALLEL_MIN_CELLS { 1 } else { n_threads };
            let nb = &new_bits;
            par::run_tasks(rows, nt, |(i, row)| {
                let a = &nb[i];
                for (offset, cell) in row.iter_mut().enumerate() {
                    *cell = a.xor_count(&nb[i + 1 + offset]) as u32;
                }
            });
        }

        // Cross block against the history: one row per earlier point,
        // streamed one history shard at a time so spilled shards are
        // reloaded once each (and dropped again — peak memory stays at
        // the budget plus one shard). Earlier bitsets may be narrower
        // (the universe grew); the padded xor zero-extends them, which
        // preserves mismatch counts exactly.
        let mut cross = vec![0u32; start * w];
        if start > 0 && w > 0 {
            let mut rows = cross.chunks_mut(w).enumerate();
            let nb = &new_bits;
            // Gate parallelism on the *total* cross size, not per shard:
            // a long stream's history is many small shards, and per-shard
            // gating would serialize the whole block even when start·w is
            // huge. (Each shard still pays its own spawn round; the fill
            // dominates once the total crosses the threshold.)
            let nt = if start * w < PARALLEL_MIN_CELLS { 1 } else { n_threads };
            for h in 0..self.shards.len() {
                let hs = self.shard_starts[h];
                let he = self.shard_starts[h + 1];
                if he == hs {
                    continue;
                }
                let shard_rows: Vec<(usize, &mut [u32])> = rows.by_ref().take(he - hs).collect();
                self.try_with_shard(h, |data| {
                    par::run_tasks(shard_rows, nt, |(i, row)| {
                        let a = &data.bits[i - hs];
                        for (j, cell) in row.iter_mut().enumerate() {
                            *cell = a.xor_count_padded(&nb[j]) as u32;
                        }
                    });
                })?;
            }
        }

        // The fallible cross-block reloads are done: only now may
        // set-level state change, so an `Err` up to this point leaves the
        // set exactly as it was — in particular the universe width, which
        // every later distance read normalizes by. (The one later
        // fallible step, `enforce_budget`, can still fail — but by then
        // the append has succeeded, which is what its `Err` means; see
        // `try_push_shard`'s docs.)
        self.n_features = n_features;
        let record = ShardRecord { n_features, start, intra, cross, bits: new_bits };
        let bytes = record.payload_bytes();
        self.shards.push(ShardSlot { data: Some(Arc::new(record)), path: None, bytes });
        self.shard_starts.push(start + w);
        self.enforce_budget()
    }

    /// Shard containing point `i` (the latest shard when empty shards
    /// share a boundary, which is always the one that owns the point).
    fn shard_of(&self, i: usize) -> usize {
        self.shard_starts.partition_point(|&s| s <= i) - 1
    }

    /// `|xᵢ ⊕ xⱼ|`, served from the precomputed shard buffers (reloading
    /// a spilled shard if needed).
    ///
    /// # Panics
    /// Panics if an index is out of range, or if a spilled shard cannot be
    /// reloaded.
    pub fn mismatches(&self, i: usize, j: usize) -> usize {
        let n = self.len();
        assert!(i < n && j < n, "index ({i}, {j}) out of range {n}");
        if i == j {
            return 0;
        }
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        let s = self.shard_of(j);
        let start = self.shard_starts[s];
        let w = self.shard_starts[s + 1] - start;
        self.with_shard(s, |data| {
            if i >= start {
                // Same shard: condensed triangle of shard s.
                let (a, b) = (i - start, j - start);
                data.intra[condensed_row_start(w, a) + (b - a - 1)] as usize
            } else {
                data.cross[i * w + (j - start)] as usize
            }
        })
    }

    /// Distance between points `i` and `j` under `metric`, normalized at
    /// the **current** universe — identical to what the monolithic
    /// `PointSet` would report for the concatenated points.
    #[inline]
    pub fn distance(&self, i: usize, j: usize, metric: Distance) -> f64 {
        metric.of_mismatches(self.mismatches(i, j), self.n_features)
    }

    /// Merged read view under `metric` (borrowing; no materialization).
    pub fn condensed_shards(&self, metric: Distance) -> CondensedShards<'_> {
        CondensedShards { set: self, metric }
    }

    /// Materialize the merged condensed matrix under `metric` — the exact
    /// bits `PointSet::distances` would produce for the same points.
    ///
    /// # Panics
    /// Panics if a spilled shard cannot be reloaded
    /// ([`ShardedPointSet::try_condensed`] reports that as a typed error
    /// instead).
    pub fn condensed(&self, metric: Distance) -> CondensedMatrix {
        self.condensed_shards(metric).to_condensed()
    }

    /// Fallible [`ShardedPointSet::condensed`]: a spilled shard that can
    /// no longer be reloaded (store deleted or corrupted underneath the
    /// set) surfaces as a [`SpillError`] instead of a panic — the flavor
    /// `logr::Engine` snapshot reads go through.
    pub fn try_condensed(&self, metric: Distance) -> Result<CondensedMatrix, SpillError> {
        self.condensed_shards(metric).try_to_condensed()
    }

    /// Merge every shard into **one** — same points, same integer
    /// mismatch counts, one slot — and return what was replaced. A long
    /// stream accretes one shard (and one store file) per window, and
    /// every bulk read then pays per-shard segment bookkeeping plus, when
    /// spilled, one file reload each; compaction collapses that to a
    /// single record whose merged triangle is assembled by **copying**
    /// the existing intra/cross integers (never recomputing a distance),
    /// so the compacted set serves bit-identical reads. Bitsets recorded
    /// at an older, narrower universe are zero-widened to the current
    /// one, which preserves every mismatch count.
    ///
    /// With a store attached the merged shard is written immediately
    /// (write-once files: the constituent files are obsolete but never
    /// deleted by the set — clones may still reference them; the
    /// returned [`CompactionStats::stale_files`] tells a caller which
    /// files stopped being referenced *by this set*, and deleting them
    /// is safe only once no clone can read them — `logr::Engine` defers
    /// that to its next recovery) and, when the merged payload exceeds
    /// the resident budget, evicted — compaction must not turn a bounded
    /// stream into an unbounded resident matrix just because the tail is
    /// normally pinned.
    ///
    /// No-op (and no write) when the set has fewer than two shards.
    pub fn compact(&mut self) -> Result<CompactionStats, SpillError> {
        let n_shards_before = self.n_shards();
        if n_shards_before <= 1 {
            return Ok(CompactionStats { shards_merged: 0, stale_files: Vec::new() });
        }
        let n = self.len();
        let nf = self.n_features;
        let mut intra = vec![0u32; n * n.saturating_sub(1) / 2];
        let mut bits: Vec<BitVec> = Vec::with_capacity(n);
        {
            // Same segment walk as the metric merge (`try_to_condensed`),
            // but copying raw u32 mismatch counts: shard t owns the intra
            // suffix of its own points' rows plus one w_t-wide run in each
            // earlier row, consumed left to right as t ascends.
            let mut rest: Vec<&mut [u32]> =
                par::triangle_rows(&mut intra, n).into_iter().map(|(_, row)| row).collect();
            for t in 0..self.shards.len() {
                let ts = self.shard_starts[t];
                let te = self.shard_starts[t + 1];
                let wt = te - ts;
                if wt == 0 {
                    continue;
                }
                let data = self.load_shard(t, false)?;
                for b in &data.bits {
                    bits.push(if b.len() == nf { b.clone() } else { b.widened(nf) });
                }
                for (i, slot) in rest.iter_mut().enumerate().take(te) {
                    let seg_len = if i >= ts { te - i - 1 } else { wt };
                    if seg_len == 0 {
                        continue;
                    }
                    let (seg, tail) = std::mem::take(slot).split_at_mut(seg_len);
                    *slot = tail;
                    let run: &[u32] = if i >= ts {
                        let a = i - ts;
                        &data.intra[condensed_row_start(wt, a)..][..wt - 1 - a]
                    } else {
                        &data.cross[i * wt..][..wt]
                    };
                    seg.copy_from_slice(run);
                }
            }
            debug_assert!(rest.iter().all(|r| r.is_empty()), "compaction left unfilled cells");
        }
        let record = ShardRecord { n_features: nf, start: 0, intra, cross: Vec::new(), bits };
        let bytes = record.payload_bytes();
        // Write the merged file *before* touching any set state, so an
        // `Err` anywhere in compaction leaves the set exactly as it was
        // (same contract as `try_push_shard`'s pre-append reloads).
        let mut path = None;
        let mut keep_resident = true;
        if let Some(cfg) = &self.spill {
            let seq = SPILL_FILE_SEQ.fetch_add(1, Ordering::Relaxed);
            let p = cfg.dir.join(format!("shard-00000-{}-{seq:08x}.bin", std::process::id()));
            spill::write_file_with(&*self.vfs, &p, &record)?;
            path = Some(p);
            keep_resident = bytes <= cfg.resident_budget;
        }
        let stale_files: Vec<PathBuf> =
            self.shards.iter().filter_map(|slot| slot.path.clone()).collect();
        let data = keep_resident.then(|| Arc::new(record));
        self.shards = vec![ShardSlot { data, path, bytes }];
        self.shard_starts = vec![0, n];
        self.cache_lock().entry = None;
        Ok(CompactionStats { shards_merged: n_shards_before, stale_files })
    }
}

/// What [`ShardedPointSet::compact`] replaced.
#[derive(Debug, Clone, Default)]
pub struct CompactionStats {
    /// Shards merged into the single survivor (0 when compaction was a
    /// no-op).
    pub shards_merged: usize,
    /// Store files of the replaced shards. Obsolete for this set, but not
    /// deleted by it — clones sharing the directory may still read them;
    /// an exclusive owner may remove them.
    pub stale_files: Vec<PathBuf>,
}

/// Merged view over a [`ShardedPointSet`]'s per-shard buffers: serves the
/// same `n()`/`get(i, j)` reads as [`CondensedMatrix`] without copying, and
/// materializes one on demand for consumers that mutate in place.
#[derive(Debug, Clone, Copy)]
pub struct CondensedShards<'a> {
    set: &'a ShardedPointSet,
    metric: Distance,
}

impl CondensedShards<'_> {
    /// Number of points (side length of the represented square matrix).
    pub fn n(&self) -> usize {
        self.set.len()
    }

    /// The metric this view folds mismatch counts through.
    pub fn metric(&self) -> Distance {
        self.metric
    }

    /// Distance between `i` and `j` (0 on the diagonal) — the same
    /// contract as [`CondensedMatrix::get`].
    ///
    /// # Panics
    /// Panics if an index is out of range, or if a spilled shard cannot be
    /// reloaded.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.set.distance(i, j, self.metric)
    }

    /// Materialize as a [`CondensedMatrix`], filling rows in parallel.
    ///
    /// The merge streams **one shard at a time**: shard `t` owns a
    /// contiguous segment of every merged row it touches — the suffix of
    /// its own points' intra rows, plus one `w_t`-wide run in each earlier
    /// point's row (its cross block) — and merged rows are consumed left
    /// to right as `t` ascends, so each segment is split off and filled
    /// exactly once, in parallel, with no per-cell shard lookup. Spilled
    /// shards are reloaded for their turn and dropped again, so
    /// materializing over a spilled history holds at most one shard's
    /// payload beyond the resident budget.
    ///
    /// # Panics
    /// Panics if a spilled shard cannot be reloaded
    /// ([`CondensedShards::try_to_condensed`] reports that as a typed
    /// error instead).
    pub fn to_condensed(&self) -> CondensedMatrix {
        self.try_to_condensed()
            // lint:allow(no-panic-paths): documented "# Panics" contract of the infallible materializer; try_to_condensed is the typed-error route
            .unwrap_or_else(|e| panic!("materializing the merged condensed matrix failed: {e}"))
    }

    /// Fallible [`CondensedShards::to_condensed`]: a spilled shard that
    /// can no longer be reloaded surfaces as a [`SpillError`].
    pub fn try_to_condensed(&self) -> Result<CondensedMatrix, SpillError> {
        let set = self.set;
        let n = set.len();
        let mut cm = CondensedMatrix::zeros(n);
        if n < 2 {
            return Ok(cm);
        }
        let metric = self.metric;
        let nf = set.n_features;
        let n_threads = par::threads();
        // Each merged row, progressively consumed: rest[i] holds the not-
        // yet-filled tail of row i.
        let mut rest: Vec<&mut [f64]> =
            par::triangle_rows(cm.data_mut(), n).into_iter().map(|(_, row)| row).collect();
        for t in 0..set.shards.len() {
            let ts = set.shard_starts[t];
            let te = set.shard_starts[t + 1];
            let wt = te - ts;
            if wt == 0 {
                continue;
            }
            // Loaded without touching the reload cache: a cache hit is
            // reused, but a miss loads transiently and drops when the
            // shard's segments are filled — a completed merge leaves
            // `resident_bytes()` exactly where it found it, so the budget
            // holds after a `history_summary`-style read, not just after
            // appends.
            let data = set.load_shard(t, false)?;
            let mut tasks: Vec<(usize, &mut [f64])> = Vec::with_capacity(te);
            let mut cells = 0usize;
            for (i, slot) in rest.iter_mut().enumerate().take(te) {
                // Rows of shard t's own points still need their intra
                // suffix; every earlier row needs t's cross run.
                let seg_len = if i >= ts { te - i - 1 } else { wt };
                if seg_len == 0 {
                    continue;
                }
                let (seg, tail) = std::mem::take(slot).split_at_mut(seg_len);
                *slot = tail;
                cells += seg_len;
                tasks.push((i, seg));
            }
            // Fan out per shard, by this shard's own cell count — a
            // history of many small shards fills serially instead of
            // paying a scoped spawn/join round per shard.
            let nt = if cells < PARALLEL_MIN_CELLS { 1 } else { n_threads };
            par::run_tasks(tasks, nt, |(i, seg)| {
                let run: &[u32] = if i >= ts {
                    let a = i - ts;
                    &data.intra[condensed_row_start(wt, a)..][..wt - 1 - a]
                } else {
                    &data.cross[i * wt..][..wt]
                };
                debug_assert_eq!(seg.len(), run.len());
                for (cell, &d) in seg.iter_mut().zip(run) {
                    *cell = metric.of_mismatches(d as usize, nf);
                }
            });
        }
        debug_assert!(rest.iter().all(|r| r.is_empty()), "merge left unfilled cells");
        Ok(cm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pointset::PointSet;
    use crate::testutil::TempStore;
    use logr_feature::FeatureId;

    fn qv(ids: &[u32]) -> QueryVector {
        QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
    }

    fn sample() -> Vec<QueryVector> {
        vec![
            qv(&[0, 1, 2]),
            qv(&[2, 3]),
            qv(&[]),
            qv(&[0, 5, 63, 64]),
            qv(&[64]),
            qv(&[1]),
            qv(&[7, 8]),
        ]
    }

    fn all_metrics() -> [Distance; 6] {
        [
            Distance::Euclidean,
            Distance::Manhattan,
            Distance::Minkowski(4.0),
            Distance::Hamming,
            Distance::Chebyshev,
            Distance::Canberra,
        ]
    }

    #[test]
    fn sharded_matches_monolithic_across_shardings() {
        let vs = sample();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let nf = 80;
        let monolithic = PointSet::from_vectors(&refs, nf);
        for shard_size in [1, 2, 3, refs.len()] {
            let mut sharded = ShardedPointSet::new();
            for chunk in refs.chunks(shard_size) {
                sharded.push_shard(chunk, nf);
            }
            assert_eq!(sharded.len(), refs.len());
            for metric in all_metrics() {
                let merged = sharded.condensed(metric);
                let whole = monolithic.distances(metric);
                assert_eq!(
                    merged.as_slice(),
                    whole.as_slice(),
                    "{metric:?} shard_size={shard_size}"
                );
            }
        }
    }

    #[test]
    fn view_reads_match_materialized_matrix() {
        let vs = sample();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let mut sharded = ShardedPointSet::new();
        for chunk in refs.chunks(3) {
            sharded.push_shard(chunk, 80);
        }
        let view = sharded.condensed_shards(Distance::Hamming);
        let cm = view.to_condensed();
        assert_eq!(view.n(), cm.n());
        for i in 0..view.n() {
            for j in 0..view.n() {
                assert_eq!(view.get(i, j).to_bits(), cm.get(i, j).to_bits(), "({i}, {j})");
            }
        }
        assert_eq!(view.get(2, 2), 0.0);
    }

    #[test]
    fn growing_universe_normalizes_at_the_widest_push() {
        // Shard 1 lives in a 8-feature universe, shard 2 widens it to 128;
        // Hamming must normalize every pair by the final width, exactly as
        // a monolithic build over the final universe would.
        let a = [qv(&[0, 1]), qv(&[2])];
        let b = [qv(&[100, 127]), qv(&[0])];
        let refs_a: Vec<&QueryVector> = a.iter().collect();
        let refs_b: Vec<&QueryVector> = b.iter().collect();
        let mut sharded = ShardedPointSet::new();
        sharded.push_shard(&refs_a, 8);
        sharded.push_shard(&refs_b, 128);
        assert_eq!(sharded.n_features(), 128);

        let all: Vec<&QueryVector> = a.iter().chain(b.iter()).collect();
        let monolithic = PointSet::from_vectors(&all, 128);
        for metric in all_metrics() {
            assert_eq!(
                sharded.condensed(metric).as_slice(),
                monolithic.distances(metric).as_slice(),
                "{metric:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "universe may only grow")]
    fn shrinking_universe_rejected() {
        let v = qv(&[0]);
        let mut sharded = ShardedPointSet::new();
        sharded.push_shard(&[&v], 16);
        sharded.push_shard(&[&v], 8);
    }

    #[test]
    fn empty_shards_are_transparent() {
        let vs = sample();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let mut sharded = ShardedPointSet::new();
        sharded.push_shard(&[], 80);
        sharded.push_shard(&refs[..4], 80);
        sharded.push_shard(&[], 80);
        sharded.push_shard(&refs[4..], 80);
        assert_eq!(sharded.n_shards(), 4);
        assert_eq!(sharded.shard_range(1), 0..4);
        assert!(sharded.shard_range(2).is_empty());
        let monolithic = PointSet::from_vectors(&refs, 80);
        assert_eq!(
            sharded.condensed(Distance::Manhattan).as_slice(),
            monolithic.distances(Distance::Manhattan).as_slice()
        );
    }

    #[test]
    fn forced_thread_counts_are_deterministic() {
        // Big enough to cross PARALLEL_MIN_CELLS in both intra and cross.
        let vs: Vec<QueryVector> =
            (0..300u32).map(|i| qv(&[i % 32, (i * 7) % 32, (i * 13) % 32])).collect();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let mut results = Vec::new();
        for n_threads in [1usize, 2, 7] {
            let mut sharded = ShardedPointSet::new();
            for chunk in refs.chunks(150) {
                sharded.push_shard_threads(chunk, 32, n_threads);
            }
            results.push(sharded.condensed(Distance::Euclidean));
        }
        assert_eq!(results[0].as_slice(), results[1].as_slice());
        assert_eq!(results[0].as_slice(), results[2].as_slice());
    }

    #[test]
    fn degenerate_sizes() {
        // Regression: `default()` must be the same valid empty set as
        // `new()` (an earlier cut derived Default with an empty
        // `shard_starts`, which panicked on first use).
        let defaulted = ShardedPointSet::default();
        assert!(defaulted.is_empty());
        assert_eq!(defaulted.condensed(Distance::Hamming).n(), 0);

        let empty = ShardedPointSet::new();
        assert!(empty.is_empty());
        assert_eq!(empty.n_shards(), 0);
        assert_eq!(empty.condensed(Distance::Hamming).n(), 0);

        let v = qv(&[1]);
        let mut one = ShardedPointSet::new();
        one.push_shard(&[&v], 4);
        assert_eq!(one.len(), 1);
        assert_eq!(one.mismatches(0, 0), 0);
        let cm = one.condensed(Distance::Manhattan);
        assert_eq!(cm.n(), 1);
        assert_eq!(cm.get(0, 0), 0.0);
    }

    #[test]
    fn budget_evicts_oldest_and_pins_the_tail() {
        let store = TempStore::new("budget");
        let vs: Vec<QueryVector> = (0..60u32).map(|i| qv(&[i % 16, (i * 3) % 16])).collect();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let mut sharded = ShardedPointSet::new();
        sharded
            .set_spill(SpillConfig { dir: store.path().to_path_buf(), resident_budget: 0 })
            .unwrap();
        for chunk in refs.chunks(10) {
            sharded.push_shard(chunk, 16);
            // Budget 0: everything but the pinned tail is spilled, and the
            // tail is always the newest shard.
            let n = sharded.n_shards();
            assert!(sharded.shard_is_resident(n - 1), "hot tail must stay resident");
            assert_eq!(sharded.spilled_shards(), n - 1);
        }
        // The resident payload is exactly the tail's.
        assert!(sharded.resident_bytes() > 0);
        // Reads against spilled shards reload transparently and agree with
        // the monolithic build.
        let monolithic = PointSet::from_vectors(&refs, 16);
        assert_eq!(
            sharded.condensed(Distance::Hamming).as_slice(),
            monolithic.distances(Distance::Hamming).as_slice()
        );
        assert_eq!(sharded.mismatches(0, 59), monolithic.mismatches(0, 59));
    }

    #[test]
    fn spill_all_forces_every_shard_out_and_back() {
        let store = TempStore::new("all");
        let vs = sample();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let mut resident = ShardedPointSet::new();
        let mut spilled = ShardedPointSet::new();
        spilled
            .set_spill(SpillConfig { dir: store.path().to_path_buf(), resident_budget: usize::MAX })
            .unwrap();
        for chunk in refs.chunks(2) {
            resident.push_shard(chunk, 80);
            spilled.push_shard(chunk, 80);
        }
        assert_eq!(spilled.spilled_shards(), 0, "unbounded budget spills nothing");
        let evicted = spilled.spill_all().unwrap();
        assert_eq!(evicted, spilled.n_shards());
        assert_eq!(spilled.resident_bytes(), 0);
        for metric in all_metrics() {
            assert_eq!(
                spilled.condensed(metric).as_slice(),
                resident.condensed(metric).as_slice(),
                "{metric:?}"
            );
        }
        // Bulk merges stream shards transiently: after six full merges
        // nothing is pinned — the budget holds across reads, not just
        // appends.
        assert_eq!(spilled.resident_bytes(), 0, "a merge must not populate the cache");
        // Point reads reload through the cache; re-evicting afterwards is
        // free (the files already exist).
        assert_eq!(spilled.mismatches(1, 6), resident.mismatches(1, 6));
        assert!(spilled.resident_bytes() > 0, "point read populated the reload cache");
        let again = spilled.spill_all().unwrap();
        assert_eq!(again, 0, "payloads were already on disk; only the cache cleared");
        assert_eq!(spilled.resident_bytes(), 0);
    }

    #[test]
    fn pushing_against_spilled_history_matches_resident_push() {
        let store = TempStore::new("push");
        // Enough points per shard to exercise real cross blocks.
        let vs: Vec<QueryVector> =
            (0..200u32).map(|i| qv(&[i % 24, (i * 5) % 24, (i * 11) % 24])).collect();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let mut resident = ShardedPointSet::new();
        let mut spilled = ShardedPointSet::new();
        spilled
            .set_spill(SpillConfig { dir: store.path().to_path_buf(), resident_budget: 0 })
            .unwrap();
        for chunk in refs.chunks(40) {
            resident.push_shard(chunk, 24);
            spilled.push_shard(chunk, 24); // cross block reloads history shards
        }
        assert_eq!(spilled.spilled_shards(), spilled.n_shards() - 1);
        assert_eq!(
            spilled.condensed(Distance::Canberra).as_slice(),
            resident.condensed(Distance::Canberra).as_slice()
        );
    }

    #[test]
    fn failed_push_does_not_widen_the_universe() {
        // Regression: a push that dies reloading spilled history (here:
        // the store vanishes underneath the set) must leave the set
        // exactly as it was — in particular `n_features`, which every
        // later read normalizes distances by. The buggy version widened
        // the universe before the fallible reload, silently shrinking
        // all Hamming/Canberra distances after a handled error.
        let store = TempStore::new("rollback");
        let vs = sample();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let mut sharded = ShardedPointSet::new();
        sharded
            .set_spill(SpillConfig { dir: store.path().to_path_buf(), resident_budget: 0 })
            .unwrap();
        sharded.push_shard(&refs[..3], 80);
        sharded.push_shard(&refs[3..5], 80); // spills shard 0
        assert_eq!(sharded.spilled_shards(), 1);
        let before = sharded.condensed(Distance::Hamming);
        for entry in std::fs::read_dir(store.path()).unwrap() {
            std::fs::remove_file(entry.unwrap().path()).unwrap();
        }
        sharded.cache.lock().unwrap().entry = None; // drop the reload cache
        let err = sharded.try_push_shard(&refs[5..], 120).unwrap_err();
        assert!(matches!(err, SpillError::Io(_)), "{err}");
        assert_eq!(sharded.n_features(), 80, "failed push must not widen the universe");
        assert_eq!(sharded.len(), 5, "failed push must not append points");
        // Resident reads (shard 1 + the pinned tail) still normalize at
        // the original width.
        assert_eq!(sharded.distance(3, 4, Distance::Hamming), before.get(3, 4));
    }

    #[test]
    fn compact_preserves_every_distance_bit_for_bit() {
        // Growing universe + a mix of resident and spilled constituents:
        // compaction must copy, never recompute, so reads agree with the
        // monolithic build on every metric.
        let store = TempStore::new("compact");
        let vs: Vec<QueryVector> =
            (0..90u32).map(|i| qv(&[i % 16, (i * 3) % 48, (i * 7) % 48])).collect();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let mut sharded = ShardedPointSet::new();
        sharded
            .set_spill(SpillConfig { dir: store.path().to_path_buf(), resident_budget: 0 })
            .unwrap();
        // First shards close at a narrower universe than later ones.
        for (c, chunk) in refs.chunks(15).enumerate() {
            sharded.push_shard(chunk, if c < 2 { 48 } else { 64 });
        }
        assert!(sharded.spilled_shards() > 0, "budget 0 must have spilled history");
        let before: Vec<CondensedMatrix> =
            all_metrics().iter().map(|&m| sharded.condensed(m)).collect();
        let point_before = sharded.mismatches(3, 71);

        let stats = sharded.compact().unwrap();
        assert_eq!(stats.shards_merged, 6);
        assert!(!stats.stale_files.is_empty(), "spilled constituents leave stale files");
        assert_eq!(sharded.n_shards(), 1);
        assert_eq!(sharded.len(), refs.len());
        assert_eq!(sharded.n_features(), 64);
        for (m, reference) in all_metrics().iter().zip(&before) {
            assert_eq!(sharded.condensed(*m).as_slice(), reference.as_slice(), "{m:?}");
        }
        assert_eq!(sharded.mismatches(3, 71), point_before);
        // Appends keep working against the compacted history.
        let extra = qv(&[0, 63]);
        let mut grown = sharded.clone();
        grown.push_shard(&[&extra], 64);
        let mut all: Vec<&QueryVector> = refs.clone();
        all.push(&extra);
        let monolithic = PointSet::from_vectors(&all, 64);
        assert_eq!(
            grown.condensed(Distance::Hamming).as_slice(),
            monolithic.distances(Distance::Hamming).as_slice()
        );
        // Compacting a single shard is a no-op.
        let again = sharded.compact().unwrap();
        assert_eq!(again.shards_merged, 0);
    }

    #[test]
    fn compact_respects_the_resident_budget() {
        // The merged shard is the pinned tail, but compaction must not let
        // that pin blow the budget: over-budget merges land evicted.
        let store = TempStore::new("compact-budget");
        let vs: Vec<QueryVector> = (0..60u32).map(|i| qv(&[i % 16, (i * 5) % 16])).collect();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let mut sharded = ShardedPointSet::new();
        sharded
            .set_spill(SpillConfig { dir: store.path().to_path_buf(), resident_budget: 0 })
            .unwrap();
        for chunk in refs.chunks(10) {
            sharded.push_shard(chunk, 16);
        }
        sharded.compact().unwrap();
        assert_eq!(sharded.spilled_shards(), 1, "over-budget merge must evict");
        assert_eq!(sharded.resident_bytes(), 0);
        let monolithic = PointSet::from_vectors(&refs, 16);
        assert_eq!(
            sharded.condensed(Distance::Hamming).as_slice(),
            monolithic.distances(Distance::Hamming).as_slice()
        );
    }

    #[test]
    fn persist_all_writes_files_without_evicting() {
        let store = TempStore::new("persist");
        let vs = sample();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let mut sharded = ShardedPointSet::new();
        sharded
            .set_spill(SpillConfig { dir: store.path().to_path_buf(), resident_budget: usize::MAX })
            .unwrap();
        for chunk in refs.chunks(2) {
            sharded.push_shard(chunk, 80);
        }
        let resident_before = sharded.resident_bytes();
        let written = sharded.persist_all().unwrap();
        assert_eq!(written, sharded.n_shards());
        assert_eq!(sharded.resident_bytes(), resident_before, "persisting must not evict");
        assert_eq!(sharded.spilled_shards(), 0);
        for s in 0..sharded.n_shards() {
            assert!(sharded.shard_file(s).is_some_and(Path::exists), "shard {s} has no file");
        }
        // Idempotent: the files exist, nothing rewrites.
        assert_eq!(sharded.persist_all().unwrap(), 0);
    }

    #[test]
    fn from_spilled_files_rebuilds_bit_identically() {
        let store = TempStore::new("recover");
        let vs: Vec<QueryVector> =
            (0..50u32).map(|i| qv(&[i % 8, (i * 3) % 40, (i * 11) % 40])).collect();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let mut original = ShardedPointSet::new();
        original
            .set_spill(SpillConfig { dir: store.path().to_path_buf(), resident_budget: usize::MAX })
            .unwrap();
        for (c, chunk) in refs.chunks(10).enumerate() {
            original.push_shard(chunk, if c == 0 { 40 } else { 48 });
        }
        original.persist_all().unwrap();
        let files: Vec<PathBuf> = (0..original.n_shards())
            .map(|s| original.shard_file(s).unwrap().to_path_buf())
            .collect();

        let reopened = ShardedPointSet::from_spilled_files(
            SpillConfig { dir: store.path().to_path_buf(), resident_budget: usize::MAX },
            &files,
        )
        .unwrap();
        assert_eq!(reopened.len(), original.len());
        assert_eq!(reopened.n_shards(), original.n_shards());
        assert_eq!(reopened.n_features(), original.n_features());
        assert_eq!(reopened.resident_bytes(), 0, "recovery must not preload payloads");
        for metric in all_metrics() {
            assert_eq!(
                reopened.condensed(metric).as_slice(),
                original.condensed(metric).as_slice(),
                "{metric:?}"
            );
        }
        assert_eq!(reopened.mismatches(0, 49), original.mismatches(0, 49));

        // A reordered chain is a typed error, not a wrong answer.
        let mut swapped = files.clone();
        swapped.swap(0, 1);
        let err = ShardedPointSet::from_spilled_files(
            SpillConfig { dir: store.path().to_path_buf(), resident_budget: 0 },
            &swapped,
        )
        .unwrap_err();
        assert!(matches!(err, SpillError::ChainMismatch { .. }), "{err}");
        // A missing file is an I/O error.
        let mut missing = files.clone();
        missing[0] = store.join("gone.bin");
        let err = ShardedPointSet::from_spilled_files(
            SpillConfig { dir: store.path().to_path_buf(), resident_budget: 0 },
            &missing,
        )
        .unwrap_err();
        assert!(matches!(err, SpillError::Io(_)), "{err}");
    }

    #[test]
    fn reloads_skip_the_checksum_pass_after_first_open_validation() {
        let store = TempStore::new("validate-once");
        let vs = sample();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let mut sharded = ShardedPointSet::new();
        sharded
            .set_spill(SpillConfig { dir: store.path().to_path_buf(), resident_budget: 0 })
            .unwrap();
        sharded.push_shard(&refs[..4], 80);
        sharded.push_shard(&refs[4..], 80); // spills shard 0
        assert!(!sharded.shard_is_resident(0));
        let before = sharded.mismatches(0, 1);
        sharded.cache.lock().unwrap().entry = None;
        // Flip a byte of the *stored checksum* (the payload is untouched):
        // a first-open validation rejects the file, but reloads trust it —
        // this process already checksummed these exact payload bytes once,
        // and the file is write-once.
        let path = sharded.shard_file(0).unwrap().to_path_buf();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(sharded.mismatches(0, 1), before, "trusted reload must serve the payload");
        let err = ShardedPointSet::from_spilled_files(
            SpillConfig { dir: store.path().to_path_buf(), resident_budget: 0 },
            &[path],
        )
        .unwrap_err();
        assert!(matches!(err, SpillError::ChecksumMismatch { .. }), "{err}");
    }

    #[test]
    fn clones_share_the_store_without_colliding() {
        let store = TempStore::new("clone");
        let vs = sample();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let mut base = ShardedPointSet::new();
        base.set_spill(SpillConfig { dir: store.path().to_path_buf(), resident_budget: 0 })
            .unwrap();
        base.push_shard(&refs[..4], 80);
        let mut a = base.clone();
        let mut b = base.clone();
        // Both clones append shard #1 and spill it into the shared
        // directory; the global name sequence keeps the files distinct.
        a.push_shard(&refs[4..6], 80);
        b.push_shard(&refs[4..], 80);
        a.spill_all().unwrap();
        b.spill_all().unwrap();
        assert_eq!(a.len(), 6);
        assert_eq!(b.len(), 7);
        let mono_a = PointSet::from_vectors(&refs[..6], 80);
        assert_eq!(
            a.condensed(Distance::Hamming).as_slice(),
            mono_a.distances(Distance::Hamming).as_slice()
        );
        let mono_b = PointSet::from_vectors(&refs, 80);
        assert_eq!(
            b.condensed(Distance::Hamming).as_slice(),
            mono_b.distances(Distance::Hamming).as_slice()
        );
    }

    #[test]
    fn store_failure_is_a_typed_error_not_a_corrupt_set() {
        let store = TempStore::new("fail");
        let vs = sample();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let mut sharded = ShardedPointSet::new();
        sharded
            .set_spill(SpillConfig { dir: store.path().to_path_buf(), resident_budget: 0 })
            .unwrap();
        sharded.push_shard(&refs[..3], 80);
        // Point the store at a dead directory: the next eviction fails
        // with a typed error and the shard stays resident (no data loss).
        sharded.spill = Some(SpillConfig { dir: store.join("no/such/dir"), resident_budget: 0 });
        let err = sharded.try_push_shard(&refs[3..], 80).unwrap_err();
        assert!(matches!(err, SpillError::Io(_)), "{err}");
        assert_eq!(sharded.len(), refs.len(), "the append itself succeeded");
        assert_eq!(sharded.spilled_shards(), 0, "the failed eviction restored the payload");
        let monolithic = PointSet::from_vectors(&refs, 80);
        assert_eq!(
            sharded.condensed(Distance::Hamming).as_slice(),
            monolithic.distances(Distance::Hamming).as_slice()
        );
    }
}
