//! Weighted k-means with k-means++ seeding.
//!
//! Two front ends share one Lloyd loop structure:
//!
//! * [`kmeans_dense`] — points are dense rows (used on spectral embeddings);
//! * [`kmeans_binary`] / [`kmeans_binary_pointset`] — points are binary
//!   query vectors with multiplicity weights; centroids stay dense.
//!   Distances use the expansion `‖x − c‖² = |x| − 2·Σ_{i∈x} cᵢ + ‖c‖²`,
//!   so a step costs `O(k · Σ|x|)` rather than `O(k · n · dims)`.
//!
//! Hot-path engineering (PR 1):
//!
//! * k-means++ seeding distances come from the [`PointSet`] popcount
//!   kernel instead of re-running the sparse id-merge `n·k` times;
//! * the seeding `d2`/`scores` buffers and the Lloyd `sums`/`wsum`
//!   accumulators are allocated once and reused across every round;
//! * assignment (and the seeding distance sweep) run on scoped threads via
//!   the internal `par` helpers, feature-gated by `parallel` (on by
//!   default). The RNG
//!   only ever runs on the coordinating thread, and the inertia reduction
//!   uses fixed-width chunks summed in chunk order, so results are
//!   bit-identical to the serial path on any machine.
//!
//! Weighting by multiplicity makes clustering the distinct-query set
//! equivalent to clustering the exploded log (same objective, same optima).

use crate::assign::Clustering;
use crate::par;
use crate::pointset::PointSet;
use logr_feature::QueryVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Below this many point·centroid pairs the Lloyd assignment runs serially;
/// thread startup would dominate.
const PARALLEL_MIN_WORK: usize = 4096;

/// A k-means++ seeding round does only `O(n)` popcounts (no `k` factor),
/// so it needs far more points than the Lloyd assignment before threads
/// pay for themselves.
const SEEDING_PARALLEL_MIN_POINTS: usize = 8192;

/// Fixed chunk width for the parallel assignment sweep. Chunk boundaries —
/// and therefore the floating-point association of the per-chunk inertia
/// partials — are independent of the worker count, so the reduced inertia
/// is bit-identical on every machine.
const ASSIGNMENT_CHUNK: usize = 1024;

/// Split `assignments` into fixed-width chunks, pairing each with its
/// starting index and a dedicated inertia slot from `partials`.
fn assignment_tasks<'a>(
    assignments: &'a mut [usize],
    partials: &'a mut Vec<f64>,
) -> Vec<(usize, &'a mut [usize], &'a mut f64)> {
    let n_chunks = assignments.len().div_ceil(ASSIGNMENT_CHUNK).max(1);
    partials.clear();
    partials.resize(n_chunks, 0.0);
    assignments
        .chunks_mut(ASSIGNMENT_CHUNK)
        .zip(partials.iter_mut())
        .enumerate()
        .map(|(t, (slice, partial))| (t * ASSIGNMENT_CHUNK, slice, partial))
        .collect()
}

/// K-means configuration.
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
}

impl KMeansConfig {
    /// Config with default iteration budget (100).
    pub fn new(k: usize, seed: u64) -> Self {
        KMeansConfig { k, max_iters: 100, seed }
    }
}

fn assignment_threads(n_points: usize, k: usize) -> usize {
    if n_points * k < PARALLEL_MIN_WORK {
        1
    } else {
        par::threads()
    }
}

/// Weighted k-means over dense points. Returns the clustering and the final
/// weighted inertia (sum of squared distances to assigned centroids).
///
/// # Panics
/// Panics if `points` is empty, weights length mismatches, or `k == 0`.
pub fn kmeans_dense(
    points: &[Vec<f64>],
    weights: &[f64],
    config: KMeansConfig,
) -> (Clustering, f64) {
    assert!(!points.is_empty(), "kmeans over empty point set");
    assert_eq!(points.len(), weights.len(), "weights length mismatch");
    assert!(config.k > 0, "k must be positive");
    let n = points.len();
    let k = config.k.min(n);
    let dims = points[0].len();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Centroids and accumulators as flat k×dims rows, reused every round.
    let mut centroids = plus_plus_init_dense(points, weights, k, &mut rng);
    let mut sums = vec![0.0; k * dims];
    let mut wsum = vec![0.0; k];
    let mut assignments = vec![0usize; n];
    let mut partials: Vec<f64> = Vec::new();
    let mut inertia = f64::INFINITY;
    let n_threads = assignment_threads(n, k);

    for _ in 0..config.max_iters {
        // Assignment step: parallel over fixed-width chunks, each with its
        // own inertia slot, reduced in chunk order — bit-identical for any
        // worker count.
        let centroids_ref = &centroids;
        let tasks = assignment_tasks(&mut assignments, &mut partials);
        par::run_tasks(tasks, n_threads, |(start, slice, partial)| {
            for (offset, slot) in slice.iter_mut().enumerate() {
                let i = start + offset;
                let (best, d2) = nearest_dense(&points[i], centroids_ref, k, dims);
                *slot = best;
                *partial += weights[i] * d2;
            }
        });
        let new_inertia: f64 = partials.iter().sum();

        // Update step into the reused accumulators.
        sums.fill(0.0);
        wsum.fill(0.0);
        for (i, p) in points.iter().enumerate() {
            let c = assignments[i];
            wsum[c] += weights[i];
            for (s, &v) in sums[c * dims..(c + 1) * dims].iter_mut().zip(p) {
                *s += weights[i] * v;
            }
        }
        for c in 0..k {
            if wsum[c] > 0.0 {
                for (dst, &s) in centroids[c * dims..(c + 1) * dims]
                    .iter_mut()
                    .zip(&sums[c * dims..(c + 1) * dims])
                {
                    *dst = s / wsum[c];
                }
            } else {
                // Empty cluster: reseed at the point farthest from its centroid.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = dist2_dense(&points[a], row(&centroids, assignments[a], dims));
                        let db = dist2_dense(&points[b], row(&centroids, assignments[b], dims));
                        da.total_cmp(&db)
                    })
                    // lint:allow(no-panic-paths): the constructor asserts a non-empty point set, so max_by over 0..n cannot be empty
                    .expect("non-empty points");
                centroids[c * dims..(c + 1) * dims].copy_from_slice(&points[far]);
            }
        }
        if (inertia - new_inertia).abs() < 1e-10 * (1.0 + inertia.abs()) {
            inertia = new_inertia;
            break;
        }
        inertia = new_inertia;
    }
    (Clustering::new(k, assignments), inertia)
}

/// Weighted k-means over sparse binary vectors (Euclidean distance).
///
/// Convenience wrapper: batch-converts the points into a [`PointSet`] and
/// delegates to [`kmeans_binary_pointset`].
///
/// # Panics
/// Panics if `points` is empty or `k == 0`.
pub fn kmeans_binary(
    points: &[&QueryVector],
    weights: &[f64],
    n_features: usize,
    config: KMeansConfig,
) -> (Clustering, f64) {
    kmeans_binary_pointset(&PointSet::from_vectors(points, n_features), weights, config)
}

/// Weighted k-means over a pre-converted [`PointSet`] (Euclidean distance).
/// Returns the clustering and the final weighted inertia.
///
/// # Panics
/// Panics if `points` is empty or `k == 0`.
pub fn kmeans_binary_pointset(
    points: &PointSet,
    weights: &[f64],
    config: KMeansConfig,
) -> (Clustering, f64) {
    assert!(!points.is_empty(), "kmeans over empty point set");
    assert_eq!(points.len(), weights.len(), "weights length mismatch");
    assert!(config.k > 0, "k must be positive");
    let n = points.len();
    let nf = points.n_features();
    let k = config.k.min(n);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n_threads = assignment_threads(n, k);

    // k-means++ seeding: squared Euclidean distance between binary vectors
    // is exactly the xor-popcount, served by the dense engine. The `d2` and
    // `scores` buffers are allocated once and reused for every round. Each
    // round is only O(n) popcounts, so the parallel gate needs far more
    // points than the Lloyd assignment's n·k gate.
    let seed_threads = if n < SEEDING_PARALLEL_MIN_POINTS { 1 } else { par::threads() };
    let mut centroid_ids = Vec::with_capacity(k);
    centroid_ids.push(pick_weighted(weights, &mut rng));
    let mut d2 = vec![f64::INFINITY; n];
    let mut scores = vec![0.0; n];
    while centroid_ids.len() < k {
        // lint:allow(no-panic-paths): the first centroid is pushed before the loop, so the list is never empty here
        let latest = *centroid_ids.last().expect("non-empty");
        let chunk = n.div_ceil(seed_threads).max(1);
        let tasks: Vec<(usize, &mut [f64])> =
            d2.chunks_mut(chunk).enumerate().map(|(t, slice)| (t * chunk, slice)).collect();
        par::run_tasks(tasks, seed_threads, |(start, slice)| {
            for (offset, slot) in slice.iter_mut().enumerate() {
                let d = points.mismatches(start + offset, latest) as f64;
                if d < *slot {
                    *slot = d;
                }
            }
        });
        for ((score, &d), &w) in scores.iter_mut().zip(&d2).zip(weights) {
            *score = d * w;
        }
        let total: f64 = scores.iter().sum();
        let next = if total > 0.0 { pick_weighted(&scores, &mut rng) } else { rng.gen_range(0..n) };
        centroid_ids.push(next);
    }

    // Centroids as flat k×nf rows; |x| popcounts cached per point.
    let mut centroids = vec![0.0; k * nf];
    for (c, &i) in centroid_ids.iter().enumerate() {
        let crow = &mut centroids[c * nf..(c + 1) * nf];
        points.point(i).for_each_one(|b| crow[b] = 1.0);
    }
    let point_sizes: Vec<f64> = (0..n).map(|i| points.point(i).count_ones() as f64).collect();

    let mut assignments = vec![0usize; n];
    let mut partials: Vec<f64> = Vec::new();
    let mut inertia = f64::INFINITY;
    let mut sq_norms = vec![0.0; k];
    let mut sums = vec![0.0; k * nf];
    let mut wsum = vec![0.0; k];

    for _ in 0..config.max_iters {
        for (c, norm) in sq_norms.iter_mut().enumerate() {
            *norm = row(&centroids, c, nf).iter().map(|v| v * v).sum::<f64>();
        }

        // Assignment step: parallel over fixed-width chunks, each with its
        // own inertia slot, reduced in chunk order — bit-identical for any
        // worker count, and no RNG involved.
        let centroids_ref = &centroids;
        let sq_norms_ref = &sq_norms;
        let point_sizes_ref = &point_sizes;
        let tasks = assignment_tasks(&mut assignments, &mut partials);
        par::run_tasks(tasks, n_threads, |(start, slice, partial)| {
            // Reused per-chunk scratch: the point's set-bit indices, so the
            // k centroid dot products walk a flat slice.
            let mut ones: Vec<usize> = Vec::with_capacity(64);
            for (offset, slot) in slice.iter_mut().enumerate() {
                let i = start + offset;
                ones.clear();
                points.point(i).for_each_one(|b| ones.push(b));
                let mut best = 0;
                let mut best_d2 = f64::INFINITY;
                for (c, &sq_norm) in sq_norms_ref.iter().enumerate() {
                    let crow = row(centroids_ref, c, nf);
                    let mut dot = 0.0;
                    for &b in &ones {
                        dot += crow[b];
                    }
                    let cand = (point_sizes_ref[i] - 2.0 * dot + sq_norm).max(0.0);
                    if cand < best_d2 {
                        best_d2 = cand;
                        best = c;
                    }
                }
                *slot = best;
                *partial += weights[i] * best_d2;
            }
        });
        let new_inertia: f64 = partials.iter().sum();

        // Update centroids into the reused accumulators.
        sums.fill(0.0);
        wsum.fill(0.0);
        for i in 0..n {
            let c = assignments[i];
            let w = weights[i];
            wsum[c] += w;
            let srow = &mut sums[c * nf..(c + 1) * nf];
            points.point(i).for_each_one(|b| srow[b] += w);
        }
        for c in 0..k {
            let crow = &mut centroids[c * nf..(c + 1) * nf];
            if wsum[c] > 0.0 {
                for (dst, &s) in crow.iter_mut().zip(&sums[c * nf..(c + 1) * nf]) {
                    *dst = s / wsum[c];
                }
            } else {
                let far = rng.gen_range(0..n);
                crow.fill(0.0);
                points.point(far).for_each_one(|b| crow[b] = 1.0);
            }
        }
        if (inertia - new_inertia).abs() < 1e-10 * (1.0 + inertia.abs()) {
            inertia = new_inertia;
            break;
        }
        inertia = new_inertia;
    }
    (Clustering::new(k, assignments), inertia)
}

#[inline]
fn row(flat: &[f64], c: usize, dims: usize) -> &[f64] {
    &flat[c * dims..(c + 1) * dims]
}

fn dist2_dense(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn nearest_dense(p: &[f64], centroids: &[f64], k: usize, dims: usize) -> (usize, f64) {
    let mut best = 0;
    let mut best_d2 = f64::INFINITY;
    for c in 0..k {
        let d2 = dist2_dense(p, row(centroids, c, dims));
        if d2 < best_d2 {
            best_d2 = d2;
            best = c;
        }
    }
    (best, best_d2)
}

/// k-means++ over dense points; returns flat k×dims centroid rows. The
/// `d2`/`scores` buffers are allocated once for the whole seeding pass.
fn plus_plus_init_dense(
    points: &[Vec<f64>],
    weights: &[f64],
    k: usize,
    rng: &mut StdRng,
) -> Vec<f64> {
    let dims = points[0].len();
    let mut centroids = Vec::with_capacity(k * dims);
    centroids.extend_from_slice(&points[pick_weighted(weights, rng)]);
    let mut d2 = vec![f64::INFINITY; points.len()];
    let mut scores = vec![0.0; points.len()];
    while centroids.len() < k * dims {
        let latest = &centroids[centroids.len() - dims..];
        for (slot, p) in d2.iter_mut().zip(points) {
            let d = dist2_dense(p, latest);
            if d < *slot {
                *slot = d;
            }
        }
        for ((score, &d), &w) in scores.iter_mut().zip(&d2).zip(weights) {
            *score = d * w;
        }
        let total: f64 = scores.iter().sum();
        let next =
            if total > 0.0 { pick_weighted(&scores, rng) } else { rng.gen_range(0..points.len()) };
        centroids.extend_from_slice(&points[next]);
    }
    centroids
}

/// Sample an index proportionally to non-negative weights.
fn pick_weighted(weights: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_feature::FeatureId;

    fn qv(ids: &[u32]) -> QueryVector {
        QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
    }

    #[test]
    fn dense_separates_two_obvious_blobs() {
        let points = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
            vec![5.0, 5.1],
        ];
        let weights = vec![1.0; 6];
        let (c, inertia) = kmeans_dense(&points, &weights, KMeansConfig::new(2, 1));
        assert_eq!(c.assignments[0], c.assignments[1]);
        assert_eq!(c.assignments[0], c.assignments[2]);
        assert_eq!(c.assignments[3], c.assignments[4]);
        assert_eq!(c.assignments[3], c.assignments[5]);
        assert_ne!(c.assignments[0], c.assignments[3]);
        assert!(inertia < 0.1);
    }

    #[test]
    fn binary_separates_disjoint_workloads() {
        // Two workloads with disjoint feature sets (paper §5 motivation).
        let vs = [qv(&[0, 1, 2]), qv(&[0, 1]), qv(&[1, 2]), qv(&[10, 11]), qv(&[10, 12])];
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let weights = vec![1.0; 5];
        let (c, _) = kmeans_binary(&refs, &weights, 16, KMeansConfig::new(2, 7));
        assert_eq!(c.assignments[0], c.assignments[1]);
        assert_eq!(c.assignments[0], c.assignments[2]);
        assert_eq!(c.assignments[3], c.assignments[4]);
        assert_ne!(c.assignments[0], c.assignments[3]);
    }

    #[test]
    fn pointset_front_end_matches_sparse_front_end() {
        let vs: Vec<QueryVector> =
            (0..20u32).map(|i| qv(&[i % 6, (i * 3) % 6, 6 + i % 2])).collect();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let weights = vec![1.0; refs.len()];
        let ps = PointSet::from_vectors(&refs, 16);
        let (a, ia) = kmeans_binary(&refs, &weights, 16, KMeansConfig::new(3, 11));
        let (b, ib) = kmeans_binary_pointset(&ps, &weights, KMeansConfig::new(3, 11));
        assert_eq!(a, b);
        assert_eq!(ia.to_bits(), ib.to_bits());
    }

    #[test]
    fn k_clamped_to_point_count() {
        let vs = [qv(&[0]), qv(&[1])];
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let (c, inertia) = kmeans_binary(&refs, &[1.0, 1.0], 4, KMeansConfig::new(10, 0));
        assert_eq!(c.k, 2);
        assert!(inertia < 1e-9);
    }

    #[test]
    fn k1_groups_everything() {
        let points = vec![vec![0.0], vec![1.0], vec![2.0]];
        let (c, _) = kmeans_dense(&points, &[1.0; 3], KMeansConfig::new(1, 0));
        assert!(c.assignments.iter().all(|&a| a == 0));
    }

    #[test]
    fn weights_pull_centroids() {
        // A heavy point at 0 and light points at 1: with k = 1 the centroid
        // sits near 0, so inertia is dominated by the light points.
        let points = vec![vec![0.0], vec![1.0]];
        let (_, heavy0) = kmeans_dense(&points, &[100.0, 1.0], KMeansConfig::new(1, 0));
        let (_, balanced) = kmeans_dense(&points, &[1.0, 1.0], KMeansConfig::new(1, 0));
        // Weighted inertia with the heavy point is below the unweighted
        // two-point inertia scaled by total weight.
        assert!(heavy0 / 101.0 < balanced / 2.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let vs = [qv(&[0, 1]), qv(&[1, 2]), qv(&[5, 6]), qv(&[6, 7])];
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let (a, _) = kmeans_binary(&refs, &[1.0; 4], 10, KMeansConfig::new(2, 42));
        let (b, _) = kmeans_binary(&refs, &[1.0; 4], 10, KMeansConfig::new(2, 42));
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_threshold_crossing_is_deterministic() {
        // Enough points×k to engage the threaded assignment path; the
        // result must not depend on the number of workers.
        let vs: Vec<QueryVector> = (0..600u32)
            .map(|i| {
                let base = if i % 2 == 0 { 0 } else { 20 };
                qv(&[base + i % 5, base + (i / 5) % 5, base + 10 + i % 3])
            })
            .collect();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let weights = vec![1.0; refs.len()];
        let (a, ia) = kmeans_binary(&refs, &weights, 40, KMeansConfig::new(2, 5));
        let (b, ib) = kmeans_binary(&refs, &weights, 40, KMeansConfig::new(2, 5));
        assert_eq!(a, b);
        assert_eq!(ia.to_bits(), ib.to_bits());
        // The two parity workloads use disjoint universes; they must split.
        assert_eq!(a.assignments[0], a.assignments[2]);
        assert_eq!(a.assignments[1], a.assignments[3]);
        assert_ne!(a.assignments[0], a.assignments[1]);
    }

    #[test]
    fn binary_inertia_decreases_with_k() {
        let vs: Vec<QueryVector> = (0..12u32).map(|i| qv(&[i, i + 1, i + 2])).collect();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let weights = vec![1.0; refs.len()];
        let (_, i2) = kmeans_binary(&refs, &weights, 16, KMeansConfig::new(2, 3));
        let (_, i6) = kmeans_binary(&refs, &weights, 16, KMeansConfig::new(6, 3));
        assert!(i6 <= i2 + 1e-9, "inertia should not grow with k: {i2} -> {i6}");
    }
}
