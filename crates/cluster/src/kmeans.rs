//! Weighted k-means with k-means++ seeding.
//!
//! Two front ends share one Lloyd loop:
//!
//! * [`kmeans_dense`] — points are dense rows (used on spectral embeddings);
//! * [`kmeans_binary`] — points are sparse binary query vectors with
//!   multiplicity weights; centroids stay dense. Distances use the
//!   expansion `‖x − c‖² = |x| − 2·Σ_{i∈x} cᵢ + ‖c‖²`, so a step costs
//!   `O(k · Σ|x|)` rather than `O(k · n · dims)`.
//!
//! Weighting by multiplicity makes clustering the distinct-query set
//! equivalent to clustering the exploded log (same objective, same optima).

use crate::assign::Clustering;
use logr_feature::QueryVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// K-means configuration.
#[derive(Debug, Clone, Copy)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
}

impl KMeansConfig {
    /// Config with default iteration budget (100).
    pub fn new(k: usize, seed: u64) -> Self {
        KMeansConfig { k, max_iters: 100, seed }
    }
}

/// Weighted k-means over dense points. Returns the clustering and the final
/// weighted inertia (sum of squared distances to assigned centroids).
///
/// # Panics
/// Panics if `points` is empty, weights length mismatches, or `k == 0`.
pub fn kmeans_dense(
    points: &[Vec<f64>],
    weights: &[f64],
    config: KMeansConfig,
) -> (Clustering, f64) {
    assert!(!points.is_empty(), "kmeans over empty point set");
    assert_eq!(points.len(), weights.len(), "weights length mismatch");
    assert!(config.k > 0, "k must be positive");
    let k = config.k.min(points.len());
    let dims = points[0].len();
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut centroids = plus_plus_init_dense(points, weights, k, &mut rng);
    let mut assignments = vec![0usize; points.len()];
    let mut inertia = f64::INFINITY;

    for _ in 0..config.max_iters {
        // Assignment step.
        let mut new_inertia = 0.0;
        for (i, p) in points.iter().enumerate() {
            let (best, d2) = nearest_dense(p, &centroids);
            assignments[i] = best;
            new_inertia += weights[i] * d2;
        }
        // Update step.
        let mut sums = vec![vec![0.0; dims]; k];
        let mut wsum = vec![0.0; k];
        for (i, p) in points.iter().enumerate() {
            let c = assignments[i];
            wsum[c] += weights[i];
            for (s, &v) in sums[c].iter_mut().zip(p) {
                *s += weights[i] * v;
            }
        }
        for c in 0..k {
            if wsum[c] > 0.0 {
                for s in &mut sums[c] {
                    *s /= wsum[c];
                }
                centroids[c] = sums[c].clone();
            } else {
                // Empty cluster: reseed at the point farthest from its centroid.
                let far = (0..points.len())
                    .max_by(|&a, &b| {
                        dist2_dense(&points[a], &centroids[assignments[a]])
                            .total_cmp(&dist2_dense(&points[b], &centroids[assignments[b]]))
                    })
                    .expect("non-empty points");
                centroids[c] = points[far].clone();
            }
        }
        if (inertia - new_inertia).abs() < 1e-10 * (1.0 + inertia.abs()) {
            inertia = new_inertia;
            break;
        }
        inertia = new_inertia;
    }
    (Clustering::new(k, assignments), inertia)
}

/// Weighted k-means over sparse binary vectors (Euclidean distance).
/// Returns the clustering and the final weighted inertia.
///
/// # Panics
/// Panics if `points` is empty or `k == 0`.
pub fn kmeans_binary(
    points: &[&QueryVector],
    weights: &[f64],
    n_features: usize,
    config: KMeansConfig,
) -> (Clustering, f64) {
    assert!(!points.is_empty(), "kmeans over empty point set");
    assert_eq!(points.len(), weights.len(), "weights length mismatch");
    assert!(config.k > 0, "k must be positive");
    let k = config.k.min(points.len());
    let mut rng = StdRng::seed_from_u64(config.seed);

    // k-means++ over sparse points.
    let mut centroid_ids = vec![pick_weighted(weights, &mut rng)];
    let mut d2 = vec![f64::INFINITY; points.len()];
    while centroid_ids.len() < k {
        let latest = *centroid_ids.last().expect("non-empty");
        for (i, p) in points.iter().enumerate() {
            let d = p.symmetric_difference_size(points[latest]) as f64;
            if d < d2[i] {
                d2[i] = d;
            }
        }
        let scores: Vec<f64> = d2.iter().zip(weights).map(|(d, w)| d * w).collect();
        let total: f64 = scores.iter().sum();
        let next = if total > 0.0 {
            pick_weighted(&scores, &mut rng)
        } else {
            rng.gen_range(0..points.len())
        };
        centroid_ids.push(next);
    }
    let mut centroids: Vec<Vec<f64>> = centroid_ids
        .iter()
        .map(|&i| to_dense(points[i], n_features))
        .collect();

    let mut assignments = vec![0usize; points.len()];
    let mut inertia = f64::INFINITY;

    for _ in 0..config.max_iters {
        let sq_norms: Vec<f64> = centroids
            .iter()
            .map(|c| c.iter().map(|v| v * v).sum::<f64>())
            .collect();
        let mut new_inertia = 0.0;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0;
            let mut best_d2 = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let dot: f64 = p.iter().map(|id| centroid[id.index()]).sum();
                let d2 = (p.len() as f64 - 2.0 * dot + sq_norms[c]).max(0.0);
                if d2 < best_d2 {
                    best_d2 = d2;
                    best = c;
                }
            }
            assignments[i] = best;
            new_inertia += weights[i] * best_d2;
        }
        // Update centroids.
        let mut sums = vec![vec![0.0; n_features]; k];
        let mut wsum = vec![0.0; k];
        for (i, p) in points.iter().enumerate() {
            let c = assignments[i];
            wsum[c] += weights[i];
            for id in p.iter() {
                sums[c][id.index()] += weights[i];
            }
        }
        for c in 0..k {
            if wsum[c] > 0.0 {
                for s in &mut sums[c] {
                    *s /= wsum[c];
                }
                centroids[c] = std::mem::take(&mut sums[c]);
            } else {
                let far = rng.gen_range(0..points.len());
                centroids[c] = to_dense(points[far], n_features);
            }
        }
        if (inertia - new_inertia).abs() < 1e-10 * (1.0 + inertia.abs()) {
            inertia = new_inertia;
            break;
        }
        inertia = new_inertia;
    }
    (Clustering::new(k, assignments), inertia)
}

fn to_dense(v: &QueryVector, n: usize) -> Vec<f64> {
    let mut out = vec![0.0; n];
    for id in v.iter() {
        out[id.index()] = 1.0;
    }
    out
}

fn dist2_dense(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn nearest_dense(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d2 = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d2 = dist2_dense(p, centroid);
        if d2 < best_d2 {
            best_d2 = d2;
            best = c;
        }
    }
    (best, best_d2)
}

fn plus_plus_init_dense(
    points: &[Vec<f64>],
    weights: &[f64],
    k: usize,
    rng: &mut StdRng,
) -> Vec<Vec<f64>> {
    let mut centroids = vec![points[pick_weighted(weights, rng)].clone()];
    let mut d2 = vec![f64::INFINITY; points.len()];
    while centroids.len() < k {
        let latest = centroids.last().expect("non-empty");
        for (i, p) in points.iter().enumerate() {
            let d = dist2_dense(p, latest);
            if d < d2[i] {
                d2[i] = d;
            }
        }
        let scores: Vec<f64> = d2.iter().zip(weights).map(|(d, w)| d * w).collect();
        let total: f64 = scores.iter().sum();
        let next =
            if total > 0.0 { pick_weighted(&scores, rng) } else { rng.gen_range(0..points.len()) };
        centroids.push(points[next].clone());
    }
    centroids
}

/// Sample an index proportionally to non-negative weights.
fn pick_weighted(weights: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_feature::FeatureId;

    fn qv(ids: &[u32]) -> QueryVector {
        QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
    }

    #[test]
    fn dense_separates_two_obvious_blobs() {
        let points = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
            vec![5.0, 5.1],
        ];
        let weights = vec![1.0; 6];
        let (c, inertia) = kmeans_dense(&points, &weights, KMeansConfig::new(2, 1));
        assert_eq!(c.assignments[0], c.assignments[1]);
        assert_eq!(c.assignments[0], c.assignments[2]);
        assert_eq!(c.assignments[3], c.assignments[4]);
        assert_eq!(c.assignments[3], c.assignments[5]);
        assert_ne!(c.assignments[0], c.assignments[3]);
        assert!(inertia < 0.1);
    }

    #[test]
    fn binary_separates_disjoint_workloads() {
        // Two workloads with disjoint feature sets (paper §5 motivation).
        let vs = [qv(&[0, 1, 2]), qv(&[0, 1]), qv(&[1, 2]), qv(&[10, 11]), qv(&[10, 12])];
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let weights = vec![1.0; 5];
        let (c, _) = kmeans_binary(&refs, &weights, 16, KMeansConfig::new(2, 7));
        assert_eq!(c.assignments[0], c.assignments[1]);
        assert_eq!(c.assignments[0], c.assignments[2]);
        assert_eq!(c.assignments[3], c.assignments[4]);
        assert_ne!(c.assignments[0], c.assignments[3]);
    }

    #[test]
    fn k_clamped_to_point_count() {
        let vs = [qv(&[0]), qv(&[1])];
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let (c, inertia) = kmeans_binary(&refs, &[1.0, 1.0], 4, KMeansConfig::new(10, 0));
        assert_eq!(c.k, 2);
        assert!(inertia < 1e-9);
    }

    #[test]
    fn k1_groups_everything() {
        let points = vec![vec![0.0], vec![1.0], vec![2.0]];
        let (c, _) = kmeans_dense(&points, &[1.0; 3], KMeansConfig::new(1, 0));
        assert!(c.assignments.iter().all(|&a| a == 0));
    }

    #[test]
    fn weights_pull_centroids() {
        // A heavy point at 0 and light points at 1: with k = 1 the centroid
        // sits near 0, so inertia is dominated by the light points.
        let points = vec![vec![0.0], vec![1.0]];
        let (_, heavy0) = kmeans_dense(&points, &[100.0, 1.0], KMeansConfig::new(1, 0));
        let (_, balanced) = kmeans_dense(&points, &[1.0, 1.0], KMeansConfig::new(1, 0));
        // Weighted inertia with the heavy point is below the unweighted
        // two-point inertia scaled by total weight.
        assert!(heavy0 / 101.0 < balanced / 2.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let vs = [qv(&[0, 1]), qv(&[1, 2]), qv(&[5, 6]), qv(&[6, 7])];
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let (a, _) = kmeans_binary(&refs, &[1.0; 4], 10, KMeansConfig::new(2, 42));
        let (b, _) = kmeans_binary(&refs, &[1.0; 4], 10, KMeansConfig::new(2, 42));
        assert_eq!(a, b);
    }

    #[test]
    fn binary_inertia_decreases_with_k() {
        let vs: Vec<QueryVector> = (0..12u32).map(|i| qv(&[i, i + 1, i + 2])).collect();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let weights = vec![1.0; refs.len()];
        let (_, i2) = kmeans_binary(&refs, &weights, 16, KMeansConfig::new(2, 3));
        let (_, i6) = kmeans_binary(&refs, &weights, 16, KMeansConfig::new(6, 3));
        assert!(i6 <= i2 + 1e-9, "inertia should not grow with k: {i2} -> {i6}");
    }
}
