//! Shared clustering result type.

/// A partition of `n` items into at most `k` clusters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Number of clusters (some may be empty before [`Clustering::compact`]).
    pub k: usize,
    /// `assignments[i]` is the cluster of item `i`, in `0..k`.
    pub assignments: Vec<usize>,
}

impl Clustering {
    /// Build from raw assignments.
    ///
    /// # Panics
    /// Panics if any assignment is `>= k`.
    pub fn new(k: usize, assignments: Vec<usize>) -> Self {
        assert!(assignments.iter().all(|&a| a < k), "assignment out of range");
        Clustering { k, assignments }
    }

    /// Single-cluster partition of `n` items.
    pub fn trivial(n: usize) -> Self {
        Clustering { k: 1, assignments: vec![0; n] }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True if there are no items.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Item indices grouped per cluster (empty clusters included).
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.k];
        for (i, &c) in self.assignments.iter().enumerate() {
            groups[c].push(i);
        }
        groups
    }

    /// Item count per cluster.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0; self.k];
        for &c in &self.assignments {
            sizes[c] += 1;
        }
        sizes
    }

    /// Number of non-empty clusters.
    pub fn non_empty(&self) -> usize {
        self.sizes().iter().filter(|&&s| s > 0).count()
    }

    /// Renumber clusters to remove empty ones; returns the compacted
    /// clustering.
    pub fn compact(&self) -> Clustering {
        let sizes = self.sizes();
        let mut remap = vec![usize::MAX; self.k];
        let mut next = 0;
        for (c, &s) in sizes.iter().enumerate() {
            if s > 0 {
                remap[c] = next;
                next += 1;
            }
        }
        Clustering { k: next, assignments: self.assignments.iter().map(|&c| remap[c]).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_and_sizes() {
        let c = Clustering::new(3, vec![0, 2, 0, 2]);
        assert_eq!(c.members(), vec![vec![0, 2], vec![], vec![1, 3]]);
        assert_eq!(c.sizes(), vec![2, 0, 2]);
        assert_eq!(c.non_empty(), 2);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn compact_removes_empty_clusters() {
        let c = Clustering::new(3, vec![0, 2, 0, 2]).compact();
        assert_eq!(c.k, 2);
        assert_eq!(c.assignments, vec![0, 1, 0, 1]);
    }

    #[test]
    fn trivial_is_single_cluster() {
        let c = Clustering::trivial(5);
        assert_eq!(c.k, 1);
        assert_eq!(c.sizes(), vec![5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_bad_assignment() {
        Clustering::new(2, vec![0, 2]);
    }
}
