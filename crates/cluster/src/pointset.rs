//! Dense popcount distance engine (the clustering hot path).
//!
//! Every clustering strategy in this crate funnels through pairwise
//! distances over binary query vectors, and on binary vectors every §6.1
//! metric is a function of the symmetric-difference cardinality
//! `d = |x ⊕ y|`. [`PointSet`] exploits that: it batch-converts a dataset's
//! sparse [`QueryVector`]s into `u64`-block [`BitVec`]s **once**, then
//! computes any metric from a single xor-popcount sweep — branch-free,
//! SIMD-friendly, and independent of how many features each query sets.
//!
//! Pairwise distances are materialized as a [`CondensedMatrix`]: only the
//! strict upper triangle, `n·(n−1)/2` doubles, halving memory versus the
//! full `Matrix` the sparse path builds. Rows of the triangle are
//! contiguous, so construction parallelizes over scoped threads with no
//! synchronization (feature `parallel`, on by default).

use crate::distance::Distance;
use crate::par;
use logr_feature::{BitVec, QueryLog, QueryVector};
use logr_math::Matrix;

use crate::par::PARALLEL_MIN_POINTS;

/// A dataset of binary vectors in dense popcount-ready form.
#[derive(Debug, Clone)]
pub struct PointSet {
    bits: Vec<BitVec>,
    n_features: usize,
}

impl PointSet {
    /// Batch-convert sparse vectors over a universe of `n_features`.
    ///
    /// # Panics
    /// Panics if any vector sets a feature outside the universe.
    pub fn from_vectors(points: &[&QueryVector], n_features: usize) -> Self {
        let bits = points.iter().map(|p| BitVec::from_query_vector(p, n_features)).collect();
        PointSet { bits, n_features }
    }

    /// Batch-convert a log's distinct entries (multiplicities are *not*
    /// stored here; clustering carries them as separate weights).
    pub fn from_log(log: &QueryLog) -> Self {
        let n_features = log.num_features();
        let bits =
            log.entries().iter().map(|(v, _)| BitVec::from_query_vector(v, n_features)).collect();
        PointSet { bits, n_features }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when the set has no points.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Size of the feature universe.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Dense bits of point `i`.
    pub fn point(&self, i: usize) -> &BitVec {
        &self.bits[i]
    }

    /// `|xᵢ ⊕ xⱼ|` via popcount.
    #[inline]
    pub fn mismatches(&self, i: usize, j: usize) -> usize {
        self.bits[i].xor_count(&self.bits[j])
    }

    /// Distance between points `i` and `j` under `metric`.
    #[inline]
    pub fn distance(&self, i: usize, j: usize, metric: Distance) -> f64 {
        metric.of_mismatches(self.mismatches(i, j), self.n_features)
    }

    /// Distance from an external probe vector to point `i`.
    #[inline]
    pub fn distance_to(&self, probe: &BitVec, i: usize, metric: Distance) -> f64 {
        metric.of_mismatches(probe.xor_count(&self.bits[i]), self.n_features)
    }

    /// Index and distance of the point nearest to `probe` (ties to the
    /// lowest index). `None` for an empty set.
    pub fn nearest(&self, probe: &BitVec, metric: Distance) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.bits.len() {
            let d = self.distance_to(probe, i, metric);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        best
    }

    /// All pairwise distances as a condensed upper-triangular matrix,
    /// computed in parallel for large sets.
    pub fn distances(&self, metric: Distance) -> CondensedMatrix {
        let n = self.bits.len();
        let mut cm = CondensedMatrix::zeros(n);
        if n < 2 {
            return cm;
        }
        // Row i of the strict upper triangle — the pairs (i, i+1..n) — is a
        // contiguous slice of the condensed buffer, so the rows partition
        // the buffer and can be filled lock-free.
        let rows = par::triangle_rows(&mut cm.data, n);
        let n_threads = if n < PARALLEL_MIN_POINTS { 1 } else { par::threads() };
        let bits = &self.bits;
        let n_features = self.n_features;
        par::run_tasks(rows, n_threads, |(i, row)| {
            let a = &bits[i];
            for (offset, cell) in row.iter_mut().enumerate() {
                let j = i + 1 + offset;
                *cell = metric.of_mismatches(a.xor_count(&bits[j]), n_features);
            }
        });
        cm
    }
}

/// Start of row `i` in a condensed strict-upper-triangle buffer over `n`
/// points — the offset of cell `(i, i+1)`; row `i` holds `n − 1 − i`
/// cells. The single source of the condensed layout's offset arithmetic,
/// shared by [`CondensedMatrix`] and the sharded build.
#[inline]
pub(crate) fn condensed_row_start(n: usize, i: usize) -> usize {
    i * (n - 1) - (i * i - i) / 2
}

/// Strict-upper-triangular pairwise distance matrix: entry `(i, j)` with
/// `i < j` lives at `i·(n−1) − i·(i−1)/2 + (j − i − 1)` (scipy `pdist`
/// layout). Symmetric reads are folded; the diagonal is implicitly zero.
#[derive(Debug, Clone, PartialEq)]
pub struct CondensedMatrix {
    n: usize,
    data: Vec<f64>,
}

impl CondensedMatrix {
    /// All-zero condensed matrix over `n` points (`n·(n−1)/2` entries).
    pub fn zeros(n: usize) -> Self {
        CondensedMatrix { n, data: vec![0.0; n * n.saturating_sub(1) / 2] }
    }

    /// Number of points (side length of the square matrix it represents).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Strict-upper-triangle offset of `(i, j)`. Callers must route the
    /// diagonal first: with `i == j` the `j − i − 1` term underflows (debug)
    /// or silently aliases the last cell of row `i − 1` (release), so this
    /// stays private and every public read/write handles `i == j` in all
    /// build profiles before folding through it.
    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n, "condensed index ({i}, {j}) of {}", self.n);
        condensed_row_start(self.n, i) + (j - i - 1)
    }

    /// Distance between `i` and `j` (0 on the diagonal).
    ///
    /// The diagonal is handled by an explicit match arm — a release-build
    /// `i == j` read returns the implicit 0 rather than reaching the index
    /// formula, whose underflow a `debug_assert!` alone would not stop.
    ///
    /// # Panics
    /// Panics if an index is out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index ({i}, {j}) out of range {}", self.n);
        match i.cmp(&j) {
            std::cmp::Ordering::Less => self.data[self.index(i, j)],
            std::cmp::Ordering::Equal => 0.0,
            std::cmp::Ordering::Greater => self.data[self.index(j, i)],
        }
    }

    /// Set the distance between distinct points `i` and `j` (one write
    /// covers both orientations).
    ///
    /// # Panics
    /// Panics if `i == j` or an index is out of range.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i != j, "cannot set the diagonal of a condensed matrix");
        assert!(i < self.n && j < self.n, "index ({i}, {j}) out of range {}", self.n);
        let idx = if i < j { self.index(i, j) } else { self.index(j, i) };
        self.data[idx] = value;
    }

    /// The raw strict-upper-triangle buffer, row-major by `i`.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw buffer (crate-internal: the sharded merge and the
    /// parallel builders fill disjoint row slices directly).
    pub(crate) fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Expand to the symmetric full matrix (tests / interop).
    pub fn to_full(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.n);
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let d = self.get(i, j);
                m[(i, j)] = d;
                m[(j, i)] = d;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::distance_matrix;
    use logr_feature::FeatureId;

    fn qv(ids: &[u32]) -> QueryVector {
        QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
    }

    fn all_metrics() -> [Distance; 6] {
        [
            Distance::Euclidean,
            Distance::Manhattan,
            Distance::Minkowski(4.0),
            Distance::Hamming,
            Distance::Chebyshev,
            Distance::Canberra,
        ]
    }

    #[test]
    fn condensed_indexing_round_trips() {
        let n = 7;
        let mut cm = CondensedMatrix::zeros(n);
        let mut v = 1.0;
        for i in 0..n {
            for j in (i + 1)..n {
                cm.set(i, j, v);
                v += 1.0;
            }
        }
        // Entries are distinct, symmetric, and the diagonal reads zero.
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            assert_eq!(cm.get(i, i), 0.0);
            for j in 0..n {
                if i != j {
                    assert_eq!(cm.get(i, j), cm.get(j, i));
                    seen.insert(cm.get(i, j) as u64);
                }
            }
        }
        assert_eq!(seen.len(), n * (n - 1) / 2);
        assert_eq!(cm.as_slice().len(), n * (n - 1) / 2);
    }

    #[test]
    fn set_accepts_either_orientation() {
        let mut cm = CondensedMatrix::zeros(4);
        cm.set(3, 1, 9.0);
        assert_eq!(cm.get(1, 3), 9.0);
        assert_eq!(cm.get(3, 1), 9.0);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn set_rejects_diagonal() {
        CondensedMatrix::zeros(4).set(2, 2, 1.0);
    }

    #[test]
    fn diagonal_reads_zero_in_every_build_profile() {
        // Regression for the folded-read hazard: `index(i, i)` would alias
        // the last cell of row `i − 1` in release builds (the `j − i − 1`
        // term wraps), so `get` must route the diagonal through its
        // explicit match arm — which, unlike a `debug_assert!`, is active
        // in release. Saturate every off-diagonal cell with a sentinel and
        // verify no diagonal read can observe it.
        let n = 6;
        let mut cm = CondensedMatrix::zeros(n);
        for i in 0..n {
            for j in (i + 1)..n {
                cm.set(i, j, 1e9);
            }
        }
        for i in 0..n {
            assert_eq!(cm.get(i, i), 0.0, "diagonal ({i}, {i}) leaked a folded cell");
        }
        // And folded reads still see the sentinel (the guard is precise).
        assert_eq!(cm.get(3, 2), 1e9);
    }

    #[test]
    fn dense_distances_match_sparse_reference_exactly() {
        let vs = [qv(&[0, 1, 2]), qv(&[2, 3]), qv(&[]), qv(&[0, 5, 63, 64]), qv(&[64]), qv(&[1])];
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let nf = 80;
        let ps = PointSet::from_vectors(&refs, nf);
        for metric in all_metrics() {
            let sparse = distance_matrix(&refs, metric, nf);
            let dense = ps.distances(metric);
            for i in 0..refs.len() {
                for j in 0..refs.len() {
                    // Bit-identical: both paths feed the same integer
                    // mismatch count through the same float kernel.
                    assert_eq!(
                        sparse[(i, j)].to_bits(),
                        dense.get(i, j).to_bits(),
                        "{metric:?} at ({i}, {j})"
                    );
                }
            }
        }
    }

    #[test]
    fn to_full_matches_pairwise_gets() {
        let vs = [qv(&[0]), qv(&[0, 1]), qv(&[2, 3])];
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let ps = PointSet::from_vectors(&refs, 8);
        let cm = ps.distances(Distance::Manhattan);
        let full = cm.to_full();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(full[(i, j)], cm.get(i, j));
            }
        }
    }

    #[test]
    fn parallel_build_agrees_with_serial_layout() {
        // Cross the PARALLEL_MIN_POINTS threshold to exercise the threaded
        // row fill, and verify against per-pair recomputation.
        let vs: Vec<QueryVector> =
            (0..150u32).map(|i| qv(&[i % 32, (i * 7) % 32, (i * 13) % 32])).collect();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let ps = PointSet::from_vectors(&refs, 32);
        let cm = ps.distances(Distance::Euclidean);
        for i in (0..150).step_by(17) {
            for j in (0..150).step_by(13) {
                assert_eq!(cm.get(i, j), ps.distance(i, j, Distance::Euclidean), "({i},{j})");
            }
        }
    }

    #[test]
    fn from_log_matches_from_vectors() {
        let mut log = QueryLog::new();
        log.add_vector(qv(&[0, 1]), 3);
        log.add_vector(qv(&[4]), 1);
        let ps = PointSet::from_log(&log);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.n_features(), log.num_features());
        assert_eq!(ps.mismatches(0, 1), 3);
    }

    #[test]
    fn nearest_and_probe_distances() {
        let vs = [qv(&[0, 1]), qv(&[4, 5]), qv(&[0, 1, 2])];
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let ps = PointSet::from_vectors(&refs, 8);
        let probe = BitVec::from_query_vector(&qv(&[0, 1, 2, 3]), 8);
        let (idx, d) = ps.nearest(&probe, Distance::Manhattan).unwrap();
        assert_eq!(idx, 2);
        assert_eq!(d, 1.0);
        assert_eq!(ps.distance_to(&probe, 0, Distance::Manhattan), 2.0);
        let empty = PointSet::from_vectors(&[], 8);
        assert!(empty.nearest(&probe, Distance::Manhattan).is_none());
        assert!(empty.is_empty());
    }

    #[test]
    fn degenerate_sizes() {
        let ps = PointSet::from_vectors(&[], 4);
        assert_eq!(ps.distances(Distance::Manhattan).as_slice().len(), 0);
        let v = qv(&[1]);
        let one = PointSet::from_vectors(&[&v], 4);
        let cm = one.distances(Distance::Manhattan);
        assert_eq!(cm.n(), 1);
        assert_eq!(cm.get(0, 0), 0.0);
    }
}
