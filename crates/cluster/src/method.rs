//! Clustering method façade used by the compressor and the harness.
//!
//! Wraps the §6.1 strategy matrix — KMeans-Euclidean plus spectral
//! clustering over Manhattan / Minkowski-4 / Hamming — and the hierarchical
//! alternative behind one enum, operating directly on a [`QueryLog`]'s
//! distinct entries with multiplicity weights.

use crate::assign::Clustering;
use crate::distance::Distance;
use crate::hierarchical::hierarchical_cluster_pointset;
use crate::kmeans::{kmeans_binary_pointset, KMeansConfig};
use crate::pointset::PointSet;
use crate::spectral::{spectral_cluster_pointset, SpectralConfig};
use logr_feature::QueryLog;

/// A log-partitioning strategy from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClusterMethod {
    /// KMeans with Euclidean distance (the paper's fastest option).
    KMeansEuclidean,
    /// Spectral clustering over the given distance.
    Spectral(Distance),
    /// Agglomerative average-linkage clustering over the given distance
    /// (monotonic cuts; §6.1.1 "Hierarchical Clustering").
    Hierarchical(Distance),
}

impl ClusterMethod {
    /// The four configurations of Figure 2, in the paper's plotting order.
    pub fn paper_lineup() -> [ClusterMethod; 4] {
        [
            ClusterMethod::Spectral(Distance::Minkowski(4.0)),
            ClusterMethod::Spectral(Distance::Manhattan),
            ClusterMethod::Spectral(Distance::Hamming),
            ClusterMethod::KMeansEuclidean,
        ]
    }

    /// Harness label (matches the paper's legend naming).
    pub fn label(&self) -> String {
        match self {
            ClusterMethod::KMeansEuclidean => "KmeansEuclidean".into(),
            ClusterMethod::Spectral(d) => d.label().into_owned(),
            ClusterMethod::Hierarchical(d) => format!("hierarchical-{}", d.label()),
        }
    }
}

/// Partition a log's distinct queries into `k` clusters.
///
/// Entries are weighted by multiplicity, so the result equals clustering the
/// exploded log. The log's vectors are batch-converted into a dense
/// [`PointSet`] exactly once; every strategy then runs on the popcount
/// engine. Returns the trivial clustering for `k <= 1` or an empty log.
pub fn cluster_log(log: &QueryLog, k: usize, method: ClusterMethod, seed: u64) -> Clustering {
    let n = log.distinct_count();
    if n == 0 {
        return Clustering::new(1, Vec::new());
    }
    if k <= 1 || n == 1 {
        return Clustering::trivial(n);
    }
    let points = PointSet::from_log(log);
    let weights: Vec<f64> = log.entries().iter().map(|&(_, c)| c as f64).collect();
    match method {
        ClusterMethod::KMeansEuclidean => {
            kmeans_binary_pointset(&points, &weights, KMeansConfig::new(k, seed)).0
        }
        ClusterMethod::Spectral(metric) => {
            spectral_cluster_pointset(&points, &weights, SpectralConfig::new(k, metric, seed))
        }
        ClusterMethod::Hierarchical(metric) => {
            hierarchical_cluster_pointset(&points, &weights, metric).cut(k)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_feature::LogIngest;

    fn two_workload_log() -> QueryLog {
        let mut ingest = LogIngest::new();
        for _ in 0..5 {
            ingest.ingest("SELECT id FROM Messages WHERE status = ?");
            ingest.ingest("SELECT id, body FROM Messages WHERE status = ?");
            ingest.ingest("SELECT balance FROM accounts WHERE owner = ?");
            ingest.ingest("SELECT balance, branch FROM accounts WHERE owner = ?");
        }
        ingest.finish().0
    }

    #[test]
    fn all_methods_partition_the_log() {
        let log = two_workload_log();
        for method in [
            ClusterMethod::KMeansEuclidean,
            ClusterMethod::Spectral(Distance::Manhattan),
            ClusterMethod::Spectral(Distance::Minkowski(4.0)),
            ClusterMethod::Spectral(Distance::Hamming),
            ClusterMethod::Hierarchical(Distance::Hamming),
        ] {
            let c = cluster_log(&log, 2, method, 17);
            assert_eq!(c.len(), log.distinct_count(), "{}", method.label());
            // The messaging and banking workloads are feature-disjoint; all
            // methods must separate them at k = 2.
            assert_eq!(c.assignments[0], c.assignments[1], "{}", method.label());
            assert_eq!(c.assignments[2], c.assignments[3], "{}", method.label());
            assert_ne!(c.assignments[0], c.assignments[2], "{}", method.label());
        }
    }

    #[test]
    fn k1_is_trivial_for_all_methods() {
        let log = two_workload_log();
        for method in ClusterMethod::paper_lineup() {
            let c = cluster_log(&log, 1, method, 0);
            assert_eq!(c.k, 1);
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ClusterMethod::KMeansEuclidean.label(), "KmeansEuclidean");
        assert_eq!(ClusterMethod::Spectral(Distance::Hamming).label(), "hamming");
        assert_eq!(ClusterMethod::Spectral(Distance::Minkowski(4.0)).label(), "minkowski4");
        assert_eq!(
            ClusterMethod::Hierarchical(Distance::Manhattan).label(),
            "hierarchical-manhattan"
        );
    }

    #[test]
    fn empty_log_is_handled() {
        let log = QueryLog::new();
        let c = cluster_log(&log, 3, ClusterMethod::KMeansEuclidean, 0);
        assert!(c.is_empty());
    }
}
