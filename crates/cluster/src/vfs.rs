//! Injectable storage layer: every file the spill store, the engine
//! manifest, and the engine lock touch goes through the [`Vfs`] trait.
//!
//! Production code runs on [`RealFs`], a thin passthrough to `std::fs`.
//! Tests run on [`FaultFs`], an in-memory filesystem that (1) **records**
//! the full trace of mutating IO ops — including which writes were
//! fsynced — so a power-cut replay harness can materialize the surviving
//! on-disk state after a crash at *any* point in the trace
//! ([`durable_state`]), and (2) **injects** transient or permanent
//! failures (`EINTR`, `EAGAIN`, `ENOSPC`, `EIO`, …) at chosen call sites
//! ([`FaultFs::inject`]) to prove the write path retries what is
//! retryable and surfaces everything else as a typed error with the store
//! left openable.
//!
//! # The durability model behind [`durable_state`]
//!
//! The simulator distinguishes the **page cache** (what a running process
//! observes) from the **platter** (what survives a power cut), with the
//! adversarial POSIX rules crash-consistency literature assumes:
//!
//! * a [`Vfs::write`] lands in cache only — after a crash the file's
//!   *previous* durable content survives (or a zero-length file, if the
//!   file was never fsynced under any name);
//! * a [`Vfs::append`] extends the cache view only; after a crash the
//!   previously durable content survives unchanged, and a torn final
//!   append can leave half the suffix behind it — which is why the
//!   delta-log framing checksums every record;
//! * [`Vfs::fsync`] makes the file's current **content** durable, but not
//!   the directory entry pointing at it;
//! * [`Vfs::rename`] / [`Vfs::remove`] / file creation are **namespace**
//!   ops: visible immediately in cache, durable only after a
//!   [`Vfs::sync_dir`] of the parent directory;
//! * rename moves the *inode*, so content fsynced under the old name is
//!   intact under the new one.
//!
//! A crash state for a trace prefix is therefore: the durable namespace,
//! each entry resolving to its inode's last-fsynced content (zero-length
//! when the inode was never fsynced). On top of the pessimistic base
//! state, [`LastOpVariant`] materializes the optimistic and torn outcomes
//! of the prefix's final op — a write whose pages happened to hit disk
//! (fully or torn in half), a rename the journal committed early — so the
//! harness covers both "the op was lost" and "the op survived without the
//! fsync" for every single op in a run.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Whole-file storage operations, at exactly the granularity the store
/// uses them (`std::fs::write`-style full replacement, never seeks).
/// Implementations must be shareable across threads — snapshots reload
/// spilled shards from reader threads while the writer appends.
pub trait Vfs: fmt::Debug + Send + Sync {
    /// Read a file's entire contents.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Create-or-truncate `path` and write `bytes`. **No durability** is
    /// implied — pair with [`Vfs::fsync`] (and, for the name itself,
    /// [`Vfs::sync_dir`]).
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Append `bytes` to `path`, creating it if missing. **No
    /// durability** is implied — pair with [`Vfs::fsync`]. The one
    /// sequential-growth primitive the delta log needs; everything else
    /// in the store remains whole-file replacement.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Flush a file's content to stable storage (`fsync`).
    fn fsync(&self, path: &Path) -> io::Result<()>;
    /// Atomically rename `from` to `to` (replacing `to`).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Direct children of `dir` that are files.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Create `dir` and any missing ancestors.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Flush `dir`'s entries to stable storage — what makes renames,
    /// removals, and creations in it survive a power cut.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Does `path` name an existing file or directory?
    fn exists(&self, path: &Path) -> bool;
    /// Create `path` **exclusively** (`O_CREAT | O_EXCL`) with `bytes` as
    /// content; [`io::ErrorKind::AlreadyExists`] when it exists. The
    /// primitive cross-process lock acquisition is built on — unlike
    /// read-then-write, two racing creators cannot both succeed.
    fn create_exclusive(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
}

/// The default [`Vfs`]: a passthrough to `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

impl Vfs for RealFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).create(true).open(path)?;
        f.write_all(bytes)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        // Opening read-only is enough to fsync on every Unix; the handle
        // is fresh, but fsync flushes the *inode*, not the descriptor's
        // private view, so this is equivalent to syncing the write handle.
        std::fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.is_file() {
                out.push(path);
            }
        }
        Ok(out)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Directory fsync is POSIX-only plumbing; where a directory
        // cannot be opened the rename is still atomic, just not yet
        // durable — degrade silently rather than fail the write path.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn create_exclusive(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().write(true).create_new(true).open(path)?;
        f.write_all(bytes)
    }
}

/// The process-wide default [`Vfs`] handle ([`RealFs`]).
pub fn default_vfs() -> Arc<dyn Vfs> {
    Arc::new(RealFs)
}

// ---- transient-fault policy -------------------------------------------

/// Attempts [`retry_io`] makes before giving up on a transient error.
pub const IO_RETRY_ATTEMPTS: usize = 6;

/// Is this error worth retrying? `EINTR` (a signal landed mid-syscall)
/// and `EAGAIN`/`EWOULDBLOCK` (a transiently saturated resource) are the
/// classic transients; everything else — `ENOSPC` included — reflects a
/// state retrying cannot fix and must surface immediately as a typed
/// error.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock)
}

/// Run `op`, retrying transient failures ([`is_transient`]) up to
/// [`IO_RETRY_ATTEMPTS`] times with doubling backoff (100 µs start, 5 ms
/// cap — a few milliseconds worst case, never an unbounded stall on the
/// write path). The last error is returned unchanged, so callers still
/// see the real [`io::ErrorKind`] for classification.
pub fn retry_io<T>(mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut delay = Duration::from_micros(100);
    let mut attempt = 0;
    loop {
        match op() {
            Err(e) if attempt + 1 < IO_RETRY_ATTEMPTS && is_transient(&e) => {
                attempt += 1;
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(5));
            }
            other => return other,
        }
    }
}

// ---- the fault-injecting, trace-recording test filesystem -------------

/// One mutating IO operation, as recorded by [`FaultFs`]. Read-only ops
/// (read/list/exists) have no durability footprint and are not traced, so
/// a trace prefix is exactly "the state after the first `k` mutations".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoOp {
    /// Create-or-truncate with full new content (cache only).
    Write {
        /// Target file.
        path: PathBuf,
        /// The full content written.
        bytes: Vec<u8>,
    },
    /// Sequential extension of an existing (or fresh) file (cache only).
    Append {
        /// Target file.
        path: PathBuf,
        /// The bytes appended after the previous content.
        bytes: Vec<u8>,
    },
    /// Content flush of one file.
    Fsync {
        /// The flushed file.
        path: PathBuf,
    },
    /// Atomic rename (namespace op).
    Rename {
        /// Old name.
        from: PathBuf,
        /// New name (replaced if present).
        to: PathBuf,
    },
    /// File removal (namespace op).
    Remove {
        /// The removed file.
        path: PathBuf,
    },
    /// Directory creation (modeled durable immediately).
    CreateDirAll {
        /// The created directory.
        dir: PathBuf,
    },
    /// Directory-entry flush — what makes renames/removals/creations in
    /// `dir` durable.
    SyncDir {
        /// The flushed directory.
        dir: PathBuf,
    },
    /// Exclusive creation (`O_EXCL`) with content (cache only, like
    /// [`IoOp::Write`]).
    CreateExclusive {
        /// Target file.
        path: PathBuf,
        /// The content written.
        bytes: Vec<u8>,
    },
}

impl IoOp {
    /// The op's kind, for fault matching.
    pub fn kind(&self) -> OpKind {
        match self {
            IoOp::Write { .. } => OpKind::Write,
            IoOp::Append { .. } => OpKind::Append,
            IoOp::Fsync { .. } => OpKind::Fsync,
            IoOp::Rename { .. } => OpKind::Rename,
            IoOp::Remove { .. } => OpKind::Remove,
            IoOp::CreateDirAll { .. } => OpKind::CreateDirAll,
            IoOp::SyncDir { .. } => OpKind::SyncDir,
            IoOp::CreateExclusive { .. } => OpKind::CreateExclusive,
        }
    }
}

/// Operation kinds a [`FaultFs`] fault rule can match on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// [`Vfs::read`] (not traced, but faultable).
    Read,
    /// [`Vfs::write`].
    Write,
    /// [`Vfs::append`].
    Append,
    /// [`Vfs::fsync`].
    Fsync,
    /// [`Vfs::rename`].
    Rename,
    /// [`Vfs::remove`].
    Remove,
    /// [`Vfs::list`] (not traced, but faultable).
    List,
    /// [`Vfs::create_dir_all`].
    CreateDirAll,
    /// [`Vfs::sync_dir`].
    SyncDir,
    /// [`Vfs::create_exclusive`].
    CreateExclusive,
}

/// One injected-failure rule: the next `remaining` operations matching
/// `kind` whose primary path contains `path_contains` fail with `error`.
#[derive(Debug, Clone)]
struct FaultRule {
    kind: OpKind,
    path_contains: String,
    error: io::ErrorKind,
    remaining: usize,
}

#[derive(Debug, Default)]
struct FaultState {
    files: BTreeMap<PathBuf, Vec<u8>>,
    dirs: BTreeSet<PathBuf>,
    trace: Vec<IoOp>,
    faults: Vec<FaultRule>,
}

/// In-memory [`Vfs`] for fault testing: records every mutating op (see
/// [`IoOp`]) and injects failures on demand ([`FaultFs`::inject]). Pair
/// with [`durable_state`] to materialize what a power cut at any trace
/// point leaves behind, then open an engine directly on the materialized
/// state via [`FaultFs::from_files`] — no real disk is touched anywhere
/// in the loop.
#[derive(Debug, Default)]
pub struct FaultFs {
    state: Mutex<FaultState>,
}

impl FaultFs {
    /// An empty filesystem (no files, no directories, no faults).
    pub fn new() -> Self {
        FaultFs::default()
    }

    /// A filesystem pre-populated with `files` and `dirs` — the shape
    /// [`durable_state`] returns, so a crash state plugs straight back
    /// into `Engine::open`.
    pub fn from_files(files: BTreeMap<PathBuf, Vec<u8>>, dirs: BTreeSet<PathBuf>) -> Self {
        FaultFs {
            state: Mutex::new(FaultState { files, dirs, trace: Vec::new(), faults: Vec::new() }),
        }
    }

    /// Inject a failure: the next `times` ops matching (`kind`, path
    /// containing `path_contains`) fail with `error`. Rules stack; the
    /// first matching rule fires and is consumed once per op.
    pub fn inject(&self, kind: OpKind, path_contains: &str, error: io::ErrorKind, times: usize) {
        self.lock().faults.push(FaultRule {
            kind,
            path_contains: path_contains.to_string(),
            error,
            remaining: times,
        });
    }

    /// Drop every pending fault rule.
    pub fn clear_faults(&self) {
        self.lock().faults.clear();
    }

    /// The recorded mutating-op trace so far.
    pub fn trace(&self) -> Vec<IoOp> {
        self.lock().trace.clone()
    }

    /// Number of mutating ops recorded so far.
    pub fn trace_len(&self) -> usize {
        self.lock().trace.len()
    }

    /// Snapshot of the **cache** view (what a running process sees) —
    /// after a clean shutdown with everything synced, this equals the
    /// durable state.
    pub fn files(&self) -> BTreeMap<PathBuf, Vec<u8>> {
        self.lock().files.clone()
    }

    /// Snapshot of the directory set.
    pub fn dirs(&self) -> BTreeSet<PathBuf> {
        self.lock().dirs.clone()
    }

    /// Fire the first matching fault rule, if any.
    fn check_fault(state: &mut FaultState, kind: OpKind, path: &Path) -> io::Result<()> {
        let text = path.to_string_lossy();
        for (i, rule) in state.faults.iter_mut().enumerate() {
            if rule.kind == kind && text.contains(&rule.path_contains) {
                rule.remaining -= 1;
                let error = rule.error;
                if rule.remaining == 0 {
                    state.faults.remove(i);
                }
                return Err(io::Error::new(
                    error,
                    format!("injected {kind:?} fault on {}", path.display()),
                ));
            }
        }
        Ok(())
    }

    fn parent_exists(state: &FaultState, path: &Path) -> io::Result<()> {
        match path.parent() {
            Some(parent) if !parent.as_os_str().is_empty() => {
                if state.dirs.contains(parent) {
                    Ok(())
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("no such directory: {}", parent.display()),
                    ))
                }
            }
            _ => Ok(()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        // lint:allow(no-panic-paths): FaultFs is the fault-injection test double; a poisoned mutex means a prior test panicked mid-op, and aborting the test loudly beats limping on with torn state
        self.state.lock().expect("FaultFs state poisoned")
    }
}

impl Vfs for FaultFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut state = self.lock();
        FaultFs::check_fault(&mut state, OpKind::Read, path)?;
        state.files.get(path).cloned().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no such file: {}", path.display()))
        })
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut state = self.lock();
        FaultFs::check_fault(&mut state, OpKind::Write, path)?;
        FaultFs::parent_exists(&state, path)?;
        state.files.insert(path.to_path_buf(), bytes.to_vec());
        state.trace.push(IoOp::Write { path: path.to_path_buf(), bytes: bytes.to_vec() });
        Ok(())
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut state = self.lock();
        FaultFs::check_fault(&mut state, OpKind::Append, path)?;
        FaultFs::parent_exists(&state, path)?;
        state.files.entry(path.to_path_buf()).or_default().extend_from_slice(bytes);
        state.trace.push(IoOp::Append { path: path.to_path_buf(), bytes: bytes.to_vec() });
        Ok(())
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        let mut state = self.lock();
        FaultFs::check_fault(&mut state, OpKind::Fsync, path)?;
        if !state.files.contains_key(path) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file: {}", path.display()),
            ));
        }
        state.trace.push(IoOp::Fsync { path: path.to_path_buf() });
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut state = self.lock();
        FaultFs::check_fault(&mut state, OpKind::Rename, from)?;
        let Some(bytes) = state.files.remove(from) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file: {}", from.display()),
            ));
        };
        state.files.insert(to.to_path_buf(), bytes);
        state.trace.push(IoOp::Rename { from: from.to_path_buf(), to: to.to_path_buf() });
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut state = self.lock();
        FaultFs::check_fault(&mut state, OpKind::Remove, path)?;
        if state.files.remove(path).is_none() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file: {}", path.display()),
            ));
        }
        state.trace.push(IoOp::Remove { path: path.to_path_buf() });
        Ok(())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut state = self.lock();
        FaultFs::check_fault(&mut state, OpKind::List, dir)?;
        if !state.dirs.contains(dir) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such directory: {}", dir.display()),
            ));
        }
        Ok(state.files.keys().filter(|p| p.parent() == Some(dir)).cloned().collect())
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut state = self.lock();
        FaultFs::check_fault(&mut state, OpKind::CreateDirAll, dir)?;
        let mut cursor = dir;
        loop {
            state.dirs.insert(cursor.to_path_buf());
            match cursor.parent() {
                Some(parent) if !parent.as_os_str().is_empty() => cursor = parent,
                _ => break,
            }
        }
        state.trace.push(IoOp::CreateDirAll { dir: dir.to_path_buf() });
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut state = self.lock();
        FaultFs::check_fault(&mut state, OpKind::SyncDir, dir)?;
        state.trace.push(IoOp::SyncDir { dir: dir.to_path_buf() });
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        let state = self.lock();
        state.files.contains_key(path) || state.dirs.contains(path)
    }

    fn create_exclusive(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut state = self.lock();
        FaultFs::check_fault(&mut state, OpKind::CreateExclusive, path)?;
        FaultFs::parent_exists(&state, path)?;
        if state.files.contains_key(path) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("file exists: {}", path.display()),
            ));
        }
        state.files.insert(path.to_path_buf(), bytes.to_vec());
        state.trace.push(IoOp::CreateExclusive { path: path.to_path_buf(), bytes: bytes.to_vec() });
        Ok(())
    }
}

// ---- power-cut crash-state materialization ----------------------------

/// How the **final** op of a trace prefix landed on the platter. The base
/// ([`LastOpVariant::Lost`]) is the pessimistic reading: the op happened
/// in cache but none of its un-fsynced effects survive. The other
/// variants model the op's data racing to disk ahead of any fsync —
/// legal on every real filesystem, and exactly the states a
/// write-then-rename protocol must tolerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LastOpVariant {
    /// Pessimistic: the final op's un-fsynced effects are lost (same
    /// rules as every earlier op).
    Lost,
    /// Optimistic: the final op's full effect reached disk even without
    /// an fsync (content for writes, the namespace change for
    /// rename/remove/create).
    Applied,
    /// A write's pages half-landed: the file's durable content is the
    /// first half of the written bytes (torn page). For non-write ops
    /// this degenerates to [`LastOpVariant::Applied`].
    Torn,
}

/// One simulated inode: cache content vs last-fsynced content.
#[derive(Debug, Default, Clone)]
struct Inode {
    cache: Vec<u8>,
    /// `None` until the first fsync under any name — a crash then leaves
    /// a zero-length file behind the durable dirent, the classic
    /// journaled-fs-with-delayed-allocation outcome.
    durable: Option<Vec<u8>>,
}

/// Materialize the on-disk state a power cut leaves after `ops`, under
/// the durability model in the module docs, with `last` selecting how the
/// final op's own data landed. Returns the surviving `(files, dirs)` —
/// feed them to [`FaultFs::from_files`] and recovery runs against the
/// crash state directly.
pub fn durable_state(
    ops: &[IoOp],
    last: LastOpVariant,
) -> (BTreeMap<PathBuf, Vec<u8>>, BTreeSet<PathBuf>) {
    let mut next_id = 0u64;
    let mut cache_ns: BTreeMap<PathBuf, u64> = BTreeMap::new();
    let mut disk_ns: BTreeMap<PathBuf, u64> = BTreeMap::new();
    let mut inodes: HashMap<u64, Inode> = HashMap::new();
    let mut dirs: BTreeSet<PathBuf> = BTreeSet::new();

    for (i, op) in ops.iter().enumerate() {
        let is_last = i + 1 == ops.len();
        let variant = if is_last { last } else { LastOpVariant::Lost };
        match op {
            IoOp::Write { path, bytes } | IoOp::CreateExclusive { path, bytes } => {
                let id = *cache_ns.entry(path.clone()).or_insert_with(|| {
                    next_id += 1;
                    next_id
                });
                let inode = inodes.entry(id).or_default();
                inode.cache = bytes.clone();
                match variant {
                    LastOpVariant::Lost => {}
                    LastOpVariant::Applied => {
                        inode.durable = Some(bytes.clone());
                        disk_ns.insert(path.clone(), id);
                    }
                    LastOpVariant::Torn => {
                        inode.durable = Some(bytes[..bytes.len() / 2].to_vec());
                        disk_ns.insert(path.clone(), id);
                    }
                }
            }
            IoOp::Append { path, bytes } => {
                let id = *cache_ns.entry(path.clone()).or_insert_with(|| {
                    next_id += 1;
                    next_id
                });
                let inode = inodes.entry(id).or_default();
                let prev_len = inode.cache.len();
                inode.cache.extend_from_slice(bytes);
                match variant {
                    LastOpVariant::Lost => {}
                    LastOpVariant::Applied => {
                        inode.durable = Some(inode.cache.clone());
                        disk_ns.insert(path.clone(), id);
                    }
                    LastOpVariant::Torn => {
                        // Half the appended pages landed: the durable
                        // content is the pre-append cache plus the first
                        // half of the suffix — the torn-tail shape the
                        // delta log's per-record checksums must absorb.
                        let cut = prev_len + bytes.len() / 2;
                        inode.durable = Some(inode.cache[..cut].to_vec());
                        disk_ns.insert(path.clone(), id);
                    }
                }
            }
            IoOp::Fsync { path } => {
                if let Some(id) = cache_ns.get(path) {
                    let inode = inodes.entry(*id).or_default();
                    inode.durable = Some(inode.cache.clone());
                }
            }
            IoOp::Rename { from, to } => {
                if let Some(id) = cache_ns.remove(from) {
                    cache_ns.insert(to.clone(), id);
                    if variant != LastOpVariant::Lost {
                        disk_ns.remove(from);
                        disk_ns.insert(to.clone(), id);
                    }
                }
            }
            IoOp::Remove { path } => {
                cache_ns.remove(path);
                if variant != LastOpVariant::Lost {
                    disk_ns.remove(path);
                }
            }
            IoOp::CreateDirAll { dir } => {
                // Directory creation is modeled durable immediately: the
                // store creates its directory exactly once, before any
                // file lands in it, and a crash losing the whole
                // directory is the trivially-empty store.
                let mut cursor = dir.as_path();
                loop {
                    dirs.insert(cursor.to_path_buf());
                    match cursor.parent() {
                        Some(parent) if !parent.as_os_str().is_empty() => cursor = parent,
                        _ => break,
                    }
                }
            }
            IoOp::SyncDir { dir } => {
                // Align the durable namespace with the cache for direct
                // children of `dir`: pending creations/renames commit,
                // pending removals take effect.
                let stale: Vec<PathBuf> = disk_ns
                    .keys()
                    .filter(|p| p.parent() == Some(dir) && !cache_ns.contains_key(*p))
                    .cloned()
                    .collect();
                for p in stale {
                    disk_ns.remove(&p);
                }
                for (p, id) in &cache_ns {
                    if p.parent() == Some(dir.as_path()) {
                        disk_ns.insert(p.clone(), *id);
                    }
                }
            }
        }
    }

    let files = disk_ns
        .into_iter()
        .map(|(path, id)| {
            let content = inodes.get(&id).and_then(|i| i.durable.clone()).unwrap_or_default();
            (path, content)
        })
        .collect();
    (files, dirs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn faultfs_round_trips_files() {
        let fs = FaultFs::new();
        fs.create_dir_all(&p("/store")).unwrap();
        fs.write(&p("/store/a"), b"hello").unwrap();
        assert_eq!(fs.read(&p("/store/a")).unwrap(), b"hello");
        assert!(fs.exists(&p("/store/a")));
        assert!(fs.exists(&p("/store")));
        fs.rename(&p("/store/a"), &p("/store/b")).unwrap();
        assert!(!fs.exists(&p("/store/a")));
        assert_eq!(fs.read(&p("/store/b")).unwrap(), b"hello");
        assert_eq!(fs.list(&p("/store")).unwrap(), vec![p("/store/b")]);
        fs.remove(&p("/store/b")).unwrap();
        assert!(fs.list(&p("/store")).unwrap().is_empty());
    }

    #[test]
    fn missing_parent_directory_is_not_found() {
        let fs = FaultFs::new();
        let err = fs.write(&p("/nowhere/a"), b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn create_exclusive_refuses_existing_files() {
        let fs = FaultFs::new();
        fs.create_dir_all(&p("/d")).unwrap();
        fs.create_exclusive(&p("/d/lock"), b"1").unwrap();
        let err = fs.create_exclusive(&p("/d/lock"), b"2").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        assert_eq!(fs.read(&p("/d/lock")).unwrap(), b"1", "loser must not clobber");
    }

    #[test]
    fn injected_faults_fire_in_order_and_expire() {
        let fs = FaultFs::new();
        fs.create_dir_all(&p("/d")).unwrap();
        fs.inject(OpKind::Write, "victim", io::ErrorKind::Interrupted, 2);
        assert_eq!(fs.write(&p("/d/victim"), b"x").unwrap_err().kind(), io::ErrorKind::Interrupted);
        fs.write(&p("/d/other"), b"x").unwrap(); // non-matching path unaffected
        assert_eq!(fs.write(&p("/d/victim"), b"x").unwrap_err().kind(), io::ErrorKind::Interrupted);
        fs.write(&p("/d/victim"), b"x").unwrap(); // rule consumed
    }

    #[test]
    fn retry_io_rides_out_transients_but_not_enospc() {
        let fs = FaultFs::new();
        fs.create_dir_all(&p("/d")).unwrap();
        fs.inject(OpKind::Write, "a", io::ErrorKind::Interrupted, 2);
        retry_io(|| fs.write(&p("/d/a"), b"x")).unwrap();

        fs.inject(OpKind::Write, "b", io::ErrorKind::StorageFull, 1);
        let err = retry_io(|| fs.write(&p("/d/b"), b"x")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull, "ENOSPC must not be retried");
        fs.write(&p("/d/b"), b"x").unwrap(); // rule would have survived a retry

        fs.inject(OpKind::Write, "c", io::ErrorKind::Interrupted, IO_RETRY_ATTEMPTS + 3);
        let err = retry_io(|| fs.write(&p("/d/c"), b"x")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted, "retries are bounded");
    }

    #[test]
    fn unsynced_write_is_lost_synced_write_survives() {
        let fs = FaultFs::new();
        fs.create_dir_all(&p("/d")).unwrap();
        fs.write(&p("/d/a"), b"payload").unwrap();
        // No fsync, no dir sync: nothing survives.
        let (files, dirs) = durable_state(&fs.trace(), LastOpVariant::Lost);
        assert!(files.is_empty());
        assert!(dirs.contains(&p("/d")));

        fs.fsync(&p("/d/a")).unwrap();
        // Content is durable but the dirent is not.
        let (files, _) = durable_state(&fs.trace(), LastOpVariant::Lost);
        assert!(files.is_empty(), "dirent needs a dir sync");

        fs.sync_dir(&p("/d")).unwrap();
        let (files, _) = durable_state(&fs.trace(), LastOpVariant::Lost);
        assert_eq!(files.get(&p("/d/a")).map(Vec::as_slice), Some(&b"payload"[..]));
    }

    #[test]
    fn write_fsync_rename_syncdir_protocol_survives_every_prefix() {
        // The store's atomic-replace protocol: after the final sync_dir
        // the new content is durable under the target name; before it,
        // the *previous* target content is untouched at every prefix.
        let fs = FaultFs::new();
        fs.create_dir_all(&p("/d")).unwrap();
        fs.write(&p("/d/target"), b"old").unwrap();
        fs.fsync(&p("/d/target")).unwrap();
        fs.sync_dir(&p("/d")).unwrap();
        fs.write(&p("/d/target.tmp"), b"new!").unwrap();
        fs.fsync(&p("/d/target.tmp")).unwrap();
        fs.rename(&p("/d/target.tmp"), &p("/d/target")).unwrap();
        fs.sync_dir(&p("/d")).unwrap();

        let trace = fs.trace();
        // Prefix 4 is the first with the old content fully durable
        // (create, write, fsync, sync_dir); from there on it must
        // survive every crash point until the replacing dir sync.
        for k in 4..trace.len() {
            let (files, _) = durable_state(&trace[..k], LastOpVariant::Lost);
            assert_eq!(
                files.get(&p("/d/target")).map(Vec::as_slice),
                Some(&b"old"[..]),
                "prefix {k}: old content must survive until the final dir sync"
            );
        }
        let (files, _) = durable_state(&trace, LastOpVariant::Lost);
        assert_eq!(files.get(&p("/d/target")).map(Vec::as_slice), Some(&b"new!"[..]));
        // The tmp name never survives the full trace.
        assert!(!files.contains_key(&p("/d/target.tmp")));
    }

    #[test]
    fn rename_moves_fsynced_content_with_the_inode() {
        let fs = FaultFs::new();
        fs.create_dir_all(&p("/d")).unwrap();
        fs.write(&p("/d/tmp"), b"data").unwrap();
        fs.fsync(&p("/d/tmp")).unwrap();
        fs.rename(&p("/d/tmp"), &p("/d/final")).unwrap();
        fs.sync_dir(&p("/d")).unwrap();
        let (files, _) = durable_state(&fs.trace(), LastOpVariant::Lost);
        assert_eq!(files.get(&p("/d/final")).map(Vec::as_slice), Some(&b"data"[..]));
        assert!(!files.contains_key(&p("/d/tmp")));
    }

    #[test]
    fn unsynced_rename_leaves_the_old_name_durable() {
        let fs = FaultFs::new();
        fs.create_dir_all(&p("/d")).unwrap();
        fs.write(&p("/d/tmp"), b"data").unwrap();
        fs.fsync(&p("/d/tmp")).unwrap();
        fs.sync_dir(&p("/d")).unwrap(); // tmp's dirent is durable
        fs.rename(&p("/d/tmp"), &p("/d/final")).unwrap();
        // Crash before the dir sync: the rename is lost.
        let (files, _) = durable_state(&fs.trace(), LastOpVariant::Lost);
        assert_eq!(files.get(&p("/d/tmp")).map(Vec::as_slice), Some(&b"data"[..]));
        assert!(!files.contains_key(&p("/d/final")));
        // …unless the journal committed it early.
        let (files, _) = durable_state(&fs.trace(), LastOpVariant::Applied);
        assert_eq!(files.get(&p("/d/final")).map(Vec::as_slice), Some(&b"data"[..]));
        assert!(!files.contains_key(&p("/d/tmp")));
    }

    #[test]
    fn append_extends_the_cache_and_survives_only_after_fsync() {
        let fs = FaultFs::new();
        fs.create_dir_all(&p("/d")).unwrap();
        fs.write(&p("/d/log"), b"head").unwrap();
        fs.fsync(&p("/d/log")).unwrap();
        fs.sync_dir(&p("/d")).unwrap();
        fs.append(&p("/d/log"), b"+tail").unwrap();
        assert_eq!(fs.read(&p("/d/log")).unwrap(), b"head+tail", "cache sees the extension");

        // Unsynced append: the previously durable content is untouched.
        let (files, _) = durable_state(&fs.trace(), LastOpVariant::Lost);
        assert_eq!(files.get(&p("/d/log")).map(Vec::as_slice), Some(&b"head"[..]));

        fs.fsync(&p("/d/log")).unwrap();
        let (files, _) = durable_state(&fs.trace(), LastOpVariant::Lost);
        assert_eq!(files.get(&p("/d/log")).map(Vec::as_slice), Some(&b"head+tail"[..]));
    }

    #[test]
    fn append_creates_missing_files_under_an_existing_parent() {
        let fs = FaultFs::new();
        fs.create_dir_all(&p("/d")).unwrap();
        fs.append(&p("/d/fresh"), b"abc").unwrap();
        assert_eq!(fs.read(&p("/d/fresh")).unwrap(), b"abc");
        let err = fs.append(&p("/nowhere/fresh"), b"abc").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn torn_final_append_keeps_the_head_plus_half_the_suffix() {
        let fs = FaultFs::new();
        fs.create_dir_all(&p("/d")).unwrap();
        fs.write(&p("/d/log"), b"head").unwrap();
        fs.fsync(&p("/d/log")).unwrap();
        fs.sync_dir(&p("/d")).unwrap();
        fs.append(&p("/d/log"), b"12345678").unwrap();
        let (files, _) = durable_state(&fs.trace(), LastOpVariant::Torn);
        assert_eq!(files.get(&p("/d/log")).map(Vec::as_slice), Some(&b"head1234"[..]));
        let (files, _) = durable_state(&fs.trace(), LastOpVariant::Applied);
        assert_eq!(files.get(&p("/d/log")).map(Vec::as_slice), Some(&b"head12345678"[..]));
    }

    #[test]
    fn torn_final_write_halves_the_durable_content() {
        let fs = FaultFs::new();
        fs.create_dir_all(&p("/d")).unwrap();
        fs.write(&p("/d/a"), b"12345678").unwrap();
        let (files, _) = durable_state(&fs.trace(), LastOpVariant::Torn);
        assert_eq!(files.get(&p("/d/a")).map(Vec::as_slice), Some(&b"1234"[..]));
    }

    #[test]
    fn durable_dirent_over_unsynced_inode_is_a_zero_length_file() {
        // Create + sync_dir but never fsync the content: the name
        // survives pointing at nothing — the classic empty-file crash.
        let fs = FaultFs::new();
        fs.create_dir_all(&p("/d")).unwrap();
        fs.write(&p("/d/a"), b"payload").unwrap();
        fs.sync_dir(&p("/d")).unwrap();
        let (files, _) = durable_state(&fs.trace(), LastOpVariant::Lost);
        assert_eq!(files.get(&p("/d/a")).map(Vec::as_slice), Some(&b""[..]));
    }
}
