//! Clustering substrate for LogR.
//!
//! LogR constructs pattern *mixture* encodings by partitioning the log and
//! encoding each partition separately (paper §5, §6.1). The partitioning is
//! plain clustering of query feature vectors; the paper evaluates four
//! strategies — KMeans with Euclidean distance and spectral clustering with
//! Manhattan, Minkowski (p = 4) and Hamming distances — plus hierarchical
//! clustering as the monotonic alternative (§6.1.1).
//!
//! All algorithms operate on **distinct** query vectors weighted by
//! multiplicity, which yields the same partitions as clustering the raw log
//! while keeping costs proportional to the distinct count.
//!
//! # Performance architecture (PR 1)
//!
//! Clustering cost dominates end-to-end compression time (paper §6.1), and
//! on binary vectors every §6.1 metric is a function of the symmetric-
//! difference cardinality `d = |x ⊕ y|`. The hot path is therefore built in
//! three layers:
//!
//! 1. **Dense kernel** — [`PointSet`] batch-converts a dataset's sparse
//!    vectors into `u64`-block bitsets once; any metric is then one
//!    xor-popcount sweep via [`Distance::of_mismatches`]. The float math is
//!    shared with the sparse path, so the two are bit-for-bit equivalent
//!    (property-tested in `tests/proptest_pointset.rs`).
//! 2. **Condensed storage** — pairwise distances materialize as a
//!    [`CondensedMatrix`]: the strict upper triangle only, `n·(n−1)/2`
//!    doubles, halving memory versus the full `Matrix`. Hierarchical
//!    NN-chain and Lance–Williams updates, and the spectral affinity, read
//!    and write this layout directly.
//! 3. **Scoped-thread parallelism** — matrix construction, k-means++
//!    seeding sweeps, and Lloyd assignment fan out over `std::thread::scope`
//!    workers (no external dependency), gated by the `parallel` cargo
//!    feature (default on). RNG-dependent decisions stay on the
//!    coordinating thread and floating-point reductions are associated by
//!    fixed-width chunk, not by worker, so parallel and serial results
//!    are bit-identical regardless of core count.
//!
//! The sparse reference implementation ([`distance_matrix`]) is retained
//! for A/B benchmarking (`logr-bench/benches/ablation_distance.rs`) and as
//! the property-test oracle.
//!
//! # Modules
//!
//! * [`distance`] — the §6.1 distance measures on binary vectors;
//! * [`pointset`] — the dense popcount engine and condensed matrix;
//! * [`shard`] — appendable/sharded condensed construction for streaming
//!   windows: per-shard triangles plus cross blocks, merged through a
//!   [`CondensedShards`] view that is bit-identical to the monolithic
//!   build (window-close cost ∝ window, not history), with an optional
//!   out-of-core store ([`SpillConfig`]) that evicts closed shards to
//!   disk under a resident-byte budget and reloads them transparently;
//! * [`spill`] — the versioned, checksummed on-disk shard format
//!   (magic + header + condensed triangle + cross block + bit-packed
//!   points + FNV-1a 64 checksum) with typed [`SpillError`] decoding;
//! * [`vfs`] — the injectable storage layer every file operation goes
//!   through: the [`Vfs`] trait, the [`RealFs`] passthrough, the
//!   fault-injecting + trace-recording [`FaultFs`], the power-cut
//!   crash-state simulator ([`vfs::durable_state`]), and the bounded
//!   transient-IO retry policy ([`vfs::retry_io`]);
//! * [`kmeans`] — weighted Lloyd iteration with k-means++ seeding (dense and
//!   binary front ends, `*_pointset` variants for pre-converted data);
//! * [`spectral`] — Ng–Jordan–Weiss spectral clustering over an RBF affinity
//!   of any distance, eigenvectors via Lanczos;
//! * [`hierarchical`] — agglomerative average-linkage clustering (nearest-
//!   neighbor-chain over the condensed layout), with monotonic cuts;
//! * [`assign`] — the shared [`Clustering`] result type;
//! * [`method`] — the [`method::ClusterMethod`] façade used by the
//!   compressor and the reproduction harness.

pub mod assign;
pub mod distance;
pub mod hierarchical;
pub mod kmeans;
pub mod method;
mod par;
pub mod pointset;
pub mod shard;
pub mod spectral;
pub mod spill;
#[doc(hidden)]
pub mod testutil;
pub mod vfs;

pub use assign::Clustering;
pub use distance::{distance_matrix, Distance};
pub use hierarchical::{
    hierarchical_cluster, hierarchical_cluster_condensed, hierarchical_cluster_pointset, Dendrogram,
};
pub use kmeans::{kmeans_binary, kmeans_binary_pointset, kmeans_dense, KMeansConfig};
pub use method::{cluster_log, ClusterMethod};
pub use pointset::{CondensedMatrix, PointSet};
pub use shard::{CompactionStats, CondensedShards, ShardedPointSet, SpillConfig};
pub use spectral::{
    spectral_cluster, spectral_cluster_condensed, spectral_cluster_pointset, SpectralConfig,
};
pub use spill::{ShardRecord, SpillError};
pub use vfs::{FaultFs, RealFs, Vfs};
