//! Clustering substrate for LogR.
//!
//! LogR constructs pattern *mixture* encodings by partitioning the log and
//! encoding each partition separately (paper §5, §6.1). The partitioning is
//! plain clustering of query feature vectors; the paper evaluates four
//! strategies — KMeans with Euclidean distance and spectral clustering with
//! Manhattan, Minkowski (p = 4) and Hamming distances — plus hierarchical
//! clustering as the monotonic alternative (§6.1.1).
//!
//! All algorithms operate on **distinct** query vectors weighted by
//! multiplicity, which yields the same partitions as clustering the raw log
//! while keeping costs proportional to the distinct count.
//!
//! * [`distance`] — the §6.1 distance measures on binary vectors;
//! * [`kmeans`] — weighted Lloyd iteration with k-means++ seeding (dense and
//!   sparse-binary front ends);
//! * [`spectral`] — Ng–Jordan–Weiss spectral clustering over an RBF affinity
//!   of any distance, eigenvectors via Lanczos;
//! * [`hierarchical`] — agglomerative average-linkage clustering (nearest-
//!   neighbor-chain), with monotonic dendrogram cuts;
//! * [`assign`] — the shared [`Clustering`] result type;
//! * [`method`] — the [`method::ClusterMethod`] façade used by the
//!   compressor and the reproduction harness.

pub mod assign;
pub mod distance;
pub mod hierarchical;
pub mod kmeans;
pub mod method;
pub mod spectral;

pub use assign::Clustering;
pub use distance::{distance_matrix, Distance};
pub use hierarchical::{hierarchical_cluster, Dendrogram};
pub use kmeans::{kmeans_binary, kmeans_dense, KMeansConfig};
pub use method::{cluster_log, ClusterMethod};
pub use spectral::{spectral_cluster, SpectralConfig};
