//! Distance measures on binary query vectors (paper §6.1).
//!
//! On binary vectors every lᵖ distance is a function of the symmetric-
//! difference cardinality `d = |x ⊕ y|`: Manhattan is `d`, Euclidean is
//! `√d`, Minkowski-p is `d^(1/p)`. The paper's Hamming distance is the
//! *normalized* mismatch rate `Count(x≠y) / (Count(x≠y) + Count(x=y))
//! = d / n`. Chebyshev and Canberra (evaluated and dropped by the paper's
//! footnote 1) are included for completeness: on binary data Chebyshev is
//! the 0/1 indicator of inequality and Canberra coincides with Manhattan.

use logr_feature::QueryVector;
use logr_math::Matrix;
use std::borrow::Cow;

/// A distance measure over binary feature vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distance {
    /// l₂: `√d`.
    Euclidean,
    /// l₁: `d`.
    Manhattan,
    /// lᵖ: `d^(1/p)`. The paper uses `p = 4`.
    Minkowski(f64),
    /// Normalized mismatch rate `d / n` (needs the universe size).
    Hamming,
    /// l∞ on binary data: 1 if the vectors differ at all, else 0.
    Chebyshev,
    /// Canberra; coincides with Manhattan on binary data.
    Canberra,
}

impl Distance {
    /// Distance as a function of the symmetric-difference cardinality `d`
    /// in a universe of `n` features.
    ///
    /// This is the shared kernel of both representations: the sparse path
    /// obtains `d` from an id merge, the dense [`crate::PointSet`] path
    /// from an xor-popcount — the float math is identical, so the two are
    /// bit-for-bit equivalent.
    #[inline]
    pub fn of_mismatches(self, d: usize, n: usize) -> f64 {
        let d = d as f64;
        match self {
            Distance::Euclidean => d.sqrt(),
            Distance::Manhattan | Distance::Canberra => d,
            Distance::Minkowski(p) => {
                debug_assert!(p >= 1.0, "Minkowski order must be ≥ 1");
                d.powf(1.0 / p)
            }
            Distance::Hamming => {
                if n == 0 {
                    0.0
                } else {
                    d / n as f64
                }
            }
            Distance::Chebyshev => {
                if d > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Distance between two binary vectors in a universe of `n` features.
    pub fn between(self, a: &QueryVector, b: &QueryVector, n: usize) -> f64 {
        self.of_mismatches(a.symmetric_difference_size(b), n)
    }

    /// Canonical label used in harness output. Borrowed for the five
    /// non-parameterized metrics; only `Minkowski(p)` allocates.
    pub fn label(self) -> Cow<'static, str> {
        match self {
            Distance::Euclidean => Cow::Borrowed("euclidean"),
            Distance::Manhattan => Cow::Borrowed("manhattan"),
            Distance::Minkowski(p) => Cow::Owned(format!("minkowski{p}")),
            Distance::Hamming => Cow::Borrowed("hamming"),
            Distance::Chebyshev => Cow::Borrowed("chebyshev"),
            Distance::Canberra => Cow::Borrowed("canberra"),
        }
    }
}

/// Full pairwise distance matrix over a set of vectors — the **sparse
/// reference implementation**.
///
/// Every cell is computed with the `O(|x| + |y|)` sorted-id merge. This is
/// the baseline the dense engine is property-tested and benchmarked
/// against; hot paths should use [`crate::PointSet::distances`], which
/// produces the same values from xor-popcounts in a condensed layout,
/// in parallel, at a fraction of the cost.
pub fn distance_matrix(vectors: &[&QueryVector], metric: Distance, n_features: usize) -> Matrix {
    let n = vectors.len();
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = metric.between(vectors[i], vectors[j], n_features);
            m[(i, j)] = d;
            m[(j, i)] = d;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_feature::FeatureId;

    fn qv(ids: &[u32]) -> QueryVector {
        QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
    }

    #[test]
    fn euclidean_is_sqrt_of_mismatches() {
        let a = qv(&[0, 1, 2]);
        let b = qv(&[2, 3]); // symmetric difference {0,1,3}, d = 3
        assert!((Distance::Euclidean.between(&a, &b, 10) - 3.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn manhattan_counts_mismatches() {
        let a = qv(&[0, 1]);
        let b = qv(&[1, 2]);
        assert_eq!(Distance::Manhattan.between(&a, &b, 10), 2.0);
        assert_eq!(Distance::Canberra.between(&a, &b, 10), 2.0);
    }

    #[test]
    fn minkowski_generalizes() {
        let a = qv(&[0, 1, 2, 3]);
        let b = qv(&[]);
        // d = 4: l1 = 4, l2 = 2, l4 = 4^(1/4) = √2.
        assert_eq!(Distance::Minkowski(1.0).between(&a, &b, 8), 4.0);
        assert!((Distance::Minkowski(2.0).between(&a, &b, 8) - 2.0).abs() < 1e-12);
        assert!((Distance::Minkowski(4.0).between(&a, &b, 8) - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn hamming_is_normalized() {
        let a = qv(&[0, 1]);
        let b = qv(&[2, 3]);
        // d = 4 mismatches over n = 8 positions.
        assert!((Distance::Hamming.between(&a, &b, 8) - 0.5).abs() < 1e-12);
        assert_eq!(Distance::Hamming.between(&a, &a, 8), 0.0);
        assert_eq!(Distance::Hamming.between(&a, &b, 0), 0.0);
    }

    #[test]
    fn chebyshev_is_indicator() {
        let a = qv(&[0]);
        let b = qv(&[1]);
        assert_eq!(Distance::Chebyshev.between(&a, &b, 4), 1.0);
        assert_eq!(Distance::Chebyshev.between(&a, &a, 4), 0.0);
    }

    #[test]
    fn identity_and_symmetry_all_metrics() {
        let a = qv(&[0, 2, 5]);
        let b = qv(&[1, 2]);
        for m in [
            Distance::Euclidean,
            Distance::Manhattan,
            Distance::Minkowski(4.0),
            Distance::Hamming,
            Distance::Chebyshev,
            Distance::Canberra,
        ] {
            assert_eq!(m.between(&a, &a, 8), 0.0, "{:?} identity", m);
            assert_eq!(m.between(&a, &b, 8), m.between(&b, &a, 8), "{:?} symmetry", m);
            assert!(m.between(&a, &b, 8) > 0.0, "{:?} positivity", m);
        }
    }

    #[test]
    fn triangle_inequality_spot_check() {
        let a = qv(&[0, 1]);
        let b = qv(&[1, 2]);
        let c = qv(&[2, 3]);
        for m in [Distance::Euclidean, Distance::Manhattan, Distance::Hamming] {
            let ab = m.between(&a, &b, 8);
            let bc = m.between(&b, &c, 8);
            let ac = m.between(&a, &c, 8);
            assert!(ac <= ab + bc + 1e-12, "{:?} triangle", m);
        }
    }

    #[test]
    fn distance_matrix_is_symmetric_with_zero_diagonal() {
        let vs = [qv(&[0]), qv(&[0, 1]), qv(&[2])];
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let m = distance_matrix(&refs, Distance::Manhattan, 4);
        for i in 0..3 {
            assert_eq!(m[(i, i)], 0.0);
            for j in 0..3 {
                assert_eq!(m[(i, j)], m[(j, i)]);
            }
        }
        assert_eq!(m[(0, 1)], 1.0);
        assert_eq!(m[(0, 2)], 2.0);
    }
}
