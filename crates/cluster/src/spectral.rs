//! Spectral clustering (Ng–Jordan–Weiss) over a pluggable distance.
//!
//! The paper runs sklearn's `SpectralClustering` with precomputed Manhattan,
//! Minkowski-4 and Hamming distances (§6.1). This implementation follows the
//! same recipe:
//!
//! 1. pairwise distances on distinct query vectors, from the dense
//!    popcount engine ([`PointSet::distances`], condensed layout, parallel);
//! 2. RBF affinity `A = exp(−d² / 2σ²)` with a self-tuning `σ` (median of
//!    positive distances) unless one is supplied — rows built in parallel;
//! 3. normalized affinity `M = D^{-1/2} A D^{-1/2}` (whose top eigenvectors
//!    are the bottom eigenvectors of the normalized Laplacian);
//! 4. top-k eigenvectors via Lanczos;
//! 5. row-normalize the embedding and run weighted k-means on it.

use crate::assign::Clustering;
use crate::distance::Distance;
use crate::kmeans::{kmeans_dense, KMeansConfig};
use crate::par;
use crate::pointset::{CondensedMatrix, PointSet};
use logr_feature::QueryVector;
use logr_math::{lanczos_topk, Matrix};

/// Spectral clustering configuration.
#[derive(Debug, Clone, Copy)]
pub struct SpectralConfig {
    /// Number of clusters.
    pub k: usize,
    /// Distance measure feeding the affinity.
    pub metric: Distance,
    /// RBF bandwidth; `None` = median heuristic.
    pub sigma: Option<f64>,
    /// RNG seed (Lanczos start vector and k-means init).
    pub seed: u64,
}

impl SpectralConfig {
    /// Config with the median-σ heuristic.
    pub fn new(k: usize, metric: Distance, seed: u64) -> Self {
        SpectralConfig { k, metric, sigma: None, seed }
    }
}

/// Cluster sparse binary vectors spectrally. `weights` are multiplicities.
///
/// Convenience wrapper: batch-converts the points into a [`PointSet`] and
/// delegates to [`spectral_cluster_pointset`].
///
/// # Panics
/// Panics if `points` is empty or `k == 0`.
pub fn spectral_cluster(
    points: &[&QueryVector],
    weights: &[f64],
    n_features: usize,
    config: SpectralConfig,
) -> Clustering {
    spectral_cluster_pointset(&PointSet::from_vectors(points, n_features), weights, config)
}

/// Cluster a pre-converted [`PointSet`] spectrally. `weights` are
/// multiplicities.
///
/// # Panics
/// Panics if `points` is empty or `k == 0`.
pub fn spectral_cluster_pointset(
    points: &PointSet,
    weights: &[f64],
    config: SpectralConfig,
) -> Clustering {
    assert!(!points.is_empty(), "spectral clustering over empty point set");
    assert_eq!(points.len(), weights.len(), "weights length mismatch");
    spectral_cluster_condensed(&points.distances(config.metric), weights, config)
}

/// Cluster spectrally from a precomputed condensed distance matrix (the
/// sharded/streaming path: a [`crate::CondensedShards`] view materializes
/// its merged matrix once and the affinity is built from it directly).
/// `config.metric` is informational here — the distances are already baked
/// into the matrix.
///
/// # Panics
/// Panics if the matrix is empty, its size mismatches `weights`, or
/// `k == 0`.
pub fn spectral_cluster_condensed(
    dist: &CondensedMatrix,
    weights: &[f64],
    config: SpectralConfig,
) -> Clustering {
    let n = dist.n();
    assert!(n > 0, "spectral clustering over empty distance matrix");
    assert_eq!(n, weights.len(), "weights length mismatch");
    assert!(config.k > 0, "k must be positive");
    let k = config.k.min(n);
    if k == 1 {
        return Clustering::trivial(n);
    }

    let sigma = config.sigma.unwrap_or_else(|| median_positive(dist)).max(1e-9);

    // RBF affinity with zero diagonal (NJW); rows filled in parallel from
    // the shared condensed distances.
    let mut affinity = Matrix::zeros(n, n);
    {
        let inv_two_sigma_sq = 1.0 / (2.0 * sigma * sigma);
        let dist_ref = dist;
        let rows: Vec<(usize, &mut [f64])> =
            affinity.as_mut_slice().chunks_mut(n).enumerate().collect();
        let n_threads = if n < par::PARALLEL_MIN_POINTS { 1 } else { par::threads() };
        par::run_tasks(rows, n_threads, |(i, row)| {
            for (j, cell) in row.iter_mut().enumerate() {
                if i != j {
                    let d = dist_ref.get(i, j);
                    *cell = (-d * d * inv_two_sigma_sq).exp();
                }
            }
        });
    }

    // Normalized affinity M = D^{-1/2} A D^{-1/2}.
    let mut inv_sqrt_deg = vec![0.0; n];
    for (i, slot) in inv_sqrt_deg.iter_mut().enumerate() {
        let deg: f64 = affinity.row(i).iter().sum();
        *slot = 1.0 / deg.max(1e-12).sqrt();
    }
    let mut m = affinity;
    for i in 0..n {
        let scale_i = inv_sqrt_deg[i];
        for (j, cell) in m.row_mut(i).iter_mut().enumerate() {
            *cell *= scale_i * inv_sqrt_deg[j];
        }
    }

    let pairs = lanczos_topk(&m, k, config.seed);

    // Embedding rows = top-k eigenvector components, row-normalized.
    let mut embedding = vec![vec![0.0; pairs.len()]; n];
    for (c, pair) in pairs.iter().enumerate() {
        for (row, &v) in embedding.iter_mut().zip(&pair.vector) {
            row[c] = v;
        }
    }
    for row in &mut embedding {
        let norm: f64 = row.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 1e-12 {
            for v in row.iter_mut() {
                *v /= norm;
            }
        }
    }

    let (clustering, _) = kmeans_dense(&embedding, weights, KMeansConfig::new(k, config.seed));
    clustering
}

/// Median of the strictly positive pairwise distances (each unordered pair
/// counted once — exactly the condensed entries).
fn median_positive(dist: &CondensedMatrix) -> f64 {
    let mut vals: Vec<f64> = dist.as_slice().iter().copied().filter(|&d| d > 0.0).collect();
    if vals.is_empty() {
        return 1.0;
    }
    vals.sort_by(f64::total_cmp);
    vals[vals.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_feature::FeatureId;

    fn qv(ids: &[u32]) -> QueryVector {
        QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
    }

    fn two_workloads() -> Vec<QueryVector> {
        // Disjoint feature supports: the anti-correlation structure that
        // motivates mixtures in paper §5.
        vec![
            qv(&[0, 1, 2]),
            qv(&[0, 1]),
            qv(&[1, 2]),
            qv(&[0, 2]),
            qv(&[10, 11, 12]),
            qv(&[10, 11]),
            qv(&[11, 12]),
            qv(&[10, 12]),
        ]
    }

    #[test]
    fn separates_disjoint_workloads_all_metrics() {
        let vs = two_workloads();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let weights = vec![1.0; refs.len()];
        for metric in [Distance::Manhattan, Distance::Minkowski(4.0), Distance::Hamming] {
            let c = spectral_cluster(&refs, &weights, 16, SpectralConfig::new(2, metric, 11));
            let first = c.assignments[0];
            assert!(
                c.assignments[..4].iter().all(|&a| a == first),
                "{metric:?}: first workload split: {:?}",
                c.assignments
            );
            let second = c.assignments[4];
            assert!(
                c.assignments[4..].iter().all(|&a| a == second),
                "{metric:?}: second workload split: {:?}",
                c.assignments
            );
            assert_ne!(first, second, "{metric:?}: workloads merged");
        }
    }

    #[test]
    fn pointset_front_end_matches_sparse_front_end() {
        let vs = two_workloads();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let weights = vec![1.0; refs.len()];
        let ps = PointSet::from_vectors(&refs, 16);
        let cfg = SpectralConfig::new(2, Distance::Hamming, 3);
        assert_eq!(
            spectral_cluster(&refs, &weights, 16, cfg),
            spectral_cluster_pointset(&ps, &weights, cfg)
        );
    }

    #[test]
    fn condensed_entry_point_matches_pointset_path() {
        let vs = two_workloads();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let weights = vec![1.0; refs.len()];
        let ps = PointSet::from_vectors(&refs, 16);
        let cfg = SpectralConfig::new(2, Distance::Hamming, 7);
        let dist = ps.distances(Distance::Hamming);
        assert_eq!(
            spectral_cluster_pointset(&ps, &weights, cfg),
            spectral_cluster_condensed(&dist, &weights, cfg)
        );
    }

    #[test]
    fn k1_is_trivial() {
        let vs = two_workloads();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let weights = vec![1.0; refs.len()];
        let c = spectral_cluster(&refs, &weights, 16, SpectralConfig::new(1, Distance::Hamming, 0));
        assert_eq!(c.k, 1);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let vs = two_workloads();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let weights = vec![1.0; refs.len()];
        let cfg = SpectralConfig::new(2, Distance::Hamming, 99);
        let a = spectral_cluster(&refs, &weights, 16, cfg);
        let b = spectral_cluster(&refs, &weights, 16, cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_sigma_accepted() {
        let vs = two_workloads();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let weights = vec![1.0; refs.len()];
        let cfg = SpectralConfig { k: 2, metric: Distance::Manhattan, sigma: Some(2.0), seed: 5 };
        let c = spectral_cluster(&refs, &weights, 16, cfg);
        assert_eq!(c.len(), refs.len());
        assert!(c.non_empty() >= 1);
    }

    #[test]
    fn handles_duplicate_points() {
        let vs = [qv(&[0]), qv(&[0]), qv(&[0]), qv(&[5]), qv(&[5])];
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let weights = vec![1.0; refs.len()];
        let c = spectral_cluster(&refs, &weights, 8, SpectralConfig::new(2, Distance::Hamming, 1));
        assert_eq!(c.assignments[0], c.assignments[1]);
        assert_eq!(c.assignments[3], c.assignments[4]);
    }
}
