//! Spectral clustering (Ng–Jordan–Weiss) over a pluggable distance.
//!
//! The paper runs sklearn's `SpectralClustering` with precomputed Manhattan,
//! Minkowski-4 and Hamming distances (§6.1). This implementation follows the
//! same recipe:
//!
//! 1. pairwise distance matrix on distinct query vectors;
//! 2. RBF affinity `A = exp(−d² / 2σ²)` with a self-tuning `σ` (median of
//!    positive distances) unless one is supplied;
//! 3. normalized affinity `M = D^{-1/2} A D^{-1/2}` (whose top eigenvectors
//!    are the bottom eigenvectors of the normalized Laplacian);
//! 4. top-k eigenvectors via Lanczos;
//! 5. row-normalize the embedding and run weighted k-means on it.

use crate::assign::Clustering;
use crate::distance::{distance_matrix, Distance};
use crate::kmeans::{kmeans_dense, KMeansConfig};
use logr_feature::QueryVector;
use logr_math::{lanczos_topk, Matrix};

/// Spectral clustering configuration.
#[derive(Debug, Clone, Copy)]
pub struct SpectralConfig {
    /// Number of clusters.
    pub k: usize,
    /// Distance measure feeding the affinity.
    pub metric: Distance,
    /// RBF bandwidth; `None` = median heuristic.
    pub sigma: Option<f64>,
    /// RNG seed (Lanczos start vector and k-means init).
    pub seed: u64,
}

impl SpectralConfig {
    /// Config with the median-σ heuristic.
    pub fn new(k: usize, metric: Distance, seed: u64) -> Self {
        SpectralConfig { k, metric, sigma: None, seed }
    }
}

/// Cluster sparse binary vectors spectrally. `weights` are multiplicities.
///
/// # Panics
/// Panics if `points` is empty or `k == 0`.
pub fn spectral_cluster(
    points: &[&QueryVector],
    weights: &[f64],
    n_features: usize,
    config: SpectralConfig,
) -> Clustering {
    assert!(!points.is_empty(), "spectral clustering over empty point set");
    assert_eq!(points.len(), weights.len(), "weights length mismatch");
    assert!(config.k > 0, "k must be positive");
    let n = points.len();
    let k = config.k.min(n);
    if k == 1 {
        return Clustering::trivial(n);
    }

    let dist = distance_matrix(points, config.metric, n_features);
    let sigma = config.sigma.unwrap_or_else(|| median_positive(&dist)).max(1e-9);

    // RBF affinity with zero diagonal (NJW).
    let mut affinity = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let d = dist[(i, j)];
                affinity[(i, j)] = (-d * d / (2.0 * sigma * sigma)).exp();
            }
        }
    }

    // Normalized affinity M = D^{-1/2} A D^{-1/2}.
    let mut inv_sqrt_deg = vec![0.0; n];
    for i in 0..n {
        let deg: f64 = affinity.row(i).iter().sum();
        inv_sqrt_deg[i] = 1.0 / deg.max(1e-12).sqrt();
    }
    let mut m = affinity;
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] *= inv_sqrt_deg[i] * inv_sqrt_deg[j];
        }
    }

    let pairs = lanczos_topk(&m, k, config.seed);

    // Embedding rows = top-k eigenvector components, row-normalized.
    let mut embedding = vec![vec![0.0; pairs.len()]; n];
    for (c, pair) in pairs.iter().enumerate() {
        for (row, &v) in embedding.iter_mut().zip(&pair.vector) {
            row[c] = v;
        }
    }
    for row in &mut embedding {
        let norm: f64 = row.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 1e-12 {
            for v in row.iter_mut() {
                *v /= norm;
            }
        }
    }

    let (clustering, _) = kmeans_dense(&embedding, weights, KMeansConfig::new(k, config.seed));
    clustering
}

/// Median of strictly positive entries of a symmetric matrix.
fn median_positive(m: &Matrix) -> f64 {
    let mut vals: Vec<f64> = Vec::with_capacity(m.rows() * (m.rows() - 1) / 2);
    for i in 0..m.rows() {
        for j in (i + 1)..m.cols() {
            if m[(i, j)] > 0.0 {
                vals.push(m[(i, j)]);
            }
        }
    }
    if vals.is_empty() {
        return 1.0;
    }
    vals.sort_by(f64::total_cmp);
    vals[vals.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr_feature::FeatureId;

    fn qv(ids: &[u32]) -> QueryVector {
        QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect())
    }

    fn two_workloads() -> Vec<QueryVector> {
        // Disjoint feature supports: the anti-correlation structure that
        // motivates mixtures in paper §5.
        vec![
            qv(&[0, 1, 2]),
            qv(&[0, 1]),
            qv(&[1, 2]),
            qv(&[0, 2]),
            qv(&[10, 11, 12]),
            qv(&[10, 11]),
            qv(&[11, 12]),
            qv(&[10, 12]),
        ]
    }

    #[test]
    fn separates_disjoint_workloads_all_metrics() {
        let vs = two_workloads();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let weights = vec![1.0; refs.len()];
        for metric in [Distance::Manhattan, Distance::Minkowski(4.0), Distance::Hamming] {
            let c = spectral_cluster(&refs, &weights, 16, SpectralConfig::new(2, metric, 11));
            let first = c.assignments[0];
            assert!(
                c.assignments[..4].iter().all(|&a| a == first),
                "{metric:?}: first workload split: {:?}",
                c.assignments
            );
            let second = c.assignments[4];
            assert!(
                c.assignments[4..].iter().all(|&a| a == second),
                "{metric:?}: second workload split: {:?}",
                c.assignments
            );
            assert_ne!(first, second, "{metric:?}: workloads merged");
        }
    }

    #[test]
    fn k1_is_trivial() {
        let vs = two_workloads();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let weights = vec![1.0; refs.len()];
        let c = spectral_cluster(&refs, &weights, 16, SpectralConfig::new(1, Distance::Hamming, 0));
        assert_eq!(c.k, 1);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let vs = two_workloads();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let weights = vec![1.0; refs.len()];
        let cfg = SpectralConfig::new(2, Distance::Hamming, 99);
        let a = spectral_cluster(&refs, &weights, 16, cfg);
        let b = spectral_cluster(&refs, &weights, 16, cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_sigma_accepted() {
        let vs = two_workloads();
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let weights = vec![1.0; refs.len()];
        let cfg = SpectralConfig { k: 2, metric: Distance::Manhattan, sigma: Some(2.0), seed: 5 };
        let c = spectral_cluster(&refs, &weights, 16, cfg);
        assert_eq!(c.len(), refs.len());
        assert!(c.non_empty() >= 1);
    }

    #[test]
    fn handles_duplicate_points() {
        let vs = [qv(&[0]), qv(&[0]), qv(&[0]), qv(&[5]), qv(&[5])];
        let refs: Vec<&QueryVector> = vs.iter().collect();
        let weights = vec![1.0; refs.len()];
        let c = spectral_cluster(&refs, &weights, 8, SpectralConfig::new(2, Distance::Hamming, 1));
        assert_eq!(c.assignments[0], c.assignments[1]);
        assert_eq!(c.assignments[3], c.assignments[4]);
    }
}
