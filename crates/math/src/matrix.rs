//! A minimal dense, row-major `f64` matrix.
//!
//! Sized for the reproduction workloads: spectral clustering operates on the
//! affinity matrix of *distinct* queries (≈600–1700 rows), so an `O(n²)`
//! dense representation is the right tool. No SIMD, no blocking — clarity
//! first, and the eigensolvers in [`crate::eigen`] dominate runtime anyway.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a slice of rows. All rows must have equal length.
    ///
    /// # Panics
    /// Panics if rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Build a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer (rows are
    /// contiguous `cols`-length chunks; parallel fills split on them).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = self.row(i);
            *yi = dot(row, x);
        }
        y
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// # Panics
    /// Panics if `self.cols() != b.rows()`.
    pub fn matmul(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.cols, b.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, b.cols);
        // ikj loop order: stream through B's rows for cache friendliness.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let brow = b.row(k);
                let orow = out.row_mut(i);
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += aik * bv;
                }
            }
        }
        out
    }

    /// `Aᵀ·A` without materializing the transpose.
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.rows {
            let row = self.row(i);
            for a in 0..self.cols {
                let ra = row[a];
                if ra == 0.0 {
                    continue;
                }
                for b in a..self.cols {
                    g[(a, b)] += ra * row[b];
                }
            }
        }
        for a in 0..self.cols {
            for b in 0..a {
                g[(a, b)] = g[(b, a)];
            }
        }
        g
    }

    /// `A·Aᵀ` without materializing the transpose.
    pub fn outer_gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.rows, self.rows);
        for a in 0..self.rows {
            for b in a..self.rows {
                let v = dot(self.row(a), self.row(b));
                g[(a, b)] = v;
                g[(b, a)] = v;
            }
        }
        g
    }

    /// Maximum absolute asymmetry `max |A - Aᵀ|`; 0 for symmetric matrices.
    pub fn asymmetry(&self) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols.min(self.rows) {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// Dot product of equal-length slices.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Scale a vector in place.
#[inline]
pub fn scale(a: &mut [f64], s: f64) {
    for v in a {
        *v *= s;
    }
}

/// `a ← a + s·b`.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn axpy(a: &mut [f64], s: f64, b: &[f64]) {
    assert_eq!(a.len(), b.len(), "axpy length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += s * y;
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:9.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}]", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_rows_round_trip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
        assert_eq!(m.matvec(&[2.0, -1.0]), vec![0.0, 2.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.matmul(&Matrix::identity(2)), m);
        assert_eq!(Matrix::identity(2).matmul(&m), m);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn gram_equals_explicit_transpose_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 0.5], vec![3.0, -4.0, 1.0]]);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a);
        for i in 0..3 {
            for j in 0..3 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn outer_gram_equals_explicit_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 0.5], vec![3.0, -4.0, 1.0]]);
        let g = a.outer_gram();
        let explicit = a.matmul(&a.transpose());
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        let mut v = vec![1.0, 2.0];
        scale(&mut v, 2.0);
        assert_eq!(v, vec![2.0, 4.0]);
        axpy(&mut v, 0.5, &[2.0, 2.0]);
        assert_eq!(v, vec![3.0, 5.0]);
    }

    #[test]
    fn asymmetry_detects_nonsymmetric() {
        let sym = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 5.0]]);
        assert_eq!(sym.asymmetry(), 0.0);
        let asym = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 5.0]]);
        assert!(asym.asymmetry() > 0.9);
    }
}
