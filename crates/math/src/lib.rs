//! Numeric substrate for LogR.
//!
//! The LogR paper leans on three pieces of numeric machinery that are not part
//! of the Rust standard library:
//!
//! * **dense linear algebra** — spectral clustering needs an affinity matrix,
//!   a normalized graph Laplacian, and its leading eigenvectors
//!   ([`matrix`], [`eigen`], [`solve`]);
//! * **affine projections** — sampling the space of distributions admitted by
//!   an encoding (Appendix C of the paper) projects randomly drawn
//!   distributions onto the constraint hyperplane `{x | Ax = b}`
//!   ([`projection`]);
//! * **information-theoretic measures** — entropies, KL divergence, and
//!   binary entropies show up in every fidelity measure the paper defines
//!   ([`stats`]).
//!
//! Everything here is deliberately dependency-free and single-threaded so the
//! runtime comparisons in the reproduction harness measure algorithms, not
//! BLAS backends.

pub mod eigen;
pub mod matrix;
pub mod projection;
pub mod solve;
pub mod stats;

pub use eigen::{jacobi_eigen, lanczos_topk, EigenPair};
pub use matrix::Matrix;
pub use projection::{project_onto_affine, project_onto_simplex_clip, sample_constrained};
pub use solve::{cholesky_solve, invert_spd, lu_solve};
pub use stats::{binary_entropy, entropy, kl_divergence, xlogx};
