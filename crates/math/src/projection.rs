//! Projections used by the Ω_E distribution sampler (paper Appendix C.2).
//!
//! A randomly drawn distribution over pattern-equivalence classes almost
//! never satisfies the marginal constraints `A·x = b` derived from an
//! encoding, so the paper projects each sample onto the constraint
//! hyperplane. We implement the Euclidean projection onto the affine subspace
//! in closed form (`x − Aᵀ(AAᵀ)⁻¹(Ax − b)`), then handle the simplex
//! constraints (`x ≥ 0`, `Σx = 1`) by clipping and renormalizing, alternating
//! the two a few times. Whenever the clip is inactive this *is* the paper's
//! minimum-distance projection; when it is active, alternating projections
//! converge to a feasible nearby point, which is all the sampler needs.

use crate::matrix::Matrix;
use crate::solve::{cholesky_solve, SolveError};

/// Euclidean projection of `x` onto the affine subspace `{y | A·y = b}`.
///
/// Rows of `A` must be linearly independent (they are in LogR's usage: one
/// row per pattern plus the normalization row). Returns an error if `A·Aᵀ`
/// is singular.
pub fn project_onto_affine(a: &Matrix, b: &[f64], x: &[f64]) -> Result<Vec<f64>, SolveError> {
    if a.cols() != x.len() || a.rows() != b.len() {
        return Err(SolveError::DimensionMismatch);
    }
    // Residual r = A·x − b.
    let ax = a.matvec(x);
    let r: Vec<f64> = ax.iter().zip(b).map(|(axi, bi)| axi - bi).collect();
    // Solve (A·Aᵀ)·λ = r, with a tiny ridge for near-duplicate rows.
    let mut gram = a.outer_gram();
    for i in 0..gram.rows() {
        gram[(i, i)] += 1e-12;
    }
    let lambda = cholesky_solve(&gram, &r)?;
    // y = x − Aᵀ·λ.
    let mut y = x.to_vec();
    for (i, li) in lambda.iter().enumerate() {
        let row = a.row(i);
        for (yj, &aij) in y.iter_mut().zip(row) {
            *yj -= li * aij;
        }
    }
    Ok(y)
}

/// Clip negative entries to zero and renormalize to sum 1.
///
/// Returns `false` (leaving `x` unspecified but finite) when everything
/// clipped to zero.
pub fn project_onto_simplex_clip(x: &mut [f64]) -> bool {
    let mut total = 0.0;
    for v in x.iter_mut() {
        if *v < 0.0 || !v.is_finite() {
            *v = 0.0;
        }
        total += *v;
    }
    if total <= 0.0 {
        return false;
    }
    for v in x.iter_mut() {
        *v /= total;
    }
    true
}

/// Alternate between the affine projection and the simplex clip until the
/// constraint residual is below `tol` (or `max_iters` passes).
///
/// Returns the feasible(-ish) point and the final max-abs residual on
/// `A·x = b`. The normalization constraint should be included as a row of
/// `A` (all-ones row, `b` entry 1) so the affine step respects it too.
pub fn sample_constrained(
    a: &Matrix,
    b: &[f64],
    start: &[f64],
    max_iters: usize,
    tol: f64,
) -> Result<(Vec<f64>, f64), SolveError> {
    let mut x = start.to_vec();
    let mut residual = f64::INFINITY;
    for _ in 0..max_iters {
        x = project_onto_affine(a, b, &x)?;
        let had_mass = project_onto_simplex_clip(&mut x);
        if !had_mass {
            // Restart from the feasibility-friendly uniform point.
            x = vec![1.0 / x.len() as f64; x.len()];
        }
        residual = max_residual(a, b, &x);
        if residual < tol {
            break;
        }
    }
    Ok((x, residual))
}

fn max_residual(a: &Matrix, b: &[f64], x: &[f64]) -> f64 {
    a.matvec(x).iter().zip(b).map(|(axi, bi)| (axi - bi).abs()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_projection_satisfies_constraints() {
        // One constraint: x0 + x1 = 1 over R^3.
        let a = Matrix::from_rows(&[vec![1.0, 1.0, 0.0]]);
        let b = [1.0];
        let y = project_onto_affine(&a, &b, &[0.0, 0.0, 0.5]).unwrap();
        assert!((y[0] + y[1] - 1.0).abs() < 1e-9);
        // Unconstrained coordinate untouched.
        assert!((y[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn affine_projection_is_identity_on_feasible_points() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0, 1.0], vec![1.0, 0.0, 0.0]]);
        let b = [1.0, 0.25];
        let x = [0.25, 0.5, 0.25];
        let y = project_onto_affine(&a, &b, &x).unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            assert!((xi - yi).abs() < 1e-9);
        }
    }

    #[test]
    fn affine_projection_minimizes_distance() {
        // Project (1, 0) onto {x0 + x1 = 1}: closest point is (1, 0) itself
        // (already feasible); project (0,0): closest is (0.5, 0.5).
        let a = Matrix::from_rows(&[vec![1.0, 1.0]]);
        let y = project_onto_affine(&a, &[1.0], &[0.0, 0.0]).unwrap();
        assert!((y[0] - 0.5).abs() < 1e-9);
        assert!((y[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn simplex_clip_normalizes() {
        let mut x = vec![0.5, -0.25, 0.5, 1.0];
        assert!(project_onto_simplex_clip(&mut x));
        assert!((x.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(x.iter().all(|&v| v >= 0.0));
        assert_eq!(x[1], 0.0);
    }

    #[test]
    fn simplex_clip_reports_empty() {
        let mut x = vec![-1.0, -2.0];
        assert!(!project_onto_simplex_clip(&mut x));
    }

    #[test]
    fn alternating_projection_reaches_feasibility() {
        // Constraints: sum = 1, x0 + x1 = 0.6. Start far away.
        let a = Matrix::from_rows(&[vec![1.0, 1.0, 1.0, 1.0], vec![1.0, 1.0, 0.0, 0.0]]);
        let b = [1.0, 0.6];
        let start = [0.9, 0.05, 0.02, 0.03];
        let (x, residual) = sample_constrained(&a, &b, &start, 50, 1e-9).unwrap();
        assert!(residual < 1e-6, "residual {residual}");
        assert!(x.iter().all(|&v| v >= -1e-12));
        assert!((x.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!((x[0] + x[1] - 0.6).abs() < 1e-6);
    }
}
