//! Direct linear solvers for the small systems LogR needs.
//!
//! The Ω_E sampler (Appendix C) projects onto `{x | Ax = b}` with
//! `AᵀA`-style normal equations where `A` has one row per encoding pattern —
//! a handful of rows — so unpivoted Cholesky and partially-pivoted LU on
//! dense matrices are more than enough.

use crate::matrix::Matrix;

/// Error from a direct solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The matrix was not (numerically) positive definite.
    NotPositiveDefinite,
    /// The matrix was (numerically) singular.
    Singular,
    /// Dimension mismatch between the matrix and right-hand side.
    DimensionMismatch,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            SolveError::Singular => write!(f, "matrix is singular"),
            SolveError::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Solve `A·x = b` for symmetric positive-definite `A` via Cholesky.
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, SolveError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(SolveError::DimensionMismatch);
    }
    let l = cholesky_factor(a)?;
    // Forward substitution L·y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for j in 0..i {
            s -= l[(i, j)] * y[j];
        }
        y[i] = s / l[(i, i)];
    }
    // Back substitution Lᵀ·x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for j in (i + 1)..n {
            s -= l[(j, i)] * x[j];
        }
        x[i] = s / l[(i, i)];
    }
    Ok(x)
}

/// Lower-triangular Cholesky factor `L` with `L·Lᵀ = A`.
pub fn cholesky_factor(a: &Matrix) -> Result<Matrix, SolveError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(SolveError::DimensionMismatch);
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if s <= 0.0 || !s.is_finite() {
                    return Err(SolveError::NotPositiveDefinite);
                }
                l[(i, j)] = s.sqrt();
            } else {
                l[(i, j)] = s / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Invert a symmetric positive-definite matrix (used for tiny `A·Aᵀ` blocks).
pub fn invert_spd(a: &Matrix) -> Result<Matrix, SolveError> {
    let n = a.rows();
    let mut inv = Matrix::zeros(n, n);
    let mut e = vec![0.0; n];
    for j in 0..n {
        e.iter_mut().for_each(|v| *v = 0.0);
        e[j] = 1.0;
        let col = cholesky_solve(a, &e)?;
        for i in 0..n {
            inv[(i, j)] = col[i];
        }
    }
    Ok(inv)
}

/// Solve `A·x = b` for general square `A` via LU with partial pivoting.
pub fn lu_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, SolveError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(SolveError::DimensionMismatch);
    }
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();

    for col in 0..n {
        // Partial pivot: largest |value| in this column at or below the diagonal.
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, lu[(r, col)].abs()))
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .expect("non-empty pivot range");
        if pivot_val < 1e-13 {
            return Err(SolveError::Singular);
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = lu[(col, j)];
                lu[(col, j)] = lu[(pivot_row, j)];
                lu[(pivot_row, j)] = tmp;
            }
            perm.swap(col, pivot_row);
        }
        let d = lu[(col, col)];
        for r in (col + 1)..n {
            let f = lu[(r, col)] / d;
            lu[(r, col)] = f;
            for j in (col + 1)..n {
                let v = lu[(col, j)];
                lu[(r, j)] -= f * v;
            }
        }
    }

    // Apply permutation to b, then forward/back substitute.
    let mut y: Vec<f64> = perm.iter().map(|&p| b[p]).collect();
    for i in 1..n {
        for j in 0..i {
            let f = lu[(i, j)];
            y[i] -= f * y[j];
        }
    }
    let mut x = y;
    for i in (0..n).rev() {
        for j in (i + 1)..n {
            let f = lu[(i, j)];
            x[i] -= f * x[j];
        }
        x[i] /= lu[(i, i)];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        a.matvec(x).iter().zip(b).map(|(ax, bv)| (ax - bv).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn cholesky_solves_spd_system() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let b = [6.0, 5.0];
        let x = cholesky_solve(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert_eq!(cholesky_solve(&a, &[1.0, 1.0]), Err(SolveError::NotPositiveDefinite));
    }

    #[test]
    fn cholesky_rejects_dimension_mismatch() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        assert_eq!(cholesky_solve(&a, &[1.0]), Err(SolveError::DimensionMismatch));
    }

    #[test]
    fn cholesky_factor_reconstructs() {
        let a = Matrix::from_rows(&[vec![6.0, 2.0, 1.0], vec![2.0, 5.0, 2.0], vec![1.0, 2.0, 4.0]]);
        let l = cholesky_factor(&a).unwrap();
        let rec = l.matmul(&l.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn invert_spd_gives_inverse() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let inv = invert_spd(&a).unwrap();
        let prod = a.matmul(&inv);
        let id = Matrix::identity(2);
        for i in 0..2 {
            for j in 0..2 {
                assert!((prod[(i, j)] - id[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn lu_solves_general_system() {
        let a =
            Matrix::from_rows(&[vec![0.0, 2.0, 1.0], vec![1.0, -2.0, -3.0], vec![-1.0, 1.0, 2.0]]);
        let b = [1.0, 2.0, 3.0];
        let x = lu_solve(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn lu_rejects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(lu_solve(&a, &[1.0, 2.0]), Err(SolveError::Singular));
    }

    #[test]
    fn lu_handles_permutation_heavy_systems() {
        // Requires pivoting at every step.
        let a = Matrix::from_rows(&[vec![0.0, 0.0, 1.0], vec![0.0, 1.0, 0.0], vec![1.0, 0.0, 0.0]]);
        let b = [3.0, 2.0, 1.0];
        let x = lu_solve(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((x[2] - 3.0).abs() < 1e-12);
    }
}
