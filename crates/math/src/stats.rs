//! Information-theoretic helpers.
//!
//! All entropies in this workspace are measured in **nats** (natural
//! logarithm). The paper never fixes a base; nats keep the closed forms tidy
//! and only rescale the plots.

/// `x·ln(x)` with the standard convention `0·ln(0) = 0`.
#[inline]
pub fn xlogx(x: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        x * x.ln()
    }
}

/// Shannon entropy `H(p) = −Σ pᵢ·ln(pᵢ)` of a probability vector, in nats.
///
/// Entries ≤ 0 contribute zero (the `0·ln 0 = 0` convention); the caller is
/// responsible for `p` summing to 1 if a true entropy is wanted.
pub fn entropy(p: &[f64]) -> f64 {
    -p.iter().map(|&v| xlogx(v)).sum::<f64>()
}

/// Binary entropy `h(p) = −p·ln p − (1−p)·ln(1−p)`, in nats.
///
/// This is the per-feature entropy of a naive encoding (paper §8.1.1):
/// a naive encoding assumes independent Bernoulli features, so its total
/// entropy is the sum of binary entropies of the feature marginals.
#[inline]
pub fn binary_entropy(p: f64) -> f64 {
    -xlogx(p) - xlogx(1.0 - p)
}

/// Kullback–Leibler divergence `DKL(p‖q) = Σ pᵢ·ln(pᵢ/qᵢ)`, in nats.
///
/// Returns `f64::INFINITY` when `p` is not absolutely continuous w.r.t. `q`
/// (some `pᵢ > 0` where `qᵢ = 0`) — exactly the failure mode the paper flags
/// for Deviation (§3.3).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "kl_divergence length mismatch");
    let mut sum = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi <= 0.0 {
            continue;
        }
        if qi <= 0.0 {
            return f64::INFINITY;
        }
        sum += pi * (pi / qi).ln();
    }
    sum
}

/// Weighted arithmetic mean; returns 0 when total weight is 0.
pub fn weighted_mean(values: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(values.len(), weights.len(), "weighted_mean length mismatch");
    let total: f64 = weights.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    values.iter().zip(weights).map(|(v, w)| v * w).sum::<f64>() / total
}

/// Normalize a non-negative vector in place to sum to 1.
///
/// Leaves an all-zero vector untouched and returns `false` in that case.
pub fn normalize(p: &mut [f64]) -> bool {
    let total: f64 = p.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        return false;
    }
    for v in p {
        *v /= total;
    }
    true
}

/// Simple percentile (nearest-rank) of an unsorted sample. `q` in `[0, 1]`.
///
/// # Panics
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty sample");
    assert!((0.0..=1.0).contains(&q), "percentile rank out of range");
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    const LN2: f64 = std::f64::consts::LN_2;

    #[test]
    fn xlogx_conventions() {
        assert_eq!(xlogx(0.0), 0.0);
        assert_eq!(xlogx(-1.0), 0.0);
        assert_eq!(xlogx(1.0), 0.0);
        assert!((xlogx(std::f64::consts::E) - std::f64::consts::E).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_uniform() {
        // H(uniform over 4) = ln 4.
        let p = [0.25; 4];
        assert!((entropy(&p) - (4.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_point_mass_is_zero() {
        assert_eq!(entropy(&[1.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn entropy_maximized_by_uniform() {
        let uniform = entropy(&[0.25; 4]);
        let skewed = entropy(&[0.7, 0.1, 0.1, 0.1]);
        assert!(uniform > skewed);
    }

    #[test]
    fn binary_entropy_symmetric_and_peaked() {
        assert!((binary_entropy(0.5) - LN2).abs() < 1e-12);
        assert!((binary_entropy(0.2) - binary_entropy(0.8)).abs() < 1e-12);
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!(binary_entropy(0.5) > binary_entropy(0.3));
    }

    #[test]
    fn kl_zero_iff_equal() {
        let p = [0.5, 0.3, 0.2];
        assert!(kl_divergence(&p, &p).abs() < 1e-12);
        let q = [0.4, 0.4, 0.2];
        assert!(kl_divergence(&p, &q) > 0.0);
    }

    #[test]
    fn kl_infinite_when_not_absolutely_continuous() {
        assert_eq!(kl_divergence(&[0.5, 0.5], &[1.0, 0.0]), f64::INFINITY);
        // ...but fine when p puts no mass there.
        assert!(kl_divergence(&[1.0, 0.0], &[0.5, 0.5]).is_finite());
    }

    #[test]
    fn kl_known_value() {
        // DKL(Bern(0.5) ‖ Bern(0.25)) = 0.5·ln2 + 0.5·ln(2/3)
        let v = kl_divergence(&[0.5, 0.5], &[0.25, 0.75]);
        let expect = 0.5 * (0.5f64 / 0.25).ln() + 0.5 * (0.5f64 / 0.75).ln();
        assert!((v - expect).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_basic() {
        assert_eq!(weighted_mean(&[1.0, 3.0], &[1.0, 1.0]), 2.0);
        assert_eq!(weighted_mean(&[1.0, 3.0], &[3.0, 1.0]), 1.5);
        assert_eq!(weighted_mean(&[], &[]), 0.0);
    }

    #[test]
    fn normalize_sums_to_one() {
        let mut p = vec![2.0, 6.0];
        assert!(normalize(&mut p));
        assert_eq!(p, vec![0.25, 0.75]);
        let mut z = vec![0.0, 0.0];
        assert!(!normalize(&mut z));
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
    }
}
