//! Symmetric eigensolvers.
//!
//! Spectral clustering (paper §6.1) needs the top-K eigenvectors of the
//! normalized affinity matrix. Two solvers are provided:
//!
//! * [`jacobi_eigen`] — classic cyclic Jacobi rotations; `O(n³)` per sweep but
//!   bulletproof. Used for small matrices and as the reference in tests.
//! * [`lanczos_topk`] — Lanczos iteration with full reorthogonalization for
//!   the leading eigenpairs of large symmetric matrices; `O(k·n²)`, which is
//!   what makes spectral clustering on ~1700 distinct queries tractable.

use crate::matrix::{axpy, dot, norm, scale, Matrix};

/// An eigenvalue with its (unit-norm) eigenvector.
#[derive(Debug, Clone, PartialEq)]
pub struct EigenPair {
    /// The eigenvalue.
    pub value: f64,
    /// The unit-norm eigenvector.
    pub vector: Vec<f64>,
}

/// Full eigendecomposition of a symmetric matrix via cyclic Jacobi rotations.
///
/// Returns all eigenpairs sorted by **descending** eigenvalue.
///
/// # Panics
/// Panics if `a` is not square.
pub fn jacobi_eigen(a: &Matrix) -> Vec<EigenPair> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "jacobi_eigen requires a square matrix");
    if n == 0 {
        return Vec::new();
    }

    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let max_sweeps = 64;

    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable tangent of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Apply the rotation to rows/cols p and q of M.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut pairs: Vec<EigenPair> =
        (0..n).map(|i| EigenPair { value: m[(i, i)], vector: v.col(i) }).collect();
    pairs.sort_by(|a, b| b.value.total_cmp(&a.value));
    pairs
}

/// Leading `k` eigenpairs of a symmetric matrix via Lanczos iteration with
/// full reorthogonalization.
///
/// "Leading" means largest eigenvalue first. For spectral clustering the input
/// is the normalized affinity `D^{-1/2} A D^{-1/2}`, whose top eigenvectors
/// are the bottom eigenvectors of the normalized Laplacian.
///
/// `seed` makes the (random) starting vector deterministic.
///
/// # Panics
/// Panics if `a` is not square or `k == 0`.
pub fn lanczos_topk(a: &Matrix, k: usize, seed: u64) -> Vec<EigenPair> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "lanczos_topk requires a square matrix");
    assert!(k > 0, "k must be positive");
    let k = k.min(n);
    if n == 0 {
        return Vec::new();
    }
    // For tiny problems, fall back to the dense reference solver.
    if n <= 32 {
        let mut pairs = jacobi_eigen(a);
        pairs.truncate(k);
        return pairs;
    }

    // Krylov dimension: generous extra room so edge-of-spectrum pairs
    // converge to high accuracy even on clustered spectra.
    let m = (4 * k + 40).min(n);

    // Deterministic pseudo-random start vector (splitmix64).
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z = z ^ (z >> 31);
        (z as f64 / u64::MAX as f64) - 0.5
    };

    let mut q: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
    let mut q0: Vec<f64> = (0..n).map(|_| next()).collect();
    let q0_norm = norm(&q0);
    scale(&mut q0, 1.0 / q0_norm);
    q.push(q0);

    let mut alphas = Vec::with_capacity(m);
    let mut betas = Vec::with_capacity(m);

    for j in 0..m {
        let mut w = a.matvec(&q[j]);
        let alpha = dot(&w, &q[j]);
        alphas.push(alpha);
        axpy(&mut w, -alpha, &q[j]);
        if j > 0 {
            let beta_prev: f64 = betas[j - 1];
            axpy(&mut w, -beta_prev, &q[j - 1]);
        }
        // Full reorthogonalization: twice-is-enough Gram-Schmidt.
        for _ in 0..2 {
            for qi in &q {
                let c = dot(&w, qi);
                axpy(&mut w, -c, qi);
            }
        }
        let beta = norm(&w);
        if beta < 1e-12 || j + 1 == m {
            betas.push(beta);
            break;
        }
        betas.push(beta);
        scale(&mut w, 1.0 / beta);
        q.push(w);
    }

    let steps = alphas.len();
    // Eigendecomposition of the small tridiagonal via Jacobi (steps ≤ m ≪ n).
    let mut t = Matrix::zeros(steps, steps);
    for i in 0..steps {
        t[(i, i)] = alphas[i];
        if i + 1 < steps {
            t[(i, i + 1)] = betas[i];
            t[(i + 1, i)] = betas[i];
        }
    }
    let tri_pairs = jacobi_eigen(&t);

    // Lift Ritz vectors back: v = Q · y.
    tri_pairs
        .into_iter()
        .take(k)
        .map(|pair| {
            let mut vec = vec![0.0; n];
            for (coeff, qi) in pair.vector.iter().zip(&q) {
                axpy(&mut vec, *coeff, qi);
            }
            let nv = norm(&vec);
            if nv > 0.0 {
                scale(&mut vec, 1.0 / nv);
            }
            EigenPair { value: pair.value, vector: vec }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eigen_residual(a: &Matrix, p: &EigenPair) -> f64 {
        let av = a.matvec(&p.vector);
        av.iter().zip(&p.vector).map(|(avi, vi)| (avi - p.value * vi).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn jacobi_diagonal_matrix() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0, 0.0], vec![0.0, 1.0, 0.0], vec![0.0, 0.0, 2.0]]);
        let pairs = jacobi_eigen(&a);
        let values: Vec<f64> = pairs.iter().map(|p| p.value).collect();
        assert!((values[0] - 3.0).abs() < 1e-10);
        assert!((values[1] - 2.0).abs() < 1e-10);
        assert!((values[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn jacobi_known_2x2() {
        // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let pairs = jacobi_eigen(&a);
        assert!((pairs[0].value - 3.0).abs() < 1e-10);
        assert!((pairs[1].value - 1.0).abs() < 1e-10);
        for p in &pairs {
            assert!(eigen_residual(&a, p) < 1e-10);
        }
    }

    #[test]
    fn jacobi_eigenvectors_orthonormal() {
        let a =
            Matrix::from_rows(&[vec![4.0, 1.0, 0.5], vec![1.0, 3.0, 0.25], vec![0.5, 0.25, 2.0]]);
        let pairs = jacobi_eigen(&a);
        for i in 0..3 {
            assert!((norm(&pairs[i].vector) - 1.0).abs() < 1e-9);
            for j in (i + 1)..3 {
                assert!(dot(&pairs[i].vector, &pairs[j].vector).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn jacobi_trace_preserved() {
        let a = Matrix::from_rows(&[
            vec![5.0, 2.0, 1.0, 0.0],
            vec![2.0, 4.0, 0.5, 0.1],
            vec![1.0, 0.5, 3.0, 0.2],
            vec![0.0, 0.1, 0.2, 2.0],
        ]);
        let pairs = jacobi_eigen(&a);
        let sum: f64 = pairs.iter().map(|p| p.value).sum();
        assert!((sum - 14.0).abs() < 1e-9);
    }

    fn random_spd(n: usize, seed: u64) -> Matrix {
        // Deterministic SPD matrix: B·Bᵀ + n·I from a cheap LCG.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let b = Matrix::from_vec(n, n, (0..n * n).map(|_| next()).collect());
        let mut g = b.outer_gram();
        for i in 0..n {
            g[(i, i)] += n as f64;
        }
        g
    }

    #[test]
    fn lanczos_matches_jacobi_on_medium_matrix() {
        let a = random_spd(60, 7);
        let top = lanczos_topk(&a, 4, 42);
        let full = jacobi_eigen(&a);
        for (l, j) in top.iter().zip(full.iter()) {
            assert!((l.value - j.value).abs() < 1e-6, "lanczos {} vs jacobi {}", l.value, j.value);
        }
    }

    #[test]
    fn lanczos_residuals_small() {
        let a = random_spd(80, 3);
        for p in lanczos_topk(&a, 5, 9) {
            let tol = 1e-7 * (1.0 + p.value.abs());
            let res = eigen_residual(&a, &p);
            assert!(res < tol, "residual {res} too large for λ={}", p.value);
        }
    }

    #[test]
    fn lanczos_small_matrix_falls_back() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let pairs = lanczos_topk(&a, 1, 0);
        assert_eq!(pairs.len(), 1);
        assert!((pairs[0].value - 3.0).abs() < 1e-10);
    }

    #[test]
    fn lanczos_k_clamped_to_n() {
        let a = random_spd(40, 11);
        let pairs = lanczos_topk(&a, 100, 5);
        assert!(pairs.len() <= 40);
    }
}
