//! Property tests for the numeric substrate: solver residuals, eigenpair
//! residuals, projection feasibility, and entropy identities on random
//! inputs.

use logr_math::{
    binary_entropy, cholesky_solve, entropy, jacobi_eigen, kl_divergence, lu_solve,
    project_onto_affine, sample_constrained, Matrix,
};
use proptest::prelude::*;

fn arb_spd(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let b = Matrix::from_vec(n, n, data);
        let mut g = b.outer_gram();
        for i in 0..n {
            g[(i, i)] += n as f64 + 1.0;
        }
        g
    })
}

fn arb_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, n)
}

fn arb_prob(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..1.0, n).prop_map(|mut v| {
        let total: f64 = v.iter().sum();
        v.iter_mut().for_each(|x| *x /= total);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cholesky_residual_small(a in arb_spd(5), b in arb_vec(5)) {
        let x = cholesky_solve(&a, &b).expect("SPD by construction");
        let r: f64 = a.matvec(&x).iter().zip(&b).map(|(ax, bv)| (ax - bv).abs()).fold(0.0, f64::max);
        prop_assert!(r < 1e-8, "residual {r}");
    }

    #[test]
    fn lu_residual_small(a in arb_spd(5), b in arb_vec(5)) {
        // SPD matrices are safely nonsingular inputs for LU too.
        let x = lu_solve(&a, &b).expect("nonsingular");
        let r: f64 = a.matvec(&x).iter().zip(&b).map(|(ax, bv)| (ax - bv).abs()).fold(0.0, f64::max);
        prop_assert!(r < 1e-8, "residual {r}");
    }

    #[test]
    fn jacobi_eigenpairs_valid(a in arb_spd(6)) {
        let pairs = jacobi_eigen(&a);
        prop_assert_eq!(pairs.len(), 6);
        // Sorted descending, residuals small, trace preserved.
        let trace: f64 = (0..6).map(|i| a[(i, i)]).sum();
        let sum: f64 = pairs.iter().map(|p| p.value).sum();
        prop_assert!((trace - sum).abs() < 1e-7 * (1.0 + trace.abs()));
        for w in pairs.windows(2) {
            prop_assert!(w[0].value >= w[1].value - 1e-10);
        }
        for p in &pairs {
            let av = a.matvec(&p.vector);
            let res: f64 = av.iter().zip(&p.vector)
                .map(|(avi, vi)| (avi - p.value * vi).abs())
                .fold(0.0, f64::max);
            prop_assert!(res < 1e-7 * (1.0 + p.value.abs()), "residual {res} for λ={}", p.value);
        }
    }

    #[test]
    fn affine_projection_feasible_and_idempotent(x in arb_vec(6), b in -2.0f64..2.0) {
        // One constraint: x0 + x2 + x4 = b.
        let mut a = Matrix::zeros(1, 6);
        a[(0, 0)] = 1.0;
        a[(0, 2)] = 1.0;
        a[(0, 4)] = 1.0;
        let y = project_onto_affine(&a, &[b], &x).unwrap();
        prop_assert!((y[0] + y[2] + y[4] - b).abs() < 1e-8);
        let z = project_onto_affine(&a, &[b], &y).unwrap();
        for (yi, zi) in y.iter().zip(&z) {
            prop_assert!((yi - zi).abs() < 1e-8, "projection not idempotent");
        }
    }

    #[test]
    fn constrained_sampling_feasible(start in arb_prob(8), theta in 0.05f64..0.95) {
        // Constraints: sum = 1 and first three coordinates sum to θ.
        let mut a = Matrix::zeros(2, 8);
        for i in 0..8 { a[(0, i)] = 1.0; }
        for i in 0..3 { a[(1, i)] = 1.0; }
        let (x, residual) = sample_constrained(&a, &[1.0, theta], &start, 100, 1e-9).unwrap();
        prop_assert!(residual < 1e-6, "residual {residual}");
        prop_assert!(x.iter().all(|&v| v >= -1e-12));
    }

    #[test]
    fn entropy_bounds(p in arb_prob(10)) {
        let h = entropy(&p);
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (10.0f64).ln() + 1e-9, "entropy above ln n: {h}");
    }

    #[test]
    fn kl_nonnegative_and_zero_on_self(p in arb_prob(8), q in arb_prob(8)) {
        prop_assert!(kl_divergence(&p, &q) >= -1e-12);
        prop_assert!(kl_divergence(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn binary_entropy_concave_symmetric(p in 0.0f64..=1.0) {
        let h = binary_entropy(p);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= std::f64::consts::LN_2 + 1e-12);
        prop_assert!((h - binary_entropy(1.0 - p)).abs() < 1e-9);
    }
}
