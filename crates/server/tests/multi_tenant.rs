//! PR 9 acceptance: the multi-tenant daemon end to end over loopback.
//!
//! Every test binds a real [`Server`] on an ephemeral port over a
//! [`FaultFs`] and speaks the line-delimited JSON protocol through real
//! sockets:
//!
//! * one tenant's injected `ENOSPC` surfaces as a typed per-tenant wire
//!   error while the other tenant (and the daemon itself) keeps
//!   committing — and the broken tenant recovers after a close/reopen;
//! * group commit demonstrably coalesces delta fsyncs: strictly fewer
//!   `engine.delta` fsyncs than durability-bearing acks;
//! * a store grown through the daemon is bit-identical to one grown by
//!   a standalone [`Engine`] fed the same stream (modulo the
//!   process-global spill-file sequence numbers, which are normalized);
//! * the global resident budget is re-apportioned live as tenants come
//!   and go, evicting resident shards when a newcomer halves the share.

use logr::cluster::vfs::{FaultFs, IoOp, OpKind, Vfs};
use logr::Engine;
use logr_server::json::{self, Json};
use logr_server::{EngineProfile, Server, ServerConfig, ServerHandle};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const WINDOW: u64 = 8;

fn statement(tag: &str, i: u64) -> String {
    format!("SELECT c{} FROM {tag}_t{} WHERE a{} = ?", i % 13, i % 3, i % 7)
}

fn profile() -> EngineProfile {
    EngineProfile { window: WINDOW, clusters: 2, seed: 7, source: logr::SourceConfig::Sql }
}

fn serve(fs: Arc<FaultFs>, budget: usize, interval: Duration) -> ServerHandle {
    let config = ServerConfig::new("/srv")
        .vfs(fs)
        .profile(profile())
        .global_budget(budget)
        .threads(4)
        .commit_interval(interval);
    Server::bind(config, "127.0.0.1:0").expect("bind").spawn()
}

/// One protocol connection: send a frame line, read the response line.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    fn call(&mut self, frame: &str) -> Json {
        writeln!(self.stream, "{frame}").expect("send frame");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        assert!(line.ends_with('\n'), "response must be a full line: {line:?}");
        json::parse(line.trim_end()).expect("response is valid JSON")
    }

    /// `call` that must succeed; returns the `result` payload.
    fn ok(&mut self, frame: &str) -> Json {
        let resp = self.call(frame);
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "not ok: {}",
            resp.to_text()
        );
        resp.get("result").cloned().expect("ok frame carries a result")
    }

    /// `call` that must fail; returns the wire error code.
    fn err(&mut self, frame: &str) -> String {
        let resp = self.call(frame);
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(false),
            "not an error: {}",
            resp.to_text()
        );
        resp.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .expect("error frame carries a code")
            .to_owned()
    }

    /// Ingest one window-sized batch for `tenant` drawn from its stream
    /// at offset `round`.
    fn ingest_window(&mut self, tenant: &str, round: u64) -> Json {
        let stmts: Vec<String> =
            (0..WINDOW).map(|i| format!("\"{}\"", statement(tenant, round * WINDOW + i))).collect();
        self.ok(&format!(
            "{{\"id\":{round},\"op\":\"ingest\",\"tenant\":\"{tenant}\",\"statements\":[{}]}}",
            stmts.join(",")
        ))
    }
}

fn field_u64(doc: &Json, key: &str) -> u64 {
    doc.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing {key}: {}", doc.to_text()))
}

#[test]
fn protocol_smoke_and_typed_error_frames() {
    let fs = Arc::new(FaultFs::new());
    let handle = serve(fs, usize::MAX, Duration::from_millis(2));
    let mut c = Client::connect(handle.addr());

    // Liveness and id echo.
    let resp = c.call("{\"id\":42,\"op\":\"ping\"}");
    assert_eq!(resp.get("id").and_then(Json::as_u64), Some(42));
    assert_eq!(resp.get("result").and_then(Json::as_str), Some("pong"));

    // Malformed frames are typed protocol errors, never disconnects.
    assert_eq!(c.err("{not json"), "Protocol");
    assert_eq!(c.err("{\"op\":\"frobnicate\",\"tenant\":\"a\"}"), "Protocol");
    assert_eq!(c.err("{\"op\":\"ingest\"}"), "Protocol");
    assert_eq!(
        c.err("{\"op\":\"ingest\",\"tenant\":\"../escape\",\"sql\":\"SELECT 1\"}"),
        "Protocol"
    );
    assert_eq!(
        c.err("{\"op\":\"top_k\",\"tenant\":\"a\",\"class\":\"select\",\"k\":0}"),
        "Protocol"
    );

    // The read surface works over the wire after two closed windows.
    c.ingest_window("alpha", 0);
    c.ingest_window("alpha", 1);
    let freq =
        c.ok("{\"op\":\"frequency\",\"tenant\":\"alpha\",\"pred\":{\"table\":\"alpha_t0\"}}");
    assert!(freq.as_f64().expect("frequency is a number") > 0.0);
    let top = c.ok("{\"op\":\"top_k\",\"tenant\":\"alpha\",\"class\":\"from\",\"k\":3}");
    assert!(!top.as_arr().expect("top_k is an array").is_empty());
    let advice =
        c.ok("{\"op\":\"advise\",\"tenant\":\"alpha\",\"advisor\":\"index\",\"min_share\":0.01}");
    assert!(advice.as_arr().is_some());

    // Global stats see the tenant.
    let stats = c.ok("{\"op\":\"stats\"}");
    assert_eq!(field_u64(&stats, "tenants"), 1);
    assert!(stats.get("per_tenant").and_then(|t| t.get("alpha")).is_some());

    handle.shutdown();
    handle.join().expect("clean shutdown");
}

#[test]
fn one_tenants_enospc_never_touches_the_other() {
    let fs = Arc::new(FaultFs::new());
    // Budget 0: every window close spills shard files — maximum IO
    // surface on the injected-fault path.
    let handle = serve(fs.clone(), 0, Duration::from_millis(2));

    // Open both tenants and land one durable window each.
    let mut a = Client::connect(handle.addr());
    let mut b = Client::connect(handle.addr());
    a.ingest_window("alpha", 0);
    b.ingest_window("beta", 0);

    // Alpha's next spill hits a full disk; beta's disk is fine.
    fs.inject(OpKind::Write, "alpha/shard-", std::io::ErrorKind::StorageFull, 1);

    // Drive both tenants from parallel threads: beta must keep
    // committing while alpha fails typed.
    let addr = handle.addr();
    let beta_thread = std::thread::spawn(move || {
        let mut b = Client::connect(addr);
        for round in 1..6 {
            b.ingest_window("beta", round);
        }
    });
    let code = a.err(&format!(
        "{{\"op\":\"ingest\",\"tenant\":\"alpha\",\"statements\":[{}]}}",
        (0..WINDOW)
            .map(|i| format!("\"{}\"", statement("alpha", WINDOW + i)))
            .collect::<Vec<_>>()
            .join(",")
    ));
    assert_eq!(code, "StorageExhausted", "ENOSPC must surface typed on the wire");
    beta_thread.join().expect("beta thread");

    // The daemon is alive, beta committed all its windows, and beta's
    // stats are untouched by alpha's failure.
    let mut c = Client::connect(handle.addr());
    assert_eq!(c.call("{\"op\":\"ping\"}").get("result").and_then(Json::as_str), Some("pong"));
    let stats = c.ok("{\"op\":\"stats\",\"tenant\":\"beta\"}");
    assert_eq!(field_u64(&stats, "windows_closed"), 6);
    assert_eq!(field_u64(&stats, "total_queries"), 6 * WINDOW);

    // Alpha recovers through close + reopen (the injection is spent):
    // the wedged in-memory summarizer is discarded and the store reopens
    // at its last durable state.
    let closed = c.ok("{\"op\":\"close\",\"tenant\":\"alpha\"}");
    assert_eq!(closed.get("closed").and_then(Json::as_bool), Some(true));
    c.ingest_window("alpha", 1);
    let stats = c.ok("{\"op\":\"stats\",\"tenant\":\"alpha\"}");
    assert!(field_u64(&stats, "windows_closed") >= 2);

    handle.shutdown();
    handle.join().expect("clean shutdown");
}

#[test]
fn group_commit_coalesces_delta_fsyncs_across_acks() {
    let fs = Arc::new(FaultFs::new());
    // A long commit interval relative to ingest latency: many closes
    // park behind each committer tick, so their delta fsyncs coalesce.
    let handle = serve(fs.clone(), usize::MAX, Duration::from_millis(50));
    let addr = handle.addr();

    const CONNS: u64 = 4;
    const ROUNDS: u64 = 4;
    let workers: Vec<_> = (0..CONNS)
        .map(|w| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                for round in 0..ROUNDS {
                    let result = c.ingest_window("gamma", w * ROUNDS + round);
                    // Window-sized batches: every ack covers a close.
                    assert_eq!(field_u64(&result, "closed"), 1);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("loadgen thread");
    }

    let acks = CONNS * ROUNDS;
    let delta_fsyncs = fs
        .trace()
        .iter()
        .filter(|op| matches!(op, IoOp::Fsync { path } if path.ends_with("engine.delta")))
        .count() as u64;
    assert!(delta_fsyncs > 0, "durable closes need at least one delta fsync");
    assert!(
        delta_fsyncs < acks,
        "group commit must coalesce: {delta_fsyncs} delta fsyncs for {acks} durability-bearing acks"
    );
    eprintln!(
        "group commit: {delta_fsyncs} delta fsyncs covered {acks} window-close acks \
         ({:.2} fsyncs/ack)",
        delta_fsyncs as f64 / acks as f64
    );

    // Durability held: the tenant saw every window.
    let mut c = Client::connect(addr);
    let stats = c.ok("{\"op\":\"stats\",\"tenant\":\"gamma\"}");
    assert_eq!(field_u64(&stats, "windows_closed"), acks);

    handle.shutdown();
    handle.join().expect("clean shutdown");
}

/// Store files under `dir`, with the process-global spill-file sequence
/// numbers normalized away: every `shard-SSSSS-PID-XXXXXXXX.bin` name is
/// rewritten (in manifest order) to use a dense counter, both in the
/// manifest bytes (whose trailing 8-byte checksum is zeroed — it covers
/// the original names) and in the file keys. `engine.lock` is gone after
/// close; `engine.delta` is excluded (its header pins the original
/// base-manifest checksum).
fn normalized_store(fs: &FaultFs, dir: &Path) -> BTreeMap<PathBuf, Vec<u8>> {
    let manifest_path = dir.join("engine.manifest");
    let mut manifest = fs.read(&manifest_path).expect("store has a manifest");

    // Collect distinct shard names by first occurrence in the manifest.
    let pid = std::process::id().to_string();
    let prefix = b"shard-";
    let name_len = "shard-00000-".len() + pid.len() + 1 + 8 + ".bin".len();
    let mut renames: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    let mut i = 0;
    while i + name_len <= manifest.len() {
        if &manifest[i..i + prefix.len()] == prefix {
            let original = manifest[i..i + name_len].to_vec();
            if !renames.iter().any(|(from, _)| *from == original) {
                let mut normalized = original.clone();
                let seq_at = name_len - ".bin".len() - 8;
                normalized[seq_at..seq_at + 8]
                    .copy_from_slice(format!("{:08x}", renames.len()).as_bytes());
                renames.push((original, normalized));
            }
            i += name_len;
        } else {
            i += 1;
        }
    }
    for (from, to) in &renames {
        let mut j = 0;
        while j + from.len() <= manifest.len() {
            if &manifest[j..j + from.len()] == from.as_slice() {
                manifest[j..j + from.len()].copy_from_slice(to);
                j += from.len();
            } else {
                j += 1;
            }
        }
    }
    let end = manifest.len();
    manifest[end - 8..].fill(0);

    let mut out = BTreeMap::new();
    out.insert(PathBuf::from("engine.manifest"), manifest);
    for (path, bytes) in fs.files() {
        let Ok(rel) = path.strip_prefix(dir) else { continue };
        let name = rel.to_string_lossy().into_owned();
        if name == "engine.manifest" || name == "engine.delta" || name == "engine.lock" {
            continue;
        }
        let renamed = renames
            .iter()
            .find(|(from, _)| from.as_slice() == name.as_bytes())
            .map(|(_, to)| String::from_utf8(to.clone()).expect("ascii name"));
        out.insert(PathBuf::from(renamed.unwrap_or(name)), bytes);
    }
    out
}

#[test]
fn served_stores_are_bit_identical_to_standalone_engines() {
    // Two tenants grown concurrently through the daemon...
    let fs = Arc::new(FaultFs::new());
    let handle = serve(fs.clone(), 0, Duration::from_millis(2));
    let addr = handle.addr();
    let threads: Vec<_> = ["alpha", "beta"]
        .into_iter()
        .map(|tenant| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                for round in 0..4 {
                    c.ingest_window(tenant, round);
                }
                c.ok(&format!("{{\"op\":\"checkpoint\",\"tenant\":\"{tenant}\"}}"));
                c.ok(&format!("{{\"op\":\"close\",\"tenant\":\"{tenant}\"}}"));
            })
        })
        .collect();
    for t in threads {
        t.join().expect("tenant thread");
    }
    handle.shutdown();
    handle.join().expect("clean shutdown");

    // ...must be bit-identical to standalone engines fed the same
    // streams (same profile, same per-tenant budget share: 0).
    for tenant in ["alpha", "beta"] {
        let solo_fs = Arc::new(FaultFs::new());
        let dir = PathBuf::from("/srv").join(tenant);
        let engine = Engine::builder()
            .window(WINDOW)
            .clusters(2)
            .seed(7)
            .resident_budget(0)
            .vfs(solo_fs.clone() as Arc<dyn Vfs>)
            .open(&dir)
            .expect("standalone open");
        for i in 0..4 * WINDOW {
            engine.ingest(&statement(tenant, i)).expect("standalone ingest");
        }
        engine.checkpoint().expect("standalone checkpoint");
        drop(engine);

        let served = normalized_store(&fs, &dir);
        let solo = normalized_store(&solo_fs, &dir);
        assert!(served.len() > 1, "{tenant}: store must hold spilled shards");
        assert_eq!(
            served.keys().collect::<Vec<_>>(),
            solo.keys().collect::<Vec<_>>(),
            "{tenant}: file sets differ"
        );
        for (name, bytes) in &served {
            assert_eq!(Some(bytes), solo.get(name), "{tenant}: {} differs", name.display());
        }
    }
}

#[test]
fn template_tenants_mine_free_form_logs_over_the_wire() {
    let fs = Arc::new(FaultFs::new());
    let handle = serve(fs, usize::MAX, Duration::from_millis(2));
    let mut c = Client::connect(handle.addr());

    // Two windows of free-form service-log lines — not a byte of SQL —
    // through the source-neutral `records` field. The first frame's
    // "source":"template" selects the miner at store creation.
    for round in 0..2u64 {
        let lines: Vec<String> = (0..WINDOW)
            .map(|i| {
                let n = round * WINDOW + i;
                if n.is_multiple_of(2) {
                    format!("\"user u{n} logged in from 10.0.0.{n}\"")
                } else {
                    format!("\"disk scan finished in {n} ms\"")
                }
            })
            .collect();
        let result = c.ok(&format!(
            "{{\"op\":\"ingest\",\"tenant\":\"svc\",\"source\":\"template\",\"records\":[{}]}}",
            lines.join(",")
        ));
        assert_eq!(field_u64(&result, "closed"), 1);
    }

    // The analytics surface speaks template/param classes and preds.
    let top = c.ok("{\"op\":\"top_k\",\"tenant\":\"svc\",\"class\":\"template\",\"k\":4}");
    let top = top.as_arr().expect("top_k is an array");
    assert!(!top.is_empty(), "mined templates must rank");
    let texts: Vec<&str> = top
        .iter()
        .filter_map(|r| r.get("feature").and_then(|f| f.get("text")).and_then(Json::as_str))
        .collect();
    assert!(texts.iter().any(|t| t.contains("logged in")), "login template missing from {texts:?}");

    let ip_share = c
        .ok("{\"op\":\"share\",\"tenant\":\"svc\",\"pred\":{\"param\":\"ip\"}}")
        .as_f64()
        .expect("share is a number");
    assert!((ip_share - 0.5).abs() < 0.05, "half the lines carry an IP, got {ip_share}");

    // Negated predicates evaluate as mixture complements on the wire.
    let not_ip = c
        .ok("{\"op\":\"share\",\"tenant\":\"svc\",\"pred\":{\"not\":{\"param\":\"ip\"}}}")
        .as_f64()
        .expect("share is a number");
    assert!((not_ip - (1.0 - ip_share)).abs() < 1e-6, "¬ip must complement: {not_ip}");

    // An explicit source that disagrees with the one in force is a typed
    // protocol error, not a silent ignore.
    assert_eq!(c.err("{\"op\":\"flush\",\"tenant\":\"svc\",\"source\":\"sql\"}"), "Protocol");

    // Reopening the tenant replays the miner journal from the manifest:
    // a frame with no source gets the stored template source back.
    c.ok("{\"op\":\"close\",\"tenant\":\"svc\"}");
    let top2 = c.ok("{\"op\":\"top_k\",\"tenant\":\"svc\",\"class\":\"template\",\"k\":4}");
    let texts2: Vec<String> = top2
        .as_arr()
        .expect("top_k is an array")
        .iter()
        .filter_map(|r| r.get("feature").and_then(|f| f.get("text")).and_then(Json::as_str))
        .map(str::to_owned)
        .collect();
    assert_eq!(
        texts.iter().map(|t| t.to_owned()).collect::<Vec<_>>(),
        texts2,
        "reopened store must rank the same templates"
    );

    handle.shutdown();
    handle.join().expect("clean shutdown");
}

#[test]
fn global_budget_is_reapportioned_as_tenants_come_and_go() {
    // Measure the resident footprint of the workload unconstrained.
    let probe =
        Engine::builder().window(WINDOW).clusters(2).seed(7).in_memory().expect("probe engine");
    for i in 0..4 * WINDOW {
        probe.ingest(&statement("alpha", i)).expect("probe ingest");
    }
    let footprint = probe.resident_shard_bytes().expect("probe footprint");
    assert!(footprint > 0, "workload must produce resident shards");

    // Serve with exactly that global budget: a lone tenant fits.
    let fs = Arc::new(FaultFs::new());
    let handle = serve(fs, footprint, Duration::from_millis(2));
    let mut c = Client::connect(handle.addr());
    for round in 0..4 {
        c.ingest_window("alpha", round);
    }
    let stats = c.ok("{\"op\":\"stats\",\"tenant\":\"alpha\"}");
    assert_eq!(field_u64(&stats, "budget"), footprint as u64);
    assert_eq!(field_u64(&stats, "spilled_shards"), 0, "lone tenant fits the global budget");
    assert_eq!(field_u64(&stats, "resident_shard_bytes"), footprint as u64);

    // A second tenant halves the share — the first tenant's engine is
    // re-budgeted live and evicts down to its new share.
    c.ok("{\"op\":\"stats\",\"tenant\":\"beta\"}");
    let stats = c.ok("{\"op\":\"stats\",\"tenant\":\"alpha\"}");
    assert_eq!(field_u64(&stats, "budget"), (footprint / 2) as u64);
    assert!(field_u64(&stats, "spilled_shards") > 0, "halved share must evict");
    assert!(field_u64(&stats, "resident_shard_bytes") <= (footprint / 2) as u64);

    // The departing tenant hands its share back.
    c.ok("{\"op\":\"close\",\"tenant\":\"beta\"}");
    let stats = c.ok("{\"op\":\"stats\",\"tenant\":\"alpha\"}");
    assert_eq!(field_u64(&stats, "budget"), footprint as u64);

    let global = c.ok("{\"op\":\"stats\"}");
    assert_eq!(field_u64(&global, "tenants"), 1);
    assert_eq!(field_u64(&global, "global_budget"), footprint as u64);

    handle.shutdown();
    handle.join().expect("clean shutdown");
}
