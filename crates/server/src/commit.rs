//! Group commit: deferring delta-log fsyncs so one `fsync` covers many
//! acknowledged batches.
//!
//! [`GroupCommitVfs`] wraps a tenant's [`Vfs`] and intercepts exactly one
//! operation: `fsync` of the engine's **delta log** (`engine.delta`).
//! Instead of syncing immediately it records the path as *pending*; the
//! server's committer thread calls [`GroupCommitVfs::flush`] once per
//! commit interval, paying a single real fsync for every delta append the
//! interval accumulated. Connection acks are parked until the covering
//! flush, so the client-visible durability contract is unchanged — an
//! acked batch survives a power cut.
//!
//! # Why deferring *only* the delta fsync is crash-safe
//!
//! The engine's write path orders durability deliberately: spilled shard
//! files are written **and fsynced** before the delta record that
//! references them is appended, and base-manifest rewrites use the full
//! write → fsync → rename → sync_dir protocol. Both of those flow through
//! this wrapper untouched. The delta log itself is a checksummed
//! record-framed append log whose reader accepts every valid prefix and
//! discards a torn or lost tail — so a crash between an append and the
//! deferred fsync loses only *unacknowledged* batches, which is exactly
//! the promise group commit makes.
//!
//! A failed flush is handled like a failed synchronous fsync one layer
//! up: the covered acks fail with the typed error, and the server rebases
//! the tenant (full checkpoint through the untouched synchronous path)
//! before accepting its next batch — the classic defense against fsync
//! result amnesia.

use logr::cluster::vfs::{retry_io, Vfs};
use logr::manifest::DELTA_FILE_NAME;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A [`Vfs`] wrapper that defers delta-log fsyncs into batched flushes.
///
/// Everything except `fsync` of a file named
/// [`DELTA_FILE_NAME`] passes straight through to the
/// inner vfs, preserving the store's write→fsync→rename→sync_dir
/// protocols byte for byte.
#[derive(Debug)]
pub struct GroupCommitVfs {
    inner: Arc<dyn Vfs>,
    pending: Mutex<Vec<PathBuf>>,
}

impl GroupCommitVfs {
    /// Wraps `inner`, deferring its delta-log fsyncs.
    pub fn new(inner: Arc<dyn Vfs>) -> GroupCommitVfs {
        GroupCommitVfs { inner, pending: Mutex::new(Vec::new()) }
    }

    /// The wrapped vfs.
    pub fn inner(&self) -> &Arc<dyn Vfs> {
        &self.inner
    }

    /// Number of deferred fsync targets not yet flushed.
    pub fn pending_len(&self) -> usize {
        match self.pending.lock() {
            Ok(pending) => pending.len(),
            Err(_) => 0,
        }
    }

    /// Pays every deferred fsync, once per distinct path.
    ///
    /// On failure the remaining pending set is still cleared: the caller
    /// must treat the tenant as non-durable and rebase it (a full
    /// checkpoint through the synchronous path) before acknowledging
    /// anything further, so re-syncing a stale delta would only mask the
    /// failure.
    pub fn flush(&self) -> io::Result<()> {
        let drained: Vec<PathBuf> = {
            let mut pending = self
                .pending
                .lock()
                .map_err(|_| io::Error::other("group-commit pending set poisoned"))?;
            std::mem::take(&mut *pending)
        };
        for path in drained {
            retry_io(|| self.inner.fsync(&path))?;
        }
        Ok(())
    }

    fn defer(&self, path: &Path) -> bool {
        if path.file_name().map(|n| n == DELTA_FILE_NAME) != Some(true) {
            return false;
        }
        match self.pending.lock() {
            Ok(mut pending) => {
                if !pending.iter().any(|p| p == path) {
                    pending.push(path.to_path_buf());
                }
                true
            }
            // A poisoned pending set degrades to synchronous fsync —
            // strictly more durable, never less.
            Err(_) => false,
        }
    }
}

impl Vfs for GroupCommitVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.inner.write(path, bytes)
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        // The caller (the engine's delta append path) pairs this append
        // with an fsync through this same wrapper, which is where the
        // deferral decision lives.
        // lint:allow(sync-protocol): pure passthrough; the commit protocol runs in the caller
        self.inner.append(path, bytes)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        if self.defer(path) {
            return Ok(());
        }
        self.inner.fsync(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        // The engine's base rewrite protocol already orders this rename
        // between fsync and sync_dir, both of which pass through
        // unmodified (base files never defer — see `defer`).
        // lint:allow(sync-protocol): pure passthrough; the rewrite protocol runs in the caller
        self.inner.rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list(dir)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.inner.sync_dir(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn create_exclusive(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.inner.create_exclusive(path, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logr::cluster::vfs::{FaultFs, IoOp};

    fn fsync_count(fs: &FaultFs, needle: &str) -> usize {
        fs.trace()
            .iter()
            .filter(
                |op| matches!(op, IoOp::Fsync { path } if path.to_string_lossy().contains(needle)),
            )
            .count()
    }

    #[test]
    fn delta_fsyncs_defer_until_flush_and_coalesce() {
        let fs = Arc::new(FaultFs::new());
        fs.create_dir_all(Path::new("/t")).unwrap();
        let gc = GroupCommitVfs::new(fs.clone() as Arc<dyn Vfs>);
        let delta = Path::new("/t").join(DELTA_FILE_NAME);

        for _ in 0..5 {
            gc.append(&delta, b"rec").unwrap();
            gc.fsync(&delta).unwrap();
        }
        assert_eq!(fsync_count(&fs, "engine.delta"), 0, "deferred");
        assert_eq!(gc.pending_len(), 1, "coalesced to one distinct path");

        gc.flush().unwrap();
        assert_eq!(fsync_count(&fs, "engine.delta"), 1, "one covering fsync");
        assert_eq!(gc.pending_len(), 0);
        gc.flush().unwrap();
        assert_eq!(fsync_count(&fs, "engine.delta"), 1, "idempotent when empty");
    }

    #[test]
    fn non_delta_fsyncs_pass_through_synchronously() {
        let fs = Arc::new(FaultFs::new());
        fs.create_dir_all(Path::new("/t")).unwrap();
        let gc = GroupCommitVfs::new(fs.clone() as Arc<dyn Vfs>);
        let shard = Path::new("/t/shard-00000-1-00000001.bin");
        gc.write(shard, b"points").unwrap();
        gc.fsync(shard).unwrap();
        assert_eq!(fsync_count(&fs, "shard-"), 1);
        assert_eq!(gc.pending_len(), 0);
    }

    #[test]
    fn failed_flush_clears_pending_and_reports() {
        let fs = Arc::new(FaultFs::new());
        fs.create_dir_all(Path::new("/t")).unwrap();
        let gc = GroupCommitVfs::new(fs.clone() as Arc<dyn Vfs>);
        let delta = Path::new("/t").join(DELTA_FILE_NAME);
        gc.append(&delta, b"rec").unwrap();
        gc.fsync(&delta).unwrap();
        fs.inject(logr::cluster::vfs::OpKind::Fsync, "engine.delta", io::ErrorKind::StorageFull, 1);
        assert!(gc.flush().is_err());
        assert_eq!(gc.pending_len(), 0, "failed flush leaves nothing masked");
    }
}
