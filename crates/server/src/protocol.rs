//! Wire protocol: frame parsing, typed errors, and response encoding.
//!
//! See the crate-level docs for the full protocol reference. This module
//! owns the request/response schema: [`parse_frame`] turns one line into a
//! typed [`Request`] (or a [`ServerError::Protocol`] that still echoes the
//! frame id), and the `*_json` helpers encode analytics results back into
//! [`Json`] trees.

use crate::json::{self, n, obj, s, Json};
use logr::analytics::{Advice, AdviceKind, Pred};
use logr::core::DriftReport;
use logr::feature::{Codebook, Feature, FeatureClass};
use logr::{SourceConfig, TemplateConfig};
use std::fmt;

/// Hard cap on one request line, in bytes. Longer frames are rejected with
/// a `Protocol` error before parsing (and the connection handler stops
/// buffering past it, so a missing newline cannot balloon memory).
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Upper bound on statements accepted in a single `ingest` frame.
pub const MAX_BATCH_STATEMENTS: usize = 4096;

/// Everything that can go wrong serving a request.
///
/// The engine taxonomy ([`logr::Error`]) is reused verbatim for anything a
/// tenant engine reports; `Protocol` covers wire-level failures (malformed
/// JSON, unknown ops, invalid tenant names) that never reach an engine.
/// Either way the failure is confined to the offending request — the
/// daemon and other tenants keep serving.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServerError {
    /// A tenant engine failed; carries the typed engine error.
    Engine(logr::Error),
    /// The request itself was invalid at the wire level.
    Protocol {
        /// Human-readable description of what was malformed.
        detail: String,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Engine(e) => write!(f, "engine error: {e}"),
            ServerError::Protocol { detail } => write!(f, "protocol error: {detail}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Engine(e) => Some(e),
            ServerError::Protocol { .. } => None,
        }
    }
}

impl From<logr::Error> for ServerError {
    fn from(e: logr::Error) -> ServerError {
        ServerError::Engine(e)
    }
}

/// Shorthand for a `Protocol` error.
pub fn protocol(detail: impl Into<String>) -> ServerError {
    ServerError::Protocol { detail: detail.into() }
}

impl ServerError {
    /// The stable error code written to the wire.
    ///
    /// Engine errors use the [`logr::Error`] variant name; wire-level
    /// failures use `"Protocol"`. Future engine variants (the enum is
    /// `#[non_exhaustive]`) degrade to `"Engine"` rather than breaking
    /// the daemon.
    pub fn wire_code(&self) -> &'static str {
        match self {
            ServerError::Protocol { .. } => "Protocol",
            ServerError::Engine(e) => match e {
                logr::Error::Io(_) => "Io",
                logr::Error::Spill(_) => "Spill",
                logr::Error::Portable(_) => "Portable",
                logr::Error::Config { .. } => "Config",
                logr::Error::UnknownFeature { .. } => "UnknownFeature",
                logr::Error::MissingManifest { .. } => "MissingManifest",
                logr::Error::ManifestVersion { .. } => "ManifestVersion",
                logr::Error::CorruptManifest { .. } => "CorruptManifest",
                logr::Error::MissingShard { .. } => "MissingShard",
                logr::Error::StoreMismatch { .. } => "StoreMismatch",
                logr::Error::StoreLocked { .. } => "StoreLocked",
                logr::Error::StorageExhausted { .. } => "StorageExhausted",
                logr::Error::ReadOnly => "ReadOnly",
                logr::Error::NotDurable => "NotDurable",
                logr::Error::Poisoned => "Poisoned",
                _ => "Engine",
            },
        }
    }
}

/// A parsed request line: the echoed frame id plus the typed request (or
/// the error to answer with).
#[derive(Debug)]
pub struct Frame {
    /// The client's `"id"` value, echoed verbatim in the response
    /// (`null` when the frame was too broken to recover one).
    pub id: Json,
    /// The request, or the protocol error it failed to parse with.
    pub request: Result<Request, ServerError>,
}

/// One decoded request.
#[derive(Debug)]
pub enum Request {
    /// Liveness probe; answered directly.
    Ping,
    /// Stop the daemon after flushing pending commits.
    Shutdown,
    /// Daemon-wide statistics (budget, tenant list).
    GlobalStats,
    /// An operation against one tenant's engine.
    Tenant {
        /// Validated tenant name (see [`crate::tenant`] for the rules).
        name: String,
        /// The frame's optional `"source"` field: which featurizer the
        /// tenant runs. Takes effect when this request is the one that
        /// creates the tenant's store; otherwise it is checked against
        /// the source actually in force and mismatches are errors.
        source: Option<SourceConfig>,
        /// The tenant-scoped operation.
        op: TenantOp,
    },
}

/// A tenant-scoped operation.
#[derive(Debug)]
pub enum TenantOp {
    /// Ingest a batch of records; acked only after the covering fsync.
    Ingest {
        /// The raw records, applied in order — SQL statements for
        /// SQL-source tenants, free-form log lines for template-source
        /// ones (the wire accepts `sql`/`statements` and the
        /// source-neutral synonyms `record`/`records` interchangeably).
        statements: Vec<String>,
    },
    /// Close any partially filled window.
    Flush,
    /// Fold the delta log into a fresh base manifest, durably.
    Checkpoint,
    /// Merge spilled shards (returns the shards merged away).
    Compact,
    /// Flush, release the tenant's engine and store lock, and
    /// re-apportion the global budget over the remaining tenants.
    Close,
    /// Estimated number of workload queries satisfying the predicate.
    Frequency {
        /// The predicate to estimate.
        pred: Pred,
    },
    /// `frequency / summarized_queries`, in `[0, 1]`.
    Share {
        /// The predicate to estimate.
        pred: Pred,
    },
    /// Conditional probability `p(pred | given)`.
    Conditional {
        /// The conditioning predicate.
        given: Pred,
        /// The target predicate.
        pred: Pred,
    },
    /// Pairwise co-occurrence estimates within one feature class.
    Cooccurrence {
        /// The feature class to correlate.
        class: FeatureClass,
    },
    /// The `k` most frequent features of one class.
    TopK {
        /// The feature class to rank.
        class: FeatureClass,
        /// How many features to return.
        k: usize,
    },
    /// Run an advisor over the tenant's snapshot.
    Advise {
        /// Which advisor, with its thresholds.
        spec: AdvisorSpec,
    },
    /// The latest window drift report.
    Drift {
        /// Stability tolerance evaluated into the response's `"stable"`.
        tolerance: f64,
    },
    /// Per-tenant statistics (budget, windows, resident bytes).
    Stats,
}

/// Advisor selection for [`TenantOp::Advise`].
#[derive(Debug)]
pub enum AdvisorSpec {
    /// [`logr::analytics::IndexAdvisor`].
    Index {
        /// Minimum workload share for a predicate to be proposed.
        min_share: f64,
    },
    /// [`logr::analytics::ViewAdvisor`].
    View {
        /// Minimum workload share for a join pair to be proposed.
        min_share: f64,
    },
    /// [`logr::analytics::QueryRecommender`].
    Recommend {
        /// The partial query to extend.
        partial: String,
        /// Minimum conditional probability for a suggestion.
        min_conditional: f64,
    },
    /// [`logr::analytics::DriftAdvisor`].
    Drift {
        /// Drift tolerance below which no alarms are raised.
        tolerance: f64,
    },
}

/// Parses one request line into a [`Frame`].
///
/// Never panics; every failure mode becomes a `Protocol` error carrying
/// whatever frame id could be recovered.
pub fn parse_frame(line: &str) -> Frame {
    if line.len() > MAX_FRAME_BYTES {
        return Frame {
            id: Json::Null,
            request: Err(protocol(format!(
                "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
                line.len()
            ))),
        };
    }
    let doc = match json::parse(line) {
        Ok(doc) => doc,
        Err(detail) => {
            return Frame {
                id: Json::Null,
                request: Err(protocol(format!("invalid JSON: {detail}"))),
            }
        }
    };
    let id = doc.get("id").cloned().unwrap_or(Json::Null);
    let request = decode_request(&doc);
    Frame { id, request }
}

fn decode_request(doc: &Json) -> Result<Request, ServerError> {
    if !matches!(doc, Json::Obj(_)) {
        return Err(protocol("frame must be a JSON object"));
    }
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| protocol("missing string field \"op\""))?;
    let tenant = doc.get("tenant").and_then(Json::as_str);
    match op {
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        "stats" => match tenant {
            None => Ok(Request::GlobalStats),
            Some(name) => Ok(Request::Tenant {
                name: name.to_owned(),
                source: source_config(doc)?,
                op: TenantOp::Stats,
            }),
        },
        _ => {
            let name = tenant
                .ok_or_else(|| protocol(format!("op \"{op}\" requires a \"tenant\"")))?
                .to_owned();
            Ok(Request::Tenant {
                name,
                source: source_config(doc)?,
                op: decode_tenant_op(op, doc)?,
            })
        }
    }
}

/// Decodes the optional `"source"` field: `"sql"`, `"template"`, or an
/// object `{"kind": "template", "depth"?, "max_children"?, "similarity"?}`
/// overriding the miner's default knobs.
fn source_config(doc: &Json) -> Result<Option<SourceConfig>, ServerError> {
    let Some(v) = doc.get("source") else { return Ok(None) };
    let config = match v {
        Json::Null => return Ok(None),
        Json::Str(kind) => source_kind(kind)?,
        Json::Obj(_) => {
            let kind = v
                .get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| protocol("\"source\" object requires a string \"kind\""))?;
            match source_kind(kind)? {
                SourceConfig::Sql => SourceConfig::Sql,
                SourceConfig::Template(defaults) => {
                    let usize_knob = |key: &str, default: usize| -> Result<usize, ServerError> {
                        match v.get(key) {
                            None | Some(Json::Null) => Ok(default),
                            Some(knob) => knob
                                .as_u64()
                                .map(|x| x as usize)
                                .ok_or_else(|| protocol(format!("\"{key}\" must be an integer"))),
                        }
                    };
                    SourceConfig::Template(TemplateConfig {
                        depth: usize_knob("depth", defaults.depth)?,
                        max_children: usize_knob("max_children", defaults.max_children)?,
                        similarity: optional_f64(v, "similarity", defaults.similarity)?,
                    })
                }
            }
        }
        _ => return Err(protocol("\"source\" must be a string or an object")),
    };
    config.validate().map_err(protocol)?;
    Ok(Some(config))
}

fn source_kind(kind: &str) -> Result<SourceConfig, ServerError> {
    match kind {
        "sql" => Ok(SourceConfig::Sql),
        "template" => Ok(SourceConfig::template()),
        _ => Err(protocol(format!("unknown source \"{kind}\" (expected \"sql\" or \"template\")"))),
    }
}

fn decode_tenant_op(op: &str, doc: &Json) -> Result<TenantOp, ServerError> {
    match op {
        "ingest" => {
            let statements = ingest_statements(doc)?;
            Ok(TenantOp::Ingest { statements })
        }
        "flush" => Ok(TenantOp::Flush),
        "checkpoint" => Ok(TenantOp::Checkpoint),
        "compact" => Ok(TenantOp::Compact),
        "close" => Ok(TenantOp::Close),
        "frequency" => Ok(TenantOp::Frequency { pred: required_pred(doc, "pred")? }),
        "share" => Ok(TenantOp::Share { pred: required_pred(doc, "pred")? }),
        "conditional" => Ok(TenantOp::Conditional {
            given: required_pred(doc, "given")?,
            pred: required_pred(doc, "pred")?,
        }),
        "cooccurrence" => Ok(TenantOp::Cooccurrence { class: required_class(doc)? }),
        "top_k" => {
            let k = doc
                .get("k")
                .and_then(Json::as_u64)
                .ok_or_else(|| protocol("top_k requires an integer \"k\""))?;
            if k == 0 || k > 10_000 {
                return Err(protocol("\"k\" must be in 1..=10000"));
            }
            Ok(TenantOp::TopK { class: required_class(doc)?, k: k as usize })
        }
        "advise" => Ok(TenantOp::Advise { spec: advisor_spec(doc)? }),
        "drift" => Ok(TenantOp::Drift { tolerance: optional_f64(doc, "tolerance", 0.0)? }),
        _ => Err(protocol(format!("unknown op \"{op}\""))),
    }
}

fn ingest_statements(doc: &Json) -> Result<Vec<String>, ServerError> {
    // `record`/`records` are source-neutral synonyms for `sql`/
    // `statements`: template-source tenants ingest free-form log lines,
    // not SQL, and their clients shouldn't have to pretend otherwise.
    for single in ["sql", "record"] {
        if let Some(v) = doc.get(single) {
            let text =
                v.as_str().ok_or_else(|| protocol(format!("\"{single}\" must be a string")))?;
            return Ok(vec![text.to_owned()]);
        }
    }
    let (key, items) = ["statements", "records"]
        .into_iter()
        .find_map(|key| Some((key, doc.get(key)?)))
        .ok_or_else(|| {
            protocol("ingest requires \"sql\", \"record\", \"statements\", or \"records\"")
        })?;
    let items =
        items.as_arr().ok_or_else(|| protocol(format!("\"{key}\" must be an array of strings")))?;
    if items.is_empty() {
        return Err(protocol(format!("\"{key}\" must not be empty")));
    }
    if items.len() > MAX_BATCH_STATEMENTS {
        return Err(protocol(format!(
            "\"{key}\" exceeds the {MAX_BATCH_STATEMENTS}-record batch cap"
        )));
    }
    items
        .iter()
        .map(|item| {
            item.as_str()
                .map(str::to_owned)
                .ok_or_else(|| protocol(format!("\"{key}\" entries must be strings")))
        })
        .collect()
}

fn optional_f64(doc: &Json, key: &str, default: f64) -> Result<f64, ServerError> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => {
            let x = v.as_f64().ok_or_else(|| protocol(format!("\"{key}\" must be a number")))?;
            if !x.is_finite() {
                return Err(protocol(format!("\"{key}\" must be finite")));
            }
            Ok(x)
        }
    }
}

fn advisor_spec(doc: &Json) -> Result<AdvisorSpec, ServerError> {
    let which = doc
        .get("advisor")
        .and_then(Json::as_str)
        .ok_or_else(|| protocol("advise requires a string \"advisor\""))?;
    match which {
        "index" => Ok(AdvisorSpec::Index { min_share: optional_f64(doc, "min_share", 0.1)? }),
        "view" => Ok(AdvisorSpec::View { min_share: optional_f64(doc, "min_share", 0.1)? }),
        "recommend" => {
            let partial = doc
                .get("partial")
                .and_then(Json::as_str)
                .ok_or_else(|| protocol("advisor \"recommend\" requires a string \"partial\""))?
                .to_owned();
            Ok(AdvisorSpec::Recommend {
                partial,
                min_conditional: optional_f64(doc, "min_conditional", 0.5)?,
            })
        }
        "drift" => Ok(AdvisorSpec::Drift { tolerance: optional_f64(doc, "tolerance", 0.0)? }),
        _ => Err(protocol(format!("unknown advisor \"{which}\""))),
    }
}

fn required_class(doc: &Json) -> Result<FeatureClass, ServerError> {
    let name = doc
        .get("class")
        .and_then(Json::as_str)
        .ok_or_else(|| protocol("missing string field \"class\""))?;
    class_from_name(name).ok_or_else(|| protocol(format!("unknown feature class \"{name}\"")))
}

/// Parses a wire feature-class name.
pub fn class_from_name(name: &str) -> Option<FeatureClass> {
    match name {
        "select" => Some(FeatureClass::Select),
        "from" => Some(FeatureClass::From),
        "where" => Some(FeatureClass::Where),
        "group_by" => Some(FeatureClass::GroupBy),
        "order_by" => Some(FeatureClass::OrderBy),
        "template" => Some(FeatureClass::Template),
        "param" => Some(FeatureClass::Param),
        _ => None,
    }
}

/// The wire name of a feature class.
pub fn class_name(class: FeatureClass) -> &'static str {
    match class {
        FeatureClass::Select => "select",
        FeatureClass::From => "from",
        FeatureClass::Where => "where",
        FeatureClass::GroupBy => "group_by",
        FeatureClass::OrderBy => "order_by",
        FeatureClass::Template => "template",
        FeatureClass::Param => "param",
    }
}

fn required_pred(doc: &Json, key: &str) -> Result<Pred, ServerError> {
    let v = doc.get(key).ok_or_else(|| protocol(format!("missing predicate field \"{key}\"")))?;
    pred_from_json(v)
}

/// Decodes the wire predicate encoding into a [`Pred`].
///
/// The encoding mirrors the [`Pred`] constructors — an object with exactly
/// one of: `{"table": "t"}`, `{"column": "c"}`, `{"column_eq": "c"}`,
/// `{"where_atom": "a = 1"}`, `{"template": "user <*> logged in"}`,
/// `{"param": "ip"}`, `{"joins": ["a", "b"]}`,
/// `{"and": [p, ...]}`, `{"or": [p, ...]}`, `{"not": p}`.
pub fn pred_from_json(v: &Json) -> Result<Pred, ServerError> {
    let pairs = match v {
        Json::Obj(pairs) => pairs,
        _ => return Err(protocol("predicate must be a JSON object")),
    };
    if pairs.len() != 1 {
        return Err(protocol("predicate object must have exactly one key"));
    }
    let (key, val) = &pairs[0];
    let text_leaf = |ctor: fn(String) -> Pred| {
        val.as_str()
            .map(|t| ctor(t.to_owned()))
            .ok_or_else(|| protocol(format!("\"{key}\" expects a string")))
    };
    match key.as_str() {
        "table" => text_leaf(Pred::table),
        "column" => text_leaf(Pred::column),
        "column_eq" => text_leaf(Pred::column_eq),
        "where_atom" => text_leaf(Pred::where_atom),
        "template" => text_leaf(Pred::template),
        "param" => text_leaf(Pred::param),
        "not" => Ok(pred_from_json(val)?.not()),
        "joins" => match val.as_arr() {
            Some([a, b]) => match (a.as_str(), b.as_str()) {
                (Some(a), Some(b)) => Ok(Pred::joins(a, b)),
                _ => Err(protocol("\"joins\" expects two table-name strings")),
            },
            _ => Err(protocol("\"joins\" expects an array of two strings")),
        },
        "and" | "or" => {
            let items =
                val.as_arr().ok_or_else(|| protocol(format!("\"{key}\" expects an array")))?;
            let mut parsed = items.iter().map(pred_from_json);
            let first =
                parsed.next().ok_or_else(|| protocol(format!("\"{key}\" must not be empty")))??;
            parsed.try_fold(first, |acc, item| {
                let item = item?;
                Ok(if key == "and" { acc.and(item) } else { acc.or(item) })
            })
        }
        _ => Err(protocol(format!("unknown predicate key \"{key}\""))),
    }
}

// ---------------------------------------------------------------------------
// Response encoding
// ---------------------------------------------------------------------------

/// Encodes a success response line (with trailing newline).
pub fn ok_frame(id: &Json, result: Json) -> String {
    let mut text =
        obj(vec![("id", id.clone()), ("ok", Json::Bool(true)), ("result", result)]).to_text();
    text.push('\n');
    text
}

/// Encodes an error response line (with trailing newline).
pub fn err_frame(id: &Json, err: &ServerError) -> String {
    let mut text = obj(vec![
        ("id", id.clone()),
        ("ok", Json::Bool(false)),
        ("error", obj(vec![("code", s(err.wire_code())), ("detail", s(&err.to_string()))])),
    ])
    .to_text();
    text.push('\n');
    text
}

/// Encodes a feature as `{"class": ..., "text": ...}`.
pub fn feature_json(f: &Feature) -> Json {
    obj(vec![("class", s(class_name(f.class))), ("text", s(&f.text))])
}

/// Encodes a list of advice entries.
pub fn advice_json(items: &[Advice]) -> Json {
    Json::Arr(
        items
            .iter()
            .map(|a| {
                obj(vec![
                    ("kind", s(advice_kind_name(&a.kind))),
                    ("subject", s(&a.subject)),
                    ("features", Json::Arr(a.features.iter().map(feature_json).collect())),
                    ("estimated", n(a.estimated)),
                    ("share", n(a.share)),
                ])
            })
            .collect(),
    )
}

fn advice_kind_name(kind: &AdviceKind) -> &'static str {
    match kind {
        AdviceKind::Index => "index",
        AdviceKind::MaterializedView => "materialized_view",
        AdviceKind::Recommendation => "recommendation",
        AdviceKind::Drift => "drift",
        _ => "other",
    }
}

/// Encodes a drift report; `baseline` resolves the report's baseline
/// feature ids to text (ids out of range render as `"feature #<id>"`).
pub fn drift_json(report: &DriftReport, tolerance: f64, baseline: Option<&Codebook>) -> Json {
    let resolve = |id: logr::feature::FeatureId| -> String {
        match baseline {
            Some(cb) if id.index() < cb.len() => cb.feature(id).to_string(),
            _ => format!("feature #{}", id.0),
        }
    };
    obj(vec![
        ("overall", n(report.overall)),
        ("stable", Json::Bool(report.is_stable(tolerance))),
        (
            "per_feature",
            Json::Arr(
                report
                    .per_feature
                    .iter()
                    .map(|(id, js)| obj(vec![("feature", s(&resolve(*id))), ("js", n(*js))]))
                    .collect(),
            ),
        ),
        ("new_features", Json::Arr(report.new_features.iter().map(|t| s(t)).collect())),
        (
            "vanished_features",
            Json::Arr(report.vanished_features.iter().map(|id| s(&resolve(*id))).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_core_ops() {
        let f = parse_frame(r#"{"id":1,"op":"ping"}"#);
        assert!(matches!(f.request, Ok(Request::Ping)));
        assert_eq!(f.id, Json::Num(1.0));

        let f = parse_frame(r#"{"id":2,"op":"ingest","tenant":"a","sql":"SELECT x FROM t"}"#);
        match f.request {
            Ok(Request::Tenant { name, source: None, op: TenantOp::Ingest { statements } }) => {
                assert_eq!(name, "a");
                assert_eq!(statements, vec!["SELECT x FROM t".to_owned()]);
            }
            other => panic!("unexpected: {other:?}"),
        }

        let f = parse_frame(r#"{"op":"top_k","tenant":"a","class":"where","k":3}"#);
        assert!(matches!(
            f.request,
            Ok(Request::Tenant { op: TenantOp::TopK { class: FeatureClass::Where, k: 3 }, .. })
        ));
    }

    #[test]
    fn malformed_frames_become_protocol_errors_with_echoed_id() {
        let f = parse_frame("not json");
        assert!(matches!(f.request, Err(ServerError::Protocol { .. })));
        assert_eq!(f.id, Json::Null);

        let f = parse_frame(r#"{"id":"x","op":"frequency","tenant":"a"}"#);
        assert_eq!(f.id, Json::Str("x".to_owned()));
        let err = f.request.unwrap_err();
        assert_eq!(err.wire_code(), "Protocol");

        let f = parse_frame(r#"{"op":"ingest","tenant":"a","statements":[]}"#);
        assert!(f.request.is_err());

        let f = parse_frame(r#"{"op":"frequency"}"#);
        assert!(f.request.is_err(), "tenant ops require a tenant");
    }

    #[test]
    fn record_synonyms_and_source_field_decode() {
        // `record`/`records` carry the same batch as `sql`/`statements`.
        let f = parse_frame(r#"{"op":"ingest","tenant":"svc","records":["a b","c d"]}"#);
        match f.request {
            Ok(Request::Tenant { op: TenantOp::Ingest { statements }, .. }) => {
                assert_eq!(statements, vec!["a b".to_owned(), "c d".to_owned()]);
            }
            other => panic!("unexpected: {other:?}"),
        }
        let f = parse_frame(r#"{"op":"ingest","tenant":"svc","record":"one line"}"#);
        match f.request {
            Ok(Request::Tenant { op: TenantOp::Ingest { statements }, .. }) => {
                assert_eq!(statements, vec!["one line".to_owned()]);
            }
            other => panic!("unexpected: {other:?}"),
        }

        // String and object source spellings.
        let f = parse_frame(r#"{"op":"flush","tenant":"svc","source":"template"}"#);
        match f.request {
            Ok(Request::Tenant { source, .. }) => {
                assert_eq!(source, Some(SourceConfig::template()));
            }
            other => panic!("unexpected: {other:?}"),
        }
        let f = parse_frame(
            r#"{"op":"flush","tenant":"svc","source":{"kind":"template","depth":3,"similarity":0.7}}"#,
        );
        match f.request {
            Ok(Request::Tenant { source: Some(SourceConfig::Template(t)), .. }) => {
                assert_eq!(t.depth, 3);
                assert_eq!(t.max_children, TemplateConfig::default().max_children);
                assert!((t.similarity - 0.7).abs() < 1e-12);
            }
            other => panic!("unexpected: {other:?}"),
        }
        let f = parse_frame(r#"{"op":"flush","tenant":"svc","source":"sql"}"#);
        assert!(matches!(f.request, Ok(Request::Tenant { source: Some(SourceConfig::Sql), .. })));

        // Bad sources are protocol errors: unknown kind, invalid knobs.
        for bad in [
            r#"{"op":"flush","tenant":"svc","source":"drain"}"#,
            r#"{"op":"flush","tenant":"svc","source":7}"#,
            r#"{"op":"flush","tenant":"svc","source":{"kind":"template","depth":0}}"#,
            r#"{"op":"flush","tenant":"svc","source":{"kind":"template","similarity":2.0}}"#,
            r#"{"op":"flush","tenant":"svc","source":{"depth":2}}"#,
        ] {
            let f = parse_frame(bad);
            assert_eq!(f.request.unwrap_err().wire_code(), "Protocol", "accepted {bad}");
        }
    }

    #[test]
    fn pred_wire_encoding_round_trips_through_constructors() {
        let v = json::parse(
            r#"{"and":[{"table":"orders"},{"or":[{"column":"o_id"},{"where_atom":"x = 1"}]}]}"#,
        )
        .unwrap();
        let wire = pred_from_json(&v).unwrap();
        let built = Pred::table("orders").and(Pred::column("o_id").or(Pred::where_atom("x = 1")));
        assert_eq!(format!("{wire:?}"), format!("{built:?}"));

        let v =
            json::parse(r#"{"not":{"and":[{"template":"user <*> in"},{"param":"ip"}]}}"#).unwrap();
        let wire = pred_from_json(&v).unwrap();
        let built = Pred::template("user <*> in").and(Pred::param("ip")).not();
        assert_eq!(format!("{wire:?}"), format!("{built:?}"));

        for bad in [
            r#"{"table":1}"#,
            r#"{"and":[]}"#,
            r#"{"joins":["a"]}"#,
            r#"{"nope":"x"}"#,
            r#"{"table":"a","column":"b"}"#,
            "[]",
        ] {
            let v = json::parse(bad).unwrap();
            assert!(pred_from_json(&v).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn wire_codes_match_engine_variant_names() {
        assert_eq!(ServerError::from(logr::Error::ReadOnly).wire_code(), "ReadOnly");
        assert_eq!(
            ServerError::from(logr::Error::StorageExhausted { detail: "d".into() }).wire_code(),
            "StorageExhausted"
        );
        assert_eq!(protocol("x").wire_code(), "Protocol");
    }

    #[test]
    fn response_frames_are_single_lines() {
        let ok = ok_frame(&Json::Num(1.0), s("pong"));
        assert_eq!(ok, "{\"id\":1,\"ok\":true,\"result\":\"pong\"}\n");
        let err = err_frame(&Json::Null, &protocol("bad\nframe"));
        assert_eq!(err.matches('\n').count(), 1, "newline escaped in detail");
        assert!(err.ends_with('\n'));
    }
}
