//! Tenant registry: lazily opened per-tenant engines under one root,
//! sharing one global resident-byte budget.
//!
//! Each tenant owns a subdirectory `<root>/<name>` holding a complete,
//! standalone engine store (manifest, delta log, spilled shards, lock
//! file) — a tenant's store can always be opened later by a plain
//! [`logr::Engine`] session; the daemon adds nothing to the on-disk
//! format. Engines open lazily on first use, exclusively locked through
//! the engine's own `StoreLock`, and write through a per-tenant
//! [`GroupCommitVfs`] so the committer can coalesce their delta fsyncs.
//!
//! # Budget apportionment
//!
//! The server is configured with one **global** resident-byte budget for
//! spilled shard caches. The registry splits it evenly across live
//! tenants and re-apportions on every open and close — admitting a tenant
//! shrinks everyone's share (evicting resident shards as needed, oldest
//! first), closing one returns its share to the survivors. Apportionment
//! only governs which shards stay *resident in memory*; it never changes
//! what is on disk.

use crate::commit::GroupCommitVfs;
use crate::protocol::{protocol, ServerError};
use logr::cluster::vfs::Vfs;
use logr::{Engine, SourceConfig};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Maximum tenant-name length, in bytes.
pub const MAX_TENANT_NAME: usize = 64;

/// Validates a tenant name: 1–64 bytes of `[A-Za-z0-9_-]`.
///
/// The name becomes a single path component under the server root, so the
/// alphabet excludes separators, `.`, and anything else that could
/// traverse or alias directories.
pub fn validate_name(name: &str) -> Result<(), ServerError> {
    if name.is_empty() || name.len() > MAX_TENANT_NAME {
        return Err(protocol(format!("tenant name must be 1..={MAX_TENANT_NAME} bytes")));
    }
    if !name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-') {
        return Err(protocol("tenant name may only contain [A-Za-z0-9_-]".to_owned()));
    }
    Ok(())
}

/// Engine parameters every tenant store is opened with.
#[derive(Debug, Clone)]
pub struct EngineProfile {
    /// Queries per summarization window.
    pub window: u64,
    /// Clusters (patterns) per window summary.
    pub clusters: usize,
    /// Deterministic seed for clustering.
    pub seed: u64,
    /// Default source (featurizer) for tenants that don't name one in
    /// their first frame. A request's `"source"` field overrides this at
    /// first open; a resumed store's manifest always wins over both.
    pub source: SourceConfig,
}

impl Default for EngineProfile {
    fn default() -> EngineProfile {
        EngineProfile { window: 64, clusters: 4, seed: 42, source: SourceConfig::Sql }
    }
}

/// One live tenant: its engine, its group-commit wrapper, and the
/// rebase-needed flag the committer raises when a flush fails.
#[derive(Debug)]
pub struct Tenant {
    /// The validated tenant name.
    pub name: String,
    /// The tenant's engine, writing through [`Tenant::commit`].
    pub engine: Engine,
    /// The group-commit vfs wrapper holding this tenant's deferred
    /// delta fsyncs.
    pub commit: Arc<GroupCommitVfs>,
    needs_rebase: AtomicBool,
}

impl Tenant {
    /// True when a failed flush left the delta log's durability unknown
    /// and the tenant must be checkpointed before the next ack.
    pub fn needs_rebase(&self) -> bool {
        self.needs_rebase.load(Ordering::Acquire)
    }

    /// Raise or clear the rebase flag.
    pub fn set_needs_rebase(&self, value: bool) {
        self.needs_rebase.store(value, Ordering::Release);
    }
}

/// The set of live tenants plus the budget math over them.
#[derive(Debug)]
pub struct TenantRegistry {
    root: PathBuf,
    base_vfs: Arc<dyn Vfs>,
    global_budget: usize,
    profile: EngineProfile,
    tenants: Mutex<BTreeMap<String, Arc<Tenant>>>,
}

impl TenantRegistry {
    /// A registry over `root`, opening tenant engines on `base_vfs` with
    /// `profile`, apportioning `global_budget` resident bytes.
    pub fn new(
        root: PathBuf,
        base_vfs: Arc<dyn Vfs>,
        profile: EngineProfile,
        global_budget: usize,
    ) -> TenantRegistry {
        TenantRegistry {
            root,
            base_vfs,
            global_budget,
            profile,
            tenants: Mutex::new(BTreeMap::new()),
        }
    }

    /// The configured global resident-byte budget.
    pub fn global_budget(&self) -> usize {
        self.global_budget
    }

    /// The per-tenant budget share at `n` live tenants (the whole
    /// budget when none are).
    pub fn share_at(&self, n: usize) -> usize {
        self.global_budget.checked_div(n).unwrap_or(self.global_budget)
    }

    fn lock_tenants(
        &self,
    ) -> Result<std::sync::MutexGuard<'_, BTreeMap<String, Arc<Tenant>>>, ServerError> {
        self.tenants.lock().map_err(|_| ServerError::Engine(logr::Error::Poisoned))
    }

    /// The tenant's engine, opening (and locking) its store on first use.
    ///
    /// `source` is the request's `"source"` field: it selects the
    /// featurizer when this call **creates** the tenant's store. On an
    /// already-open tenant — or a store resumed from disk, where the
    /// manifest's stored source always wins — a mismatching explicit
    /// `source` is a protocol error rather than a silent ignore.
    ///
    /// Opening a new tenant re-apportions the global budget over the
    /// grown tenant set before returning.
    pub fn get_or_open(
        &self,
        name: &str,
        source: Option<SourceConfig>,
    ) -> Result<Arc<Tenant>, ServerError> {
        validate_name(name)?;
        let mut tenants = self.lock_tenants()?;
        if let Some(t) = tenants.get(name) {
            Self::check_source(name, t.engine.source()?, source)?;
            return Ok(t.clone());
        }
        let share = self.share_at(tenants.len() + 1);
        let commit = Arc::new(GroupCommitVfs::new(self.base_vfs.clone()));
        let engine = Engine::builder()
            .window(self.profile.window)
            .clusters(self.profile.clusters)
            .seed(self.profile.seed)
            .source(source.unwrap_or(self.profile.source))
            .resident_budget(share)
            .vfs(commit.clone() as Arc<dyn Vfs>)
            .open(self.root.join(name))?;
        // A resumed store keeps its manifest's source; dropping the
        // engine here releases the store lock before we report the
        // conflict.
        if let Err(e) = Self::check_source(name, engine.source()?, source) {
            drop(engine);
            return Err(e);
        }
        let tenant = Arc::new(Tenant {
            name: name.to_owned(),
            engine,
            commit,
            needs_rebase: AtomicBool::new(false),
        });
        tenants.insert(name.to_owned(), tenant.clone());
        Self::apportion(&tenants, share)?;
        Ok(tenant)
    }

    /// The tenant if it is currently open.
    pub fn get(&self, name: &str) -> Result<Option<Arc<Tenant>>, ServerError> {
        validate_name(name)?;
        Ok(self.lock_tenants()?.get(name).cloned())
    }

    /// Closes a tenant: flushes its deferred fsyncs, releases its engine
    /// (and store lock), and returns its budget share to the survivors.
    pub fn close(&self, name: &str) -> Result<(), ServerError> {
        validate_name(name)?;
        let tenant = {
            let mut tenants = self.lock_tenants()?;
            let tenant = tenants
                .remove(name)
                .ok_or_else(|| protocol(format!("tenant \"{name}\" is not open")))?;
            let share = self.share_at(tenants.len().max(1));
            Self::apportion(&tenants, share)?;
            tenant
        };
        // Flush outside the registry lock: a slow disk must not block
        // other tenants opening/closing.
        tenant.commit.flush().map_err(|e| ServerError::Engine(logr::Error::from(e)))?;
        Ok(())
    }

    /// Every live tenant, in name order.
    pub fn list(&self) -> Result<Vec<Arc<Tenant>>, ServerError> {
        Ok(self.lock_tenants()?.values().cloned().collect())
    }

    /// Number of live tenants.
    pub fn len(&self) -> Result<usize, ServerError> {
        Ok(self.lock_tenants()?.len())
    }

    /// True when no tenant is open.
    pub fn is_empty(&self) -> Result<bool, ServerError> {
        Ok(self.lock_tenants()?.is_empty())
    }

    /// Errors when a request's explicit source disagrees with the source
    /// the tenant's engine actually runs.
    fn check_source(
        name: &str,
        actual: SourceConfig,
        requested: Option<SourceConfig>,
    ) -> Result<(), ServerError> {
        match requested {
            Some(requested) if requested != actual => Err(protocol(format!(
                "tenant \"{name}\" runs source {actual:?} but the request asked for {requested:?}"
            ))),
            _ => Ok(()),
        }
    }

    fn apportion(tenants: &BTreeMap<String, Arc<Tenant>>, share: usize) -> Result<(), ServerError> {
        for tenant in tenants.values() {
            tenant.engine.set_resident_budget(share)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_validation_rejects_traversal_and_separators() {
        for ok in ["a", "tenant-1", "A_b-C", &"x".repeat(64)] {
            assert!(validate_name(ok).is_ok(), "rejected {ok:?}");
        }
        for bad in ["", "..", "a/b", "a\\b", ".", "a.b", "a b", "é", &"x".repeat(65)] {
            assert!(validate_name(bad).is_err(), "accepted {bad:?}");
        }
    }
}
