//! Minimal JSON tree, parser, and writer for the wire protocol.
//!
//! The workspace is offline and dependency-free, so the server carries its
//! own JSON layer instead of `serde`. It implements exactly the subset the
//! protocol needs: UTF-8 text, `f64` numbers, and bounded nesting. Objects
//! preserve insertion order (a `Vec` of pairs — request frames are small, so
//! linear key lookup beats a map).
//!
//! Robustness contract: [`parse`] never panics and rejects pathological
//! input structurally — nesting deeper than [`MAX_DEPTH`] and frames larger
//! than the caller-enforced line cap fail with a description instead of
//! recursing unboundedly.

use std::fmt::Write as _;

/// Maximum nesting depth [`parse`] accepts before rejecting the document.
///
/// Protocol frames nest a handful of levels (request → predicate tree);
/// 32 leaves generous headroom while bounding parser recursion.
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value to compact JSON text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self);
        out
    }
}

/// Convenience constructor for an object from key/value pairs.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Convenience constructor for a string value.
pub fn s(text: &str) -> Json {
    Json::Str(text.to_owned())
}

/// Convenience constructor for a number value.
pub fn n(value: f64) -> Json {
    Json::Num(value)
}

fn write_value(out: &mut String, value: &Json) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(x) => write_number(out, *x),
        Json::Str(text) => write_string(out, text),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (key, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity; degrade to null rather than emit an
        // unparseable token.
        out.push_str("null");
        return;
    }
    if x.fract() == 0.0 && x.abs() < 9.0e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_string(out: &mut String, text: &str) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document from `text`.
///
/// Trailing non-whitespace after the document is an error (a frame is
/// exactly one value). Errors carry a human-readable description with the
/// byte offset where parsing failed.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn consume(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte 0x{b:02x} at offset {}", self.pos)),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.consume(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let run = &self.bytes[start..self.pos];
                match std::str::from_utf8(run) {
                    Ok(text) => out.push_str(text),
                    Err(_) => return Err(format!("invalid UTF-8 near offset {start}")),
                }
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(format!("unescaped control byte at offset {}", self.pos)),
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), String> {
        let b = self.peek().ok_or_else(|| "unterminated escape".to_owned())?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xd800..0xdc00).contains(&hi) {
                    // Surrogate pair: require the matching low half.
                    if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                        return Err(format!("lone surrogate at offset {}", self.pos));
                    }
                    self.pos += 2;
                    let lo = self.hex4()?;
                    if !(0xdc00..0xe000).contains(&lo) {
                        return Err(format!("invalid surrogate pair at offset {}", self.pos));
                    }
                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                } else {
                    hi
                };
                match char::from_u32(code) {
                    Some(c) => out.push(c),
                    None => return Err(format!("invalid scalar at offset {}", self.pos)),
                }
            }
            _ => return Err(format!("invalid escape at offset {}", self.pos - 1)),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| "truncated \\u escape".to_owned())?;
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(format!("invalid hex digit at offset {}", self.pos)),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at offset {start}"))?;
        let value: f64 = text.parse().map_err(|_| format!("invalid number at offset {start}"))?;
        if !value.is_finite() {
            return Err(format!("non-finite number at offset {start}"));
        }
        Ok(Json::Num(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let doc = r#"{"id":7,"ok":true,"name":"a\"b\\c\nd","xs":[1,2.5,-3e2,null],"o":{}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("name").and_then(Json::as_str), Some("a\"b\\c\nd"));
        assert_eq!(v.get("xs").and_then(Json::as_arr).map(<[Json]>::len), Some(4));
        let text = v.to_text();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_including_surrogates() {
        let v = parse(r#""é 😀 A""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{e9} \u{1f600} A"));
        assert!(parse(r#""\ud800""#).is_err());
        assert!(parse(r#""\ud800A""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "nul",
            "1 2",
            "\"unterminated",
            "{\"a\" 1}",
            "--1",
            "1e999",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let mut doc = String::new();
        for _ in 0..(MAX_DEPTH + 2) {
            doc.push('[');
        }
        for _ in 0..(MAX_DEPTH + 2) {
            doc.push(']');
        }
        assert!(parse(&doc).is_err());
        let shallow = "[".repeat(8) + &"]".repeat(8);
        assert!(parse(&shallow).is_ok());
    }

    #[test]
    fn number_edge_cases() {
        assert_eq!(parse("9007199254740993").unwrap().as_u64(), Some(9007199254740992));
        assert_eq!(parse("-0.5").unwrap().as_f64(), Some(-0.5));
        assert_eq!(parse("2.5").unwrap().as_u64(), None);
        assert_eq!(Json::Num(f64::NAN).to_text(), "null");
        assert_eq!(Json::Num(3.0).to_text(), "3");
        assert_eq!(Json::Num(0.25).to_text(), "0.25");
    }

    #[test]
    fn control_chars_escape_on_write() {
        let text = Json::Str("\u{1}\t".to_owned()).to_text();
        assert_eq!(text, "\"\\u0001\\t\"");
        assert_eq!(parse(&text).unwrap().as_str(), Some("\u{1}\t"));
    }
}
