//! `logr-server` — a multi-tenant ingestion daemon and wire-level
//! analytics surface over [`logr::Engine`].
//!
//! One daemon owns N tenant engines (per-tenant subdirectories under one
//! root, lazily opened, exclusively locked through the engine's own store
//! lock), ingests query-log statements with **group commit** — per-tenant
//! write queues whose window-close delta fsyncs are coalesced across
//! tenants within a configurable commit interval — and serves the whole
//! `logr::analytics` read surface off lock-free snapshots. Built on
//! `std::net` only: no runtime, no serialization dependency.
//!
//! ```no_run
//! use logr_server::{Server, ServerConfig};
//! let server = Server::bind(ServerConfig::new("/var/lib/logr"), "127.0.0.1:7878")?;
//! server.run()?; // blocks until a shutdown frame
//! # Ok::<(), logr_server::ServerError>(())
//! ```
//!
//! # Protocol reference
//!
//! The wire protocol is **line-delimited JSON over TCP**: each request is
//! one JSON object on one `\n`-terminated line (at most
//! [`protocol::MAX_FRAME_BYTES`] bytes), answered in order by one
//! response line on the same connection.
//!
//! ## Frame format
//!
//! Request: `{"id": <any>, "op": "<op>", "tenant": "<name>", ...}` — `id`
//! is echoed verbatim in the response (defaults to `null`); `tenant`
//! (1–64 bytes of `[A-Za-z0-9_-]`) is required for every tenant-scoped
//! op. Success: `{"id": ..., "ok": true, "result": ...}`. Failure:
//! `{"id": ..., "ok": false, "error": {"code": "...", "detail": "..."}}`.
//!
//! Every tenant-scoped frame may carry an optional `"source"` field
//! naming the featurizer the tenant runs: `"sql"` (the default — parse →
//! anonymize → regularize), `"template"` (Drain-style template mining
//! for free-form service logs), or an object
//! `{"kind": "template", "depth"?, "max_children"?, "similarity"?}`
//! overriding the miner's knobs. The field takes effect on the frame
//! that **creates** the tenant's store; afterwards the store's manifest
//! pins the source forever (a resumed store ignores the server profile
//! too), and a frame whose explicit `"source"` disagrees with the source
//! in force fails with a `Protocol` error instead of being silently
//! ignored.
//!
//! ## Operations
//!
//! | op | extra fields | result |
//! |----|--------------|--------|
//! | `ping` | — | `"pong"` |
//! | `shutdown` | — | `{"stopping": true}`, then the daemon drains and exits |
//! | `stats` | optional `tenant` | daemon-wide or per-tenant statistics |
//! | `ingest` | `sql` / `record` *or* `statements` / `records` (≤ 4096) | `{"ingested", "closed", "windows_closed"}` |
//! | `flush` | — | `{"closed": bool}` (closes a partial window) |
//! | `checkpoint` | — | `{"durable": true}` (delta log folded into the base) |
//! | `compact` | — | `{"merged": n}` (spilled shards merged) |
//! | `close` | — | `{"closed": true}` (engine released, budget re-apportioned) |
//! | `frequency` | `pred` | estimated matching queries (`null` before any summary) |
//! | `share` | `pred` | workload share in `[0, 1]` |
//! | `conditional` | `given`, `pred` | `p(pred | given)` |
//! | `cooccurrence` | `class` | `[{"a", "b", "estimated"}, ...]` |
//! | `top_k` | `class`, `k` | `[{"feature", "estimated"}, ...]` |
//! | `advise` | `advisor` + thresholds | `[{"kind", "subject", "features", "estimated", "share"}, ...]` |
//! | `drift` | optional `tolerance` | drift report or `null` |
//!
//! Predicates mirror the [`logr::analytics::Pred`] constructors:
//! `{"table": "t"}`, `{"column": "c"}`, `{"column_eq": "c"}`,
//! `{"where_atom": "a = 1"}`, `{"template": "user <*> logged in"}`,
//! `{"param": "ip"}`, `{"joins": ["a", "b"]}`, `{"and": [...]}`,
//! `{"or": [...]}`, `{"not": p}` (negations evaluate as mixture
//! complements). Feature classes are `"select"`, `"from"`, `"where"`,
//! `"group_by"`, `"order_by"` for the SQL source and `"template"`,
//! `"param"` for the template source. Advisors are `"index"` / `"view"`
//! (with `min_share`), `"recommend"` (with `partial`,
//! `min_conditional`), and `"drift"` (with `tolerance`).
//!
//! ## Error codes
//!
//! `error.code` is `"Protocol"` for wire-level failures (malformed JSON,
//! unknown op, invalid tenant name, oversized frame) and otherwise the
//! [`logr::Error`] variant name: `Io`, `Spill`, `Portable`, `Config`,
//! `UnknownFeature`, `MissingManifest`, `ManifestVersion`,
//! `CorruptManifest`, `MissingShard`, `StoreMismatch`, `StoreLocked`,
//! `StorageExhausted`, `ReadOnly`, `NotDurable`, `Poisoned` (future
//! variants degrade to `Engine`). Every failure is scoped to its request:
//! a malformed frame or one tenant's `StorageExhausted` never takes down
//! the connection, the daemon, or another tenant.
//!
//! ## Commit/ack semantics
//!
//! Writes (`ingest`, `flush`, `checkpoint`, `compact`) are executed by
//! per-tenant writer workers in arrival order. When a write appends to
//! the tenant's delta log (a window close), its fsync is **deferred**
//! into the tenant's [`commit::GroupCommitVfs`] and the response is
//! parked; the committer thread flushes each tenant once per
//! [`server::ServerConfig::commit_interval`] and only then releases the
//! parked responses — so one fsync covers every batch the interval
//! accumulated, and **an acked window close has always been fsynced**.
//! Statements buffered inside a still-open window are acked immediately
//! and are durable only from the close that later covers them — the same
//! contract a standalone [`logr::Engine`] gives `ingest()` callers. If a
//! covering flush fails, every parked response it covered fails with the
//! typed error and the tenant is rebased (full checkpoint through the
//! untouched synchronous path) before its next ack.
//!
//! # Crate layout
//!
//! * [`json`] — dependency-free JSON tree, parser (depth-capped), writer.
//! * [`protocol`] — frame parsing, [`ServerError`], response encoding.
//! * [`commit`] — [`commit::GroupCommitVfs`]: the delta-fsync deferral.
//! * [`tenant`] — lazy tenant registry + global budget apportionment.
//! * [`server`] — accept loop, worker pools, committer, dispatch.

#![warn(missing_docs)]

pub mod commit;
pub mod json;
pub mod protocol;
pub mod server;
pub mod tenant;

pub use commit::GroupCommitVfs;
pub use protocol::ServerError;
pub use server::{Server, ServerConfig, ServerHandle};
pub use tenant::{EngineProfile, TenantRegistry};
