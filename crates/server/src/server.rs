//! The daemon: TCP accept loop, connection workers, per-tenant write
//! queues, and the group-commit committer.
//!
//! # Thread topology
//!
//! * **1 accept thread** — hands accepted sockets to the connection pool.
//! * **`threads` connection workers** (sized by [`ServerConfig::threads`],
//!   defaulting to the `LOGR_THREADS` environment variable) — parse
//!   frames, serve reads directly off lock-free [`logr::EngineSnapshot`]s,
//!   and enqueue writes.
//! * **`threads` writer workers** — drain per-tenant write queues
//!   (tenants are hashed onto workers, so one tenant's writes stay
//!   ordered) and run ingest/flush/checkpoint/compact against the
//!   tenant's engine.
//! * **1 committer thread** — every [`ServerConfig::commit_interval`] it
//!   flushes each tenant's deferred delta fsyncs once and only then
//!   releases the acks parked behind them (group commit).
//!
//! Reads never block the writers: they clone the engine's published
//! snapshot `Arc` and compute on it outside any engine lock.

use crate::json::{n, obj, s, Json};
use crate::protocol::{
    advice_json, class_name, drift_json, err_frame, feature_json, ok_frame, parse_frame, protocol,
    AdvisorSpec, Frame, Request, ServerError, TenantOp, MAX_FRAME_BYTES,
};
use crate::tenant::{EngineProfile, Tenant, TenantRegistry};
use logr::analytics::{
    Advisor, DriftAdvisor, IndexAdvisor, QueryRecommender, ViewAdvisor, WorkloadQuery,
};
use logr::cluster::vfs::{RealFs, Vfs};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

/// How long a server thread sleeps between checks of the stop flag when
/// it would otherwise block indefinitely (socket reads, queue waits).
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Upper bound a connection worker waits for a write ack before failing
/// the request (the committer releases acks every commit interval, so
/// hitting this means a writer died or the disk hung past retries).
const ACK_TIMEOUT: Duration = Duration::from_secs(60);

/// Server configuration. Construct with [`ServerConfig::new`], then
/// override fields builder-style.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Directory under which each tenant gets a subdirectory store.
    pub root: PathBuf,
    /// Storage layer tenant engines write through (wrapped per-tenant in
    /// a [`crate::commit::GroupCommitVfs`]). Defaults to [`RealFs`].
    pub vfs: Arc<dyn Vfs>,
    /// Engine parameters for every tenant store.
    pub profile: EngineProfile,
    /// Global resident-byte budget apportioned across tenants' spill
    /// stores. Defaults to `usize::MAX` (everything stays resident).
    pub global_budget: usize,
    /// Connection-worker and writer-worker pool size. Defaults to the
    /// `LOGR_THREADS` environment variable, else 2; clamped to ≥ 1.
    pub threads: usize,
    /// Group-commit interval: how long delta fsyncs may coalesce before
    /// the covering flush releases their acks.
    pub commit_interval: Duration,
}

impl ServerConfig {
    /// Defaults over `root` (see the field docs).
    pub fn new(root: impl Into<PathBuf>) -> ServerConfig {
        let threads = std::env::var("LOGR_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(2)
            .max(1);
        ServerConfig {
            root: root.into(),
            vfs: Arc::new(RealFs),
            profile: EngineProfile::default(),
            global_budget: usize::MAX,
            threads,
            commit_interval: Duration::from_millis(5),
        }
    }

    /// Overrides the storage layer (e.g. a `FaultFs` in tests).
    pub fn vfs(mut self, vfs: Arc<dyn Vfs>) -> ServerConfig {
        self.vfs = vfs;
        self
    }

    /// Overrides the per-tenant engine profile.
    pub fn profile(mut self, profile: EngineProfile) -> ServerConfig {
        self.profile = profile;
        self
    }

    /// Overrides the global resident-byte budget.
    pub fn global_budget(mut self, bytes: usize) -> ServerConfig {
        self.global_budget = bytes;
        self
    }

    /// Overrides the worker pool size (clamped to ≥ 1).
    pub fn threads(mut self, threads: usize) -> ServerConfig {
        self.threads = threads.max(1);
        self
    }

    /// Overrides the group-commit interval.
    pub fn commit_interval(mut self, interval: Duration) -> ServerConfig {
        self.commit_interval = interval;
        self
    }
}

/// One write operation queued for a tenant's writer worker.
enum WriteKind {
    Ingest(Vec<String>),
    Flush,
    Checkpoint,
    Compact,
}

struct WriteJob {
    tenant: Arc<Tenant>,
    kind: WriteKind,
    ack: mpsc::Sender<Result<Json, ServerError>>,
}

/// A condvar-fronted FIFO drained by one worker.
struct JobQueue<T> {
    jobs: Mutex<VecDeque<T>>,
    wake: Condvar,
}

impl<T> JobQueue<T> {
    fn new() -> JobQueue<T> {
        JobQueue { jobs: Mutex::new(VecDeque::new()), wake: Condvar::new() }
    }

    fn push(&self, job: T) {
        if let Ok(mut jobs) = self.jobs.lock() {
            jobs.push_back(job);
            self.wake.notify_one();
        }
    }

    /// Pops one job, waiting up to [`POLL_INTERVAL`]; `None` on timeout
    /// (so the worker can check the stop flag) or a poisoned lock.
    fn pop(&self) -> Option<T> {
        let mut guard = self.jobs.lock().ok()?;
        if let Some(job) = guard.pop_front() {
            return Some(job);
        }
        let (mut guard, _) = self.wake.wait_timeout(guard, POLL_INTERVAL).ok()?;
        guard.pop_front()
    }
}

struct ParkedAck {
    tenant: Arc<Tenant>,
    result: Json,
    ack: mpsc::Sender<Result<Json, ServerError>>,
}

struct Shared {
    registry: TenantRegistry,
    writers: Vec<JobQueue<WriteJob>>,
    connections: JobQueue<TcpStream>,
    parked: Mutex<Vec<ParkedAck>>,
    stop: AtomicBool,
    /// Set by [`Server::run`] once every connection worker has joined —
    /// only then may writers exit on an empty queue (no late enqueues).
    conns_done: AtomicBool,
    /// Set once every writer worker has joined — only then may the
    /// committer run its final tick and exit (no late parked acks).
    writers_done: AtomicBool,
    addr: SocketAddr,
    commit_interval: Duration,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
        // Wake the accept loop: it blocks in accept(), so connect to it.
        let _ = TcpStream::connect(self.addr);
    }

    fn writer_for(&self, tenant: &str) -> &JobQueue<WriteJob> {
        // FNV-1a keeps one tenant's writes on one worker (ordered) while
        // spreading tenants across the pool.
        let mut hash: u64 = 0xcbf29ce484222325;
        for b in tenant.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100000001b3);
        }
        let idx = (hash % self.writers.len() as u64) as usize;
        &self.writers[idx]
    }

    fn park(&self, parked: ParkedAck) {
        match self.parked.lock() {
            Ok(mut list) => list.push(parked),
            // Poisoned parking lot: fail the ack rather than hang the
            // client until the ack timeout.
            Err(_) => {
                let _ = parked.ack.send(Err(ServerError::Engine(logr::Error::Poisoned)));
            }
        }
    }

    /// One committer tick: flush every tenant with parked acks exactly
    /// once, then release (or fail) those acks.
    fn commit_tick(&self) {
        let parked: Vec<ParkedAck> = match self.parked.lock() {
            Ok(mut list) => std::mem::take(&mut *list),
            Err(_) => return,
        };
        if parked.is_empty() {
            return;
        }
        // One flush per distinct tenant this tick — this is the fsync
        // coalescing: every ack parked behind the same tenant shares one
        // covering fsync.
        let mut flushed: Vec<(String, Option<(std::io::ErrorKind, String)>)> = Vec::new();
        for entry in &parked {
            if flushed.iter().any(|(name, _)| name == &entry.tenant.name) {
                continue;
            }
            let outcome = match entry.tenant.commit.flush() {
                Ok(()) => None,
                Err(e) => {
                    entry.tenant.set_needs_rebase(true);
                    Some((e.kind(), e.to_string()))
                }
            };
            flushed.push((entry.tenant.name.clone(), outcome));
        }
        for entry in parked {
            let outcome = flushed
                .iter()
                .find(|(name, _)| name == &entry.tenant.name)
                .and_then(|(_, err)| err.clone());
            let response = match outcome {
                None => Ok(entry.result),
                Some((kind, msg)) => {
                    Err(ServerError::Engine(logr::Error::from(std::io::Error::new(kind, msg))))
                }
            };
            let _ = entry.ack.send(response);
        }
    }
}

/// A bound, not-yet-running server. [`Server::run`] blocks; spawn it on a
/// thread (or via [`Server::spawn`]) and drive it over TCP.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    addr: SocketAddr,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(config: ServerConfig, addr: impl ToSocketAddrs) -> Result<Server, ServerError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| ServerError::Engine(logr::Error::from(e)))?;
        let addr = listener.local_addr().map_err(|e| ServerError::Engine(logr::Error::from(e)))?;
        Ok(Server { listener, config, addr })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Runs the daemon until a `shutdown` frame arrives, then drains
    /// queues, flushes every tenant, and returns.
    pub fn run(self) -> Result<(), ServerError> {
        let threads = self.config.threads;
        let shared = Arc::new(Shared {
            registry: TenantRegistry::new(
                self.config.root.clone(),
                self.config.vfs.clone(),
                self.config.profile.clone(),
                self.config.global_budget,
            ),
            writers: (0..threads).map(|_| JobQueue::new()).collect(),
            connections: JobQueue::new(),
            parked: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            conns_done: AtomicBool::new(false),
            writers_done: AtomicBool::new(false),
            addr: self.addr,
            commit_interval: self.config.commit_interval,
        });

        let mut conn_workers = Vec::new();
        for _ in 0..threads {
            let shared = shared.clone();
            conn_workers.push(std::thread::spawn(move || connection_worker(&shared)));
        }
        let mut writer_workers = Vec::new();
        for w in 0..threads {
            let shared = shared.clone();
            writer_workers.push(std::thread::spawn(move || writer_worker(&shared, w)));
        }
        let committer = {
            let shared = shared.clone();
            std::thread::spawn(move || committer_loop(&shared))
        };

        // Accept loop: runs on this thread until request_stop() both sets
        // the flag and self-connects to unblock accept().
        for stream in self.listener.incoming() {
            if shared.stopping() {
                break;
            }
            if let Ok(stream) = stream {
                shared.connections.push(stream);
            }
        }

        // Orderly drain: connections finish (their in-flight acks are
        // released by the still-running committer), then writers drain
        // their queues, then the committer's final tick covers any last
        // parked acks.
        for handle in conn_workers {
            let _ = handle.join();
        }
        shared.conns_done.store(true, Ordering::Release);
        for handle in writer_workers {
            let _ = handle.join();
        }
        shared.writers_done.store(true, Ordering::Release);
        let _ = committer.join();
        for tenant in shared.registry.list()? {
            tenant.commit.flush().map_err(|e| ServerError::Engine(logr::Error::from(e)))?;
        }
        Ok(())
    }

    /// Runs the daemon on a background thread.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let thread = std::thread::spawn(move || self.run());
        ServerHandle { addr, thread }
    }
}

/// Handle to a daemon running on a background thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<Result<(), ServerError>>,
}

impl ServerHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the daemon to stop (equivalent to a `shutdown` frame).
    pub fn shutdown(&self) {
        let mut line = String::from("{\"op\":\"shutdown\"}\n");
        if let Ok(mut stream) = TcpStream::connect(self.addr) {
            let _ = stream.write_all(line.as_bytes());
            line.clear();
            let _ = stream.read_to_string(&mut line);
        }
    }

    /// Waits for the daemon to finish its drain and return.
    pub fn join(self) -> Result<(), ServerError> {
        self.thread.join().unwrap_or(Err(ServerError::Engine(logr::Error::Poisoned)))
    }
}

fn connection_worker(shared: &Shared) {
    loop {
        match shared.connections.pop() {
            Some(stream) => serve_connection(shared, stream),
            None if shared.stopping() => return,
            None => {}
        }
    }
}

/// Reads newline-delimited frames off one socket until EOF, shutdown, or
/// an unrecoverable frame, answering each in order.
fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Serve every complete line already buffered.
        while let Some(nl) = pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = pending.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line[..nl]);
            let frame = parse_frame(line.trim_end_matches('\r'));
            let shutdown = matches!(frame.request, Ok(Request::Shutdown));
            let reply = answer(shared, frame);
            if stream.write_all(reply.as_bytes()).is_err() {
                return;
            }
            if shutdown {
                shared.request_stop();
                return;
            }
        }
        if pending.len() > MAX_FRAME_BYTES {
            let err =
                protocol(format!("unterminated frame exceeds the {MAX_FRAME_BYTES}-byte cap"));
            let _ = stream.write_all(err_frame(&Json::Null, &err).as_bytes());
            return;
        }
        if shared.stopping() {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(read) => pending.extend_from_slice(&chunk[..read]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Answers one frame; every failure becomes a typed error frame, never a
/// dead connection or daemon.
fn answer(shared: &Shared, frame: Frame) -> String {
    let id = frame.id;
    let request = match frame.request {
        Ok(request) => request,
        Err(e) => return err_frame(&id, &e),
    };
    match handle(shared, request) {
        Ok(result) => ok_frame(&id, result),
        Err(e) => err_frame(&id, &e),
    }
}

fn handle(shared: &Shared, request: Request) -> Result<Json, ServerError> {
    match request {
        Request::Ping => Ok(s("pong")),
        Request::Shutdown => Ok(obj(vec![("stopping", Json::Bool(true))])),
        Request::GlobalStats => global_stats(shared),
        Request::Tenant { name, source, op } => {
            // Close must not lazily open a store just to close it.
            if matches!(op, TenantOp::Close) {
                shared.registry.close(&name)?;
                return Ok(obj(vec![("closed", Json::Bool(true))]));
            }
            let tenant = shared.registry.get_or_open(&name, source)?;
            match op {
                TenantOp::Ingest { statements } => {
                    dispatch_write(shared, tenant, WriteKind::Ingest(statements))
                }
                TenantOp::Flush => dispatch_write(shared, tenant, WriteKind::Flush),
                TenantOp::Checkpoint => dispatch_write(shared, tenant, WriteKind::Checkpoint),
                TenantOp::Compact => dispatch_write(shared, tenant, WriteKind::Compact),
                TenantOp::Close => Ok(Json::Null),
                TenantOp::Stats => {
                    let share = shared.registry.share_at(shared.registry.len()?);
                    tenant_stats(&tenant, share)
                }
                read_op => read(&tenant, read_op),
            }
        }
    }
}

/// Enqueues a write on the tenant's writer worker and waits for its ack
/// — which the committer releases only after the covering fsync.
fn dispatch_write(
    shared: &Shared,
    tenant: Arc<Tenant>,
    kind: WriteKind,
) -> Result<Json, ServerError> {
    let (tx, rx) = mpsc::channel();
    shared.writer_for(&tenant.name).push(WriteJob { tenant, kind, ack: tx });
    match rx.recv_timeout(ACK_TIMEOUT) {
        Ok(result) => result,
        Err(_) => Err(protocol("write ack timed out")),
    }
}

/// Serves a read off the tenant's published snapshot — no engine lock is
/// held while computing, so reads never block ingestion.
fn read(tenant: &Tenant, op: TenantOp) -> Result<Json, ServerError> {
    let snapshot = tenant.engine.snapshot()?;
    let query = WorkloadQuery::over(&*snapshot)?;
    // Analytics over an engine that has summarized nothing yet answer
    // `null` rather than failing — an empty tenant is not an error.
    let Some(query) = query else {
        return match op {
            TenantOp::Drift { .. } => Ok(Json::Null),
            TenantOp::Advise { .. } => Ok(Json::Arr(Vec::new())),
            _ => Ok(Json::Null),
        };
    };
    match op {
        TenantOp::Frequency { pred } => Ok(n(query.frequency(&pred)?)),
        TenantOp::Share { pred } => Ok(n(query.share(&pred)?)),
        TenantOp::Conditional { given, pred } => Ok(n(query.conditional(&given, &pred)?)),
        TenantOp::Cooccurrence { class } => Ok(Json::Arr(
            query
                .cooccurrence(class)?
                .into_iter()
                .map(|c| {
                    obj(vec![
                        ("a", feature_json(&c.a)),
                        ("b", feature_json(&c.b)),
                        ("estimated", n(c.estimated)),
                    ])
                })
                .collect(),
        )),
        TenantOp::TopK { class, k } => Ok(Json::Arr(
            query
                .top_k(class, k)?
                .into_iter()
                .map(|r| {
                    obj(vec![
                        ("feature", feature_json(&r.feature)),
                        ("class", s(class_name(r.feature.class))),
                        ("estimated", n(r.estimated)),
                    ])
                })
                .collect(),
        )),
        TenantOp::Advise { spec } => {
            let advice = match spec {
                AdvisorSpec::Index { min_share } => {
                    IndexAdvisor::new(min_share).advise(&*snapshot)?
                }
                AdvisorSpec::View { min_share } => {
                    ViewAdvisor::new(min_share).advise(&*snapshot)?
                }
                AdvisorSpec::Recommend { partial, min_conditional } => {
                    QueryRecommender::new(partial, min_conditional).advise(&*snapshot)?
                }
                AdvisorSpec::Drift { tolerance } => {
                    DriftAdvisor::new(tolerance).advise(&*snapshot)?
                }
            };
            Ok(advice_json(&advice))
        }
        TenantOp::Drift { tolerance } => match snapshot.drift() {
            None => Ok(Json::Null),
            Some(report) => Ok(drift_json(report, tolerance, Some(snapshot.baseline().codebook()))),
        },
        // Write ops and stats are routed before `read` is called.
        _ => Err(protocol("internal: non-read op in read path")),
    }
}

fn writer_worker(shared: &Shared, index: usize) {
    let queue = &shared.writers[index];
    loop {
        match queue.pop() {
            Some(job) => execute_write(shared, job),
            None if shared.conns_done.load(Ordering::Acquire) => return,
            None => {}
        }
    }
}

fn execute_write(shared: &Shared, job: WriteJob) {
    let WriteJob { tenant, kind, ack } = job;
    // fsync-failure hygiene: after a failed flush the delta log's durable
    // prefix is unknown, so rebase onto a fresh base manifest (full
    // synchronous checkpoint) before acknowledging anything else.
    if tenant.needs_rebase() {
        if let Err(e) = tenant.engine.checkpoint() {
            let _ = ack.send(Err(ServerError::Engine(e)));
            return;
        }
        tenant.set_needs_rebase(false);
    }
    match run_write(&tenant, kind) {
        Err(e) => {
            let _ = ack.send(Err(e));
        }
        Ok(result) => {
            if tenant.commit.pending_len() > 0 {
                // A window close appended to the delta log; the ack waits
                // for the committer's covering fsync.
                shared.park(ParkedAck { tenant, result, ack });
            } else {
                let _ = ack.send(Ok(result));
            }
        }
    }
}

fn run_write(tenant: &Tenant, kind: WriteKind) -> Result<Json, ServerError> {
    match kind {
        WriteKind::Ingest(records) => {
            let count = records.len();
            let mut closed = 0u64;
            // The source-agnostic entry point: the tenant's configured
            // featurizer decides whether a record is SQL or a log line.
            for record in &records {
                if tenant.engine.ingest_record(record)?.is_some() {
                    closed += 1;
                }
            }
            Ok(obj(vec![
                ("ingested", n(count as f64)),
                ("closed", n(closed as f64)),
                ("windows_closed", n(tenant.engine.windows_closed()? as f64)),
            ]))
        }
        WriteKind::Flush => {
            let closed = tenant.engine.flush()?.is_some();
            Ok(obj(vec![("closed", Json::Bool(closed))]))
        }
        WriteKind::Checkpoint => {
            tenant.engine.checkpoint()?;
            Ok(obj(vec![("durable", Json::Bool(true))]))
        }
        WriteKind::Compact => {
            let merged = tenant.engine.compact()?;
            Ok(obj(vec![("merged", n(merged as f64))]))
        }
    }
}

fn committer_loop(shared: &Shared) {
    while !shared.writers_done.load(Ordering::Acquire) {
        std::thread::sleep(shared.commit_interval);
        shared.commit_tick();
    }
    // Final tick after the writers joined: nothing can park behind it.
    shared.commit_tick();
}

fn global_stats(shared: &Shared) -> Result<Json, ServerError> {
    let tenants = shared.registry.list()?;
    let share = shared.registry.share_at(tenants.len());
    let mut per_tenant = Vec::new();
    for tenant in &tenants {
        per_tenant.push((tenant.name.clone(), tenant_stats(tenant, share)?));
    }
    Ok(obj(vec![
        ("tenants", Json::Num(tenants.len() as f64)),
        ("global_budget", budget_json(shared.registry.global_budget())),
        ("per_tenant_budget", budget_json(share)),
        ("per_tenant", Json::Obj(per_tenant)),
    ]))
}

fn budget_json(bytes: usize) -> Json {
    // usize::MAX means "unbounded"; render as null instead of a lossy f64.
    if bytes == usize::MAX {
        Json::Null
    } else {
        n(bytes as f64)
    }
}

fn tenant_stats(tenant: &Tenant, budget: usize) -> Result<Json, ServerError> {
    Ok(obj(vec![
        ("windows_closed", n(tenant.engine.windows_closed()? as f64)),
        ("total_queries", n(tenant.engine.total_queries()? as f64)),
        ("spilled_shards", n(tenant.engine.spilled_shards()? as f64)),
        ("resident_shard_bytes", n(tenant.engine.resident_shard_bytes()? as f64)),
        ("budget", budget_json(budget)),
        ("needs_rebase", Json::Bool(tenant.needs_rebase())),
    ]))
}
