//! Online workload monitoring / intrusion detection (paper §2 and §5),
//! on the [`logr::Engine`] façade.
//!
//! Pattern mixture encodings capture anti-correlations between workloads,
//! which is what lets them flag "queries that don't belong". This example
//! runs the full always-on loop: an engine ingests the query stream one
//! statement at a time, closes tumbling windows, and emits per-window
//! mixture summaries plus drift reports and novelty scores against a
//! rolling baseline — no re-clustering of the whole log ever happens. An
//! exfiltration-style scan is injected into the final window and must be
//! flagged by
//!
//! 1. **window-level feature drift** (new features + JS divergence),
//! 2. **per-query novelty** (nearest-baseline distance), and
//! 3. **per-query typicality** against the engine's history summary.
//!
//! Run with: `cargo run --release --example intrusion_detection`

use logr::cluster::Distance;
use logr::core::{query_typicality, WindowSummary};
use logr::feature::{LogIngest, QueryVector};
use logr::workload::{generate_pocketdata, PocketDataConfig};
use logr::{Engine, Error};

fn report_window(w: &WindowSummary) {
    let verdict = if w.stable { "stable" } else { "⚠ SHIFTED" };
    let (overall, new_feats) =
        w.drift.as_ref().map_or((0.0, 0), |d| (d.overall, d.new_features.len()));
    println!(
        "window {:>2}: {:>5} queries, {:>3} distinct ({:>3} new) | k={} error={:.3} | \
         drift={overall:.5} new_features={new_feats} max_novelty={:.2} | {verdict}",
        w.index,
        w.queries,
        w.distinct,
        w.new_distinct,
        w.summary.mixture.k(),
        w.summary.error(),
        w.max_novelty(),
    );
    if let Some(drift) = &w.drift {
        for f in drift.new_features.iter().take(3) {
            println!("            new feature: {f}");
        }
    }
}

fn main() -> Result<(), Error> {
    // The app's normal (machine-generated) workload, replayed as a stream.
    let synthetic = generate_pocketdata(&PocketDataConfig::default());
    let injected = [
        "SELECT text, sms_raw_sender, timestamp FROM messages", // full dump: no predicate
        "SELECT setting_key, setting_value FROM account_settings WHERE setting_value LIKE ?",
        "SELECT first_name, full_name, profile_id FROM participants WHERE profile_id > ?",
    ];

    let engine = Engine::builder()
        .window(400)
        .baseline_windows(3)
        .clusters(4)
        .metric(Distance::Hamming)
        .drift_tolerance(1e-3)
        .in_memory()?;

    println!("streaming the workload in tumbling windows of 400 queries:");
    let mut windows: Vec<std::sync::Arc<WindowSummary>> = Vec::new();

    // Several rounds of normal traffic stream through continuously and
    // build up the rolling baseline…
    for _ in 0..4 {
        for (sql, count) in synthetic.statements.iter().take(120) {
            if let Some(w) = engine.ingest_with_count(sql, *count % 7 + 1)? {
                report_window(&w);
                windows.push(w);
            }
        }
    }

    // …the pre-attack history is what incoming traffic will be judged
    // against: a snapshot pins it immutably (a monitoring thread would
    // hold exactly this view while ingestion continues)…
    let pre_attack = engine.snapshot()?;
    let history_snapshot = pre_attack.summary()?.expect("history is non-empty");
    let history_log = pre_attack.history();

    // …then the scan runs hot inside otherwise-normal traffic.
    for (sql, count) in synthetic.statements.iter().take(60) {
        if let Some(w) = engine.ingest_with_count(sql, *count % 7 + 1)? {
            report_window(&w);
            windows.push(w);
        }
    }
    for sql in injected {
        if let Some(w) = engine.ingest_with_count(sql, 40)? {
            report_window(&w);
            windows.push(w);
        }
    }
    if let Some(w) = engine.flush()? {
        report_window(&w);
        windows.push(w);
    }

    let attack = windows.last().expect("at least one window closed");
    assert!(!attack.stable, "the injected window must be flagged");
    println!(
        "\nverdict: window {} flagged — {} new features, max novelty {:.2}",
        attack.index,
        attack.drift.as_ref().map_or(0, |d| d.new_features.len()),
        attack.max_novelty(),
    );

    // Rank probe queries by typicality under the pre-attack history
    // summary (built from the sharded condensed matrix — no pairwise
    // distance was ever recomputed across windows).
    println!(
        "\npre-attack history: {} queries, {} distinct, summarized at k={} (error {:.3}); \
         post-attack history holds {} queries",
        history_log.total_queries(),
        history_log.distinct_count(),
        history_snapshot.mixture.k(),
        history_snapshot.error(),
        engine.snapshot()?.history().total_queries(),
    );

    let normal: Vec<String> =
        synthetic.statements.iter().take(6).map(|(sql, _)| sql.clone()).collect();
    let mut scored: Vec<(String, f64)> = Vec::new();
    for sql in normal.iter().map(String::as_str).chain(injected) {
        let mut probe = LogIngest::new();
        probe.ingest(sql);
        let (probe_log, _) = probe.finish();
        // Map the probe's features into the pre-attack codebook; features
        // the stream had never seen are maximally suspicious.
        let mut ids = Vec::new();
        let mut unknown = 0usize;
        for (_, feature) in probe_log.codebook().iter() {
            match history_log.codebook().get(feature) {
                Some(id) => ids.push(id),
                None => unknown += 1,
            }
        }
        let vector: QueryVector = ids.into_iter().collect();
        let score =
            query_typicality(&history_snapshot.mixture, &vector) * 0.5f64.powi(unknown as i32);
        scored.push((sql.to_string(), score));
    }

    scored.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!("\nqueries ranked by typicality (lowest = most anomalous):");
    for (sql, score) in &scored {
        let flag = if *score < 5e-2 { "⚠ ANOMALOUS" } else { "  normal   " };
        let display: String = sql.chars().take(88).collect();
        println!("{flag}  score={score:9.2e}  {display}");
    }
    let anomalies = scored.iter().filter(|(_, s)| *s < 5e-2).count();
    println!("flagged {anomalies} of {} probed queries", scored.len());
    Ok(())
}
