//! Online workload monitoring / intrusion detection (paper §2 and §5).
//!
//! Pattern mixture encodings capture anti-correlations between workloads,
//! which is what lets them flag "queries that don't belong": a query whose
//! probability under every mixture component is tiny is atypical. This
//! example demonstrates both monitors in `logr::core::drift`:
//!
//! 1. **per-query typicality** against a baseline summary, and
//! 2. **window-level feature drift** between a baseline log and a
//!    monitoring window with injected exfiltration-style traffic.
//!
//! Run with: `cargo run --release --example intrusion_detection`

use logr::cluster::{cluster_log, ClusterMethod, Distance};
use logr::core::{feature_drift, query_typicality, NaiveMixtureEncoding};
use logr::feature::{LogIngest, QueryVector};
use logr::workload::{generate_pocketdata, PocketDataConfig};

fn main() {
    // Baseline: the app's normal (machine-generated) workload.
    let synthetic = generate_pocketdata(&PocketDataConfig::default());
    let (log, _) = synthetic.ingest();
    let clustering = cluster_log(&log, 8, ClusterMethod::Spectral(Distance::Hamming), 1);
    let baseline = NaiveMixtureEncoding::build(&log, &clustering);
    println!(
        "baseline summary: {} clusters over {} distinct queries (error {:.3})",
        baseline.k(),
        log.distinct_count(),
        baseline.error()
    );

    // Monitoring window: mostly normal traffic + an injected scan that
    // touches the usual tables in an unusual way.
    let normal: Vec<String> =
        synthetic.statements.iter().take(6).map(|(sql, _)| sql.clone()).collect();
    let injected = [
        "SELECT text, sms_raw_sender, timestamp FROM messages", // full dump: no predicate
        "SELECT setting_key, setting_value FROM account_settings WHERE setting_value LIKE ?",
        "SELECT first_name, full_name, profile_id FROM participants WHERE profile_id > ?",
    ];

    // --- Monitor 1: per-query typicality -------------------------------
    let mut scored: Vec<(String, f64)> = Vec::new();
    for sql in normal.iter().map(String::as_str).chain(injected) {
        let mut probe = LogIngest::new();
        probe.ingest(sql);
        let (probe_log, _) = probe.finish();
        // Map the probe's features into the baseline codebook; features the
        // baseline never saw are maximally suspicious.
        let mut ids = Vec::new();
        let mut unknown = 0usize;
        for (_, feature) in probe_log.codebook().iter() {
            match log.codebook().get(feature) {
                Some(id) => ids.push(id),
                None => unknown += 1,
            }
        }
        let vector: QueryVector = ids.into_iter().collect();
        let score = query_typicality(&baseline, &vector) * 0.5f64.powi(unknown as i32);
        scored.push((sql.to_string(), score));
    }

    scored.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!("\nwindow queries ranked by typicality (lowest = most anomalous):");
    for (sql, score) in &scored {
        let flag = if *score < 1e-3 { "⚠ ANOMALOUS" } else { "  normal   " };
        let display: String = sql.chars().take(88).collect();
        println!("{flag}  score={score:9.2e}  {display}");
    }
    let anomalies = scored.iter().filter(|(_, s)| *s < 1e-3).count();
    println!("flagged {anomalies} of {} window queries", scored.len());

    // --- Monitor 2: window-level feature drift -------------------------
    let mut window = LogIngest::new();
    for (sql, count) in synthetic.statements.iter().take(300) {
        window.ingest_with_count(sql, *count);
    }
    for sql in injected {
        window.ingest_with_count(sql, 500); // the scan runs hot
    }
    let (window_log, _) = window.finish();
    let report = feature_drift(&log, &window_log);

    println!("\nwindow drift report:");
    println!("  mean per-feature JS divergence: {:.5} nats", report.overall);
    println!("  new features never seen in baseline: {}", report.new_features.len());
    for f in report.new_features.iter().take(5) {
        println!("    {f}");
    }
    println!(
        "  verdict: {}",
        if report.is_stable(1e-3) { "stable" } else { "⚠ workload shifted — investigate" }
    );
}
