//! Index selection from a compressed log (the paper's §2 lead
//! application), through the [`logr::Engine`] + [`logr::analytics`]
//! facade.
//!
//! Index advisors repeatedly ask "how often does predicate X appear in
//! the workload?" — e.g. a hash index on `status` pays off if
//! `status = ?` occurs in most queries. Asking the raw log is slow at
//! millions of queries; the engine answers from the summary
//! ([`logr::analytics::IndexAdvisor`]). This example streams a
//! PocketData-scale workload into an engine, compares summary estimates
//! against ground truth for every single-column predicate, then prints
//! the advisor's picks.
//!
//! Run with: `cargo run --release --example index_advisor`

use logr::analytics::{Advisor, IndexAdvisor, Pred};
use logr::feature::FeatureClass;
use logr::workload::{generate_pocketdata, PocketDataConfig};
use logr::{Engine, Error};

fn main() -> Result<(), Error> {
    let synthetic = generate_pocketdata(&PocketDataConfig::default());
    // Ground truth for the comparison below — a real deployment never
    // builds this.
    let (log, _) = synthetic.ingest();
    println!(
        "workload: {} queries, {} distinct, {} features",
        log.total_queries(),
        log.distinct_count(),
        log.num_features()
    );

    let engine = Engine::builder().window(4096).clusters(8).in_memory()?;
    for (sql, count) in &synthetic.statements {
        engine.ingest_with_count(sql, *count)?;
    }
    engine.flush()?;

    let snapshot = engine.snapshot()?;
    let summary = snapshot.summary()?.expect("non-empty workload");
    println!(
        "compressed to {} clusters (error {:.3} nats, verbosity {})\n",
        summary.mixture.k(),
        summary.error(),
        summary.total_verbosity()
    );

    // Candidate indexes: every WHERE-clause equality atom, estimate vs
    // ground truth — estimates through the typed query surface.
    let query = snapshot.query()?.expect("non-empty workload");
    let total = snapshot.history().total_queries() as f64;
    let mut candidates: Vec<(String, f64, f64)> = Vec::new(); // (atom, est, true)
    for (_, feature) in snapshot.history().codebook().iter() {
        if feature.class != FeatureClass::Where || !feature.text.contains("= ?") {
            continue;
        }
        let est = query.frequency(&Pred::feature(feature.clone()))?;
        let truth = log.support(&logr::feature::QueryVector::new(vec![log
            .codebook()
            .get(feature)
            .expect("same workload")])) as f64;
        candidates.push((feature.text.clone(), est, truth));
    }
    candidates.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("top predicate frequencies (summary estimate vs ground truth):");
    println!("{:<40} {:>12} {:>12} {:>8}", "predicate", "estimated", "true", "rel.err");
    let mut max_rel_err = 0.0f64;
    for (atom, est, truth) in candidates.iter().take(12) {
        let rel = if *truth > 0.0 { (est - truth).abs() / truth } else { 0.0 };
        max_rel_err = max_rel_err.max(rel);
        println!("{atom:<40} {est:>12.0} {truth:>12.0} {:>7.1}%", rel * 100.0);
    }

    println!("\nadvisor picks (predicate share ≥ 20% of workload):");
    for pick in IndexAdvisor::new(0.20).advise(&*snapshot)? {
        if !pick.subject.contains("= ?") {
            continue;
        }
        let column = pick.subject.split_whitespace().next().unwrap_or(&pick.subject);
        println!(
            "  CREATE INDEX ON (…{column}…)   -- appears in {:.0}% of queries",
            100.0 * pick.estimated / total
        );
    }
    println!("\nworst relative error among the top candidates: {:.1}%", max_rel_err * 100.0);
    Ok(())
}
