//! Index selection from a compressed log (the paper's §2 lead application).
//!
//! Index advisors repeatedly ask "how often does predicate X appear in the
//! workload?" — e.g. a hash index on `status` pays off if `status = ?`
//! occurs in most queries. Asking the raw log is slow at millions of
//! queries; LogR answers from the summary. This example compresses a
//! PocketData-scale workload and compares summary estimates against ground
//! truth for every single-column predicate, then prints the advisor's
//! picks.
//!
//! Run with: `cargo run --release --example index_advisor`

use logr::core::{CompressionObjective, LogR, LogRConfig};
use logr::feature::{FeatureClass, QueryVector};
use logr::workload::{generate_pocketdata, PocketDataConfig};

fn main() {
    let synthetic = generate_pocketdata(&PocketDataConfig::default());
    let (log, _) = synthetic.ingest();
    println!(
        "workload: {} queries, {} distinct, {} features",
        log.total_queries(),
        log.distinct_count(),
        log.num_features()
    );

    let summary =
        LogR::new(LogRConfig { objective: CompressionObjective::FixedK(8), ..Default::default() })
            .compress(&log);
    println!(
        "compressed to {} clusters (error {:.3} nats, verbosity {})\n",
        summary.mixture.k(),
        summary.error(),
        summary.total_verbosity()
    );

    // Candidate indexes: every WHERE-clause equality atom.
    let total = log.total_queries() as f64;
    let mut candidates: Vec<(String, f64, f64)> = Vec::new(); // (atom, est, true)
    for (id, feature) in log.codebook().iter() {
        if feature.class != FeatureClass::Where || !feature.text.contains("= ?") {
            continue;
        }
        let pattern = QueryVector::new(vec![id]);
        let est = summary.estimate_count(&pattern);
        let truth = log.support(&pattern) as f64;
        candidates.push((feature.text.clone(), est, truth));
    }
    candidates.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("top predicate frequencies (summary estimate vs ground truth):");
    println!("{:<40} {:>12} {:>12} {:>8}", "predicate", "estimated", "true", "rel.err");
    let mut max_rel_err = 0.0f64;
    for (atom, est, truth) in candidates.iter().take(12) {
        let rel = if *truth > 0.0 { (est - truth).abs() / truth } else { 0.0 };
        max_rel_err = max_rel_err.max(rel);
        println!("{atom:<40} {est:>12.0} {truth:>12.0} {:>7.1}%", rel * 100.0);
    }

    println!("\nadvisor picks (predicate share ≥ 20% of workload):");
    for (atom, est, _) in &candidates {
        if *est / total >= 0.20 {
            let column = atom.split_whitespace().next().unwrap_or(atom);
            println!(
                "  CREATE INDEX ON (…{column}…)   -- appears in {:.0}% of queries",
                100.0 * est / total
            );
        }
    }
    println!("\nworst relative error among the top candidates: {:.1}%", max_rel_err * 100.0);
}
