//! Degraded read-only opens: serving analytics from a store you must
//! not (or cannot) write.
//!
//! [`logr::EngineBuilder::read_only`] opens a durable store without
//! taking the store lock and without resume-time garbage collection —
//! the two things a writable open does that mutate the directory. That
//! makes it the right tool when:
//!
//! 1. another process owns the store (a live writer holds the lock) and
//!    a dashboard or ad-hoc query session wants the latest checkpoint;
//! 2. the store lives on genuinely read-only media (a snapshot mount, a
//!    backup, an artifact download);
//! 3. an operator is diagnosing a sick deployment and must not disturb
//!    the evidence.
//!
//! The read-only engine serves the full read surface — summaries,
//! snapshots, analytics estimators — and answers every write entry
//! point with the typed [`logr::Error::ReadOnly`].
//!
//! Run with: `cargo run --release --example degraded_read_only`

use logr::analytics::{Advisor, IndexAdvisor};
use logr::{Engine, Error};

fn main() -> Result<(), Error> {
    let dir = std::env::temp_dir().join(format!("logr-ro-example-{}", std::process::id()));

    // A writer builds up a store: three windows of a small workload,
    // then an explicit checkpoint.
    let writer = Engine::builder().window(50).clusters(4).resident_budget(0).open(&dir)?;
    for i in 0..150u64 {
        let sql = format!("SELECT c{} FROM t{} WHERE a{} = ?", i % 13, i % 3, i % 7);
        writer.ingest(&sql)?;
    }
    writer.checkpoint()?;
    println!(
        "writer: {} windows closed, {} queries, store at {}",
        writer.windows_closed()?,
        writer.total_queries()?,
        dir.display()
    );

    // The writer is still alive and still holds the lock — a second
    // writable open would be refused. A read-only open is not: it never
    // contends for the lock.
    match Engine::builder().open(&dir) {
        Err(Error::StoreLocked { pid, .. }) => {
            println!("writable second open: refused (locked by pid {pid}) — as it must be");
        }
        Ok(_) => unreachable!("two writable engines on one store"),
        Err(e) => return Err(e),
    }
    let reader = Engine::builder().read_only().resume(&dir)?;
    println!("read-only open beside the live writer: ok (read_only = {})", reader.is_read_only());

    // The full read surface works: history summary and analytics.
    let summary = reader.summary()?.expect("three checkpointed windows");
    println!(
        "reader sees {} windows / {} queries; summary error {:.4}",
        reader.windows_closed()?,
        reader.total_queries()?,
        summary.error()
    );
    let advisor = IndexAdvisor::new(0.05);
    let picks = advisor.advise(&*reader.snapshot()?)?;
    println!("index advisor proposes {} candidate(s) from the read-only store", picks.len());

    // Every write entry point is the typed error — not a panic, not a
    // silent no-op.
    match reader.ingest("SELECT 1") {
        Err(Error::ReadOnly) => println!("reader.ingest(..): Error::ReadOnly — as it must be"),
        other => unreachable!("write on a read-only engine: {other:?}"),
    }
    match reader.checkpoint() {
        Err(Error::ReadOnly) => println!("reader.checkpoint(): Error::ReadOnly — as it must be"),
        other => unreachable!("checkpoint on a read-only engine: {other:?}"),
    }

    drop(reader);
    drop(writer);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
