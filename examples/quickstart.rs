//! Quickstart: ingest a small SQL log, compress it, query statistics from
//! the summary, and render the human-readable view.
//!
//! Run with: `cargo run --example quickstart`

use logr::core::interpret::{render_mixture, RenderConfig};
use logr::core::{CompressionObjective, LogR, LogRConfig};
use logr::feature::{Feature, LogIngest};

fn main() {
    // A toy production log: a hot messaging workload, a warm account
    // workload, and a rare-but-important report query (the kind sampling
    // would lose — the paper's motivating case).
    let mut ingest = LogIngest::new();
    for _ in 0..5_000 {
        ingest.ingest("SELECT id, body, sent_at FROM messages WHERE status = ? AND folder = ?");
    }
    for _ in 0..2_500 {
        ingest.ingest("SELECT id FROM messages WHERE status = ?");
    }
    for _ in 0..1_500 {
        ingest.ingest("SELECT balance, branch FROM accounts WHERE owner = ?");
    }
    for _ in 0..12 {
        ingest.ingest(
            "SELECT owner, sum(amount) FROM accounts, ledger \
             WHERE accounts.id = ledger.account_id AND posted_at >= ? GROUP BY owner",
        );
    }
    let (log, stats) = ingest.finish();

    println!(
        "ingested {} queries ({} distinct after constant removal)",
        stats.parsed_selects, stats.distinct_anonymized
    );

    // Compress with a 2-nat error budget; LogR grows the cluster count
    // until the bound holds.
    let summary = LogR::new(LogRConfig {
        objective: CompressionObjective::MaxError { bound: 2.0, max_k: 8 },
        ..Default::default()
    })
    .compress(&log);

    println!(
        "summary: {} clusters, verbosity {}, reproduction error {:.4} nats",
        summary.mixture.k(),
        summary.total_verbosity(),
        summary.error()
    );

    // Aggregate statistics straight from the summary.
    for (label, features) in [
        (
            "messages.status = ?",
            vec![Feature::from_table("messages"), Feature::where_atom("status = ?")],
        ),
        ("accounts queried", vec![Feature::from_table("accounts")]),
        ("rare ledger join", vec![Feature::from_table("ledger")]),
    ] {
        let est = summary.estimate_count_features(&log, &features);
        println!("est[{label}] ≈ {est:.1} queries");
    }

    // The interpretable view (paper Fig. 1 / Fig. 10).
    println!("\n{}", render_mixture(&summary.mixture, log.codebook(), &RenderConfig::default()));
}
