//! Quickstart: ingest a small SQL log through the [`logr::Engine`]
//! façade, query statistics from the summary, ask the index advisor, and
//! render the human-readable view.
//!
//! Batch compression is the degenerate stream: ingest everything, flush
//! the final window, read the history summary. The same engine, opened
//! on a directory instead of `in_memory()`, would persist every window
//! and resume bit-identically after a restart.
//!
//! Run with: `cargo run --example quickstart`

use logr::analytics::Pred;
use logr::core::interpret::{render_mixture, RenderConfig};
use logr::{Engine, Error};

fn main() -> Result<(), Error> {
    // A toy production log: a hot messaging workload, a warm account
    // workload, and a rare-but-important report query (the kind sampling
    // would lose — the paper's motivating case).
    let engine = Engine::builder().window(1024).clusters(4).in_memory()?;
    for _ in 0..5_000 {
        engine.ingest("SELECT id, body, sent_at FROM messages WHERE status = ? AND folder = ?")?;
    }
    for _ in 0..2_500 {
        engine.ingest("SELECT id FROM messages WHERE status = ?")?;
    }
    for _ in 0..1_500 {
        engine.ingest("SELECT balance, branch FROM accounts WHERE owner = ?")?;
    }
    for _ in 0..12 {
        engine.ingest(
            "SELECT owner, sum(amount) FROM accounts, ledger \
             WHERE accounts.id = ledger.account_id AND posted_at >= ? GROUP BY owner",
        )?;
    }
    engine.flush()?;

    let snapshot = engine.snapshot()?;
    let summary = snapshot.summary()?.expect("non-empty workload");
    println!(
        "ingested {} queries ({} distinct after constant removal)",
        snapshot.total_queries(),
        snapshot.history().distinct_count()
    );
    println!(
        "summary: {} clusters, verbosity {}, reproduction error {:.4} nats",
        summary.mixture.k(),
        summary.total_verbosity(),
        summary.error()
    );

    // Aggregate statistics straight from the summary, through typed,
    // composable predicates (unknown features would be typed errors, not
    // silent zeros).
    let query = snapshot.query()?.expect("non-empty workload");
    for (label, pred) in [
        ("messages.status = ?", Pred::table("messages").and(Pred::column_eq("status"))),
        ("accounts queried", Pred::table("accounts")),
        ("rare ledger join", Pred::joins("accounts", "ledger")),
    ] {
        let est = query.frequency(&pred)?;
        println!("est[{label}] ≈ {est:.1} queries");
    }

    // The §2 index-advisor question, answered without touching the log.
    println!("\nadvisor picks (predicate share ≥ 20% of workload):");
    for pick in snapshot.advise(0.20)? {
        println!(
            "  CREATE INDEX ON (…{}…)   -- appears in {:.0}% of queries",
            pick.predicate.split_whitespace().next().unwrap_or(&pick.predicate),
            100.0 * pick.share
        );
    }

    // The interpretable view (paper Fig. 1 / Fig. 10).
    println!(
        "\n{}",
        render_mixture(&summary.mixture, snapshot.history().codebook(), &RenderConfig::default())
    );
    Ok(())
}
