//! Workload exploration: walk the Error/Verbosity trade-off curve on a
//! diverse bank-style workload and inspect the clusters a DBA would see
//! (the paper's abstract: "users can choose to obtain a high-fidelity,
//! albeit large summary, or a more compact summary with lower fidelity").
//!
//! Run with: `cargo run --release --example workload_explorer`

use logr::cluster::{cluster_log, ClusterMethod};
use logr::core::interpret::{render_component, RenderConfig};
use logr::core::NaiveMixtureEncoding;
use logr::workload::{generate_usbank, UsBankConfig};

fn main() {
    let (log, stats) = generate_usbank(&UsBankConfig::default()).ingest();
    println!(
        "US-bank-style workload: {} queries, {} distinct templates, {} features",
        stats.parsed_selects,
        stats.distinct_anonymized,
        log.num_features()
    );

    // The trade-off curve: each K is one summary the user could keep.
    println!("\n{:>4} {:>14} {:>12} {:>14}", "K", "error (nats)", "verbosity", "bytes-ish");
    let mut chosen = None;
    for k in [1, 2, 4, 8, 12, 16, 24, 32] {
        let clustering = cluster_log(&log, k, ClusterMethod::KMeansEuclidean, 0);
        let mixture = NaiveMixtureEncoding::build(&log, &clustering);
        // One pattern ≈ one (feature id, f64) pair.
        let approx_bytes = mixture.total_verbosity() * 12;
        println!(
            "{k:>4} {:>14.4} {:>12} {:>14}",
            mixture.error(),
            mixture.total_verbosity(),
            approx_bytes
        );
        if mixture.k() == 8 {
            chosen = Some(mixture);
        }
    }

    // Inspect the K = 8 summary's two heaviest clusters.
    if let Some(mixture) = chosen {
        let mut order: Vec<usize> = (0..mixture.k()).collect();
        order.sort_by(|&a, &b| {
            mixture.components()[b].weight.total_cmp(&mixture.components()[a].weight)
        });
        let config = RenderConfig { min_marginal: 0.25, ..Default::default() };
        println!("\nheaviest clusters at K = 8:\n");
        for &i in order.iter().take(2) {
            println!("{}\n", render_component(&mixture, i, log.codebook(), &config));
        }
    }
}
