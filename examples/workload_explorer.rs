//! Workload exploration: walk the Error/Verbosity trade-off curve on a
//! diverse bank-style workload and inspect the clusters a DBA would see
//! (the paper's abstract: "users can choose to obtain a high-fidelity,
//! albeit large summary, or a more compact summary with lower fidelity").
//!
//! Through the engine facade the whole curve costs **one** clustering:
//! [`logr::EngineSnapshot::multiresolution`] cuts a single dendrogram
//! over the history's condensed distance matrix at every requested K, so
//! the summaries are nested and no pairwise distance is recomputed.
//!
//! Run with: `cargo run --release --example workload_explorer`

use logr::core::interpret::{render_component, RenderConfig};
use logr::workload::{generate_usbank, UsBankConfig};
use logr::{Engine, Error};

fn main() -> Result<(), Error> {
    let synthetic = generate_usbank(&UsBankConfig::default());
    let engine = Engine::builder().window(1 << 21).clusters(8).in_memory()?;
    for (sql, count) in &synthetic.statements {
        engine.ingest_with_count(sql, *count)?;
    }
    engine.flush()?;
    let snapshot = engine.snapshot()?;
    println!(
        "US-bank-style workload: {} queries, {} distinct templates, {} features",
        snapshot.history().total_queries(),
        snapshot.history().distinct_count(),
        snapshot.history().num_features()
    );

    // The trade-off curve: each K is one summary the user could keep —
    // all cut from one dendrogram, so the sweep is nearly free.
    let ks = [1usize, 2, 4, 8, 12, 16, 24, 32];
    let summaries = snapshot.multiresolution(&ks)?;
    println!("\n{:>4} {:>14} {:>12} {:>14}", "K", "error (nats)", "verbosity", "bytes-ish");
    let mut chosen = None;
    for (summary, k) in summaries.into_iter().zip(ks) {
        // One pattern ≈ one (feature id, f64) pair.
        let approx_bytes = summary.total_verbosity() * 12;
        println!(
            "{k:>4} {:>14.4} {:>12} {:>14}",
            summary.error(),
            summary.total_verbosity(),
            approx_bytes
        );
        if summary.mixture.k() == 8 {
            chosen = Some(summary);
        }
    }

    // Inspect the K = 8 summary's two heaviest clusters.
    if let Some(summary) = chosen {
        let mixture = &summary.mixture;
        let mut order: Vec<usize> = (0..mixture.k()).collect();
        order.sort_by(|&a, &b| {
            mixture.components()[b].weight.total_cmp(&mixture.components()[a].weight)
        });
        let config = RenderConfig { min_marginal: 0.25, ..Default::default() };
        println!("\nheaviest clusters at K = 8:\n");
        for &i in order.iter().take(2) {
            println!("{}\n", render_component(mixture, i, snapshot.history().codebook(), &config));
        }
    }
    Ok(())
}
