//! Ship the summary, drop the log: compress on the database host, analyze
//! anywhere.
//!
//! The paper's workloads are sensitive (the US bank log required
//! anonymization even for the paper); the artifact that leaves the
//! database host should be the `O(Total Verbosity)` summary, not the log.
//! This example streams a workload into an engine, recompresses the
//! snapshot at read time under a MaxError objective
//! ([`logr::EngineSnapshot::summary_with`] — the fidelity knob without
//! touching the stream configuration), serializes the summary to disk,
//! reloads it in a "different process", and answers tuning questions from
//! the file alone — then shows the size ratio.
//!
//! Run with: `cargo run --release --example portable_summary`

use logr::core::{CompressionObjective, PortableSummary};
use logr::feature::Feature;
use logr::workload::{generate_pocketdata, PocketDataConfig};
use logr::Engine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- On the database host -----------------------------------------
    let synthetic = generate_pocketdata(&PocketDataConfig::default());
    let raw_bytes: usize =
        synthetic.statements.iter().map(|(sql, count)| sql.len() * *count as usize).sum();

    let engine = Engine::builder().window(1 << 21).in_memory()?;
    for (sql, count) in &synthetic.statements {
        engine.ingest_with_count(sql, *count)?;
    }
    engine.flush()?;
    let snapshot = engine.snapshot()?;

    let summary = snapshot
        .summary_with(CompressionObjective::MaxError { bound: 12.0, max_k: 24 })?
        .expect("non-empty workload");

    let portable = PortableSummary::from_summary(&summary, snapshot.history());
    let path = std::env::temp_dir().join("pocketdata.logr");
    portable.save(&path)?;
    let summary_bytes = std::fs::metadata(&path)?.len() as usize;

    println!(
        "raw log ≈ {:.1} MB ({} queries) → summary {:.1} KB on disk ({} marginals, {} clusters)",
        raw_bytes as f64 / 1e6,
        snapshot.history().total_queries(),
        summary_bytes as f64 / 1e3,
        portable.total_verbosity(),
        portable.components.len(),
    );
    println!(
        "compression ratio ≈ {:.0}× at {:.2} nats of Reproduction Error",
        raw_bytes as f64 / summary_bytes as f64,
        summary.error()
    );

    // --- Later, on the analyst's machine -------------------------------
    let loaded = PortableSummary::load(&path)?;
    println!("\nanswering tuning questions from {} alone:", path.display());
    for (question, features) in [
        ("queries touching messages", vec![Feature::from_table("messages")]),
        (
            "messages filtered by status AND sms_type",
            vec![
                Feature::from_table("messages"),
                Feature::where_atom("sms_type = ?"),
                Feature::where_atom("status = ?"),
            ],
        ),
        (
            "conversation lookups by id",
            vec![
                Feature::from_table("conversation_participants_view"),
                Feature::where_atom("conversation_id = ?"),
            ],
        ),
    ] {
        let est = loaded.estimate_count(&features);
        let truth = {
            // Only for the demo: the analyst would not have the log.
            let log = snapshot.history();
            let ids: Option<Vec<_>> = features.iter().map(|f| log.codebook().get(f)).collect();
            ids.map(|ids| log.support(&ids.into_iter().collect()) as f64)
        };
        match truth {
            Some(t) => println!("  {question:<44} est {est:>9.0}   (true {t:>9.0})"),
            None => println!("  {question:<44} est {est:>9.0}"),
        }
    }

    std::fs::remove_file(&path).ok();
    Ok(())
}
