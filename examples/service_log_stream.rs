//! Free-form service logs through the pluggable-source seam: the
//! Drain-style [`logr::source::TemplateMiner`] turns raw log lines into
//! template + parameter-class features, and the whole analytics surface
//! (typed predicates, negations, drift advice with rendered report text)
//! runs over the mined features — not a byte of SQL anywhere on the path.
//!
//! The stream has two phases: steady service traffic (logins, scans, API
//! requests), then an incident burst of upstream timeouts. The drift
//! advisor must flag the burst, and its advice renders as the same
//! DBA-facing report text every advisor now emits.
//!
//! Run with: `cargo run --release --example service_log_stream`

use logr::analytics::{render_report, Advisor, DriftAdvisor, Pred};
use logr::feature::FeatureClass;
use logr::{Engine, Error, SourceConfig};

/// Deterministic synthetic service log: `n` steady-state lines drawn
/// round-robin from four rotating shapes.
fn steady_line(i: u64) -> String {
    match i % 4 {
        0 => format!("user u{} logged in from 10.0.{}.{}", i % 97, i % 16, i % 251),
        1 => format!("GET /api/v2/orders/{} took {} ms", 1000 + i % 500, 3 + i % 40),
        2 => format!("cache shard {} hit ratio 0.{}", i % 8, 80 + i % 19),
        _ => format!("scan of /var/data/seg-{}.db finished in {} ms", i % 12, 10 + i % 90),
    }
}

fn incident_line(i: u64) -> String {
    format!("upstream timeout contacting 192.168.4.{} after {} ms", i % 9, 5000 + i % 300)
}

fn main() -> Result<(), Error> {
    let engine = Engine::builder()
        .source(SourceConfig::template())
        .window(128)
        .baseline_windows(3)
        .clusters(3)
        .drift_tolerance(1e-3)
        .in_memory()?;

    // Phase 1: steady traffic builds the rolling baseline.
    for i in 0..6 * 128 {
        engine.ingest_record(&steady_line(i))?;
    }

    // Phase 2: the incident — timeouts flood in among normal lines.
    for i in 0..128 {
        if i % 2 == 0 {
            engine.ingest_record(&incident_line(i))?;
        } else {
            engine.ingest_record(&steady_line(6 * 128 + i))?;
        }
    }
    engine.flush()?;

    let snapshot = engine.snapshot()?;
    let query = snapshot.query()?.expect("non-empty workload");

    println!("mined templates by estimated frequency:");
    for ranked in query.top_k(FeatureClass::Template, 8)? {
        println!("  {:>7.1}  {}", ranked.estimated, ranked.feature.text);
    }
    println!("\nparameter-class mix:");
    for ranked in query.top_k(FeatureClass::Param, 8)? {
        println!("  {:>7.1}  <{}>", ranked.estimated, ranked.feature.text);
    }

    // Typed predicates compose over mined features exactly as over SQL
    // ones — including negation, estimated as a mixture complement.
    let timeout_template = "upstream timeout contacting <*> after <*> ms";
    let with_ip = query.share(&Pred::param("ip"))?;
    let timeouts = query.share(&Pred::template(timeout_template))?;
    let clean = query.share(&Pred::template(timeout_template).not())?;
    println!(
        "\nshare carrying an IP: {:.1}%   timeout lines: {:.1}%   ¬timeout: {:.1}%",
        100.0 * with_ip,
        100.0 * timeouts,
        100.0 * clean
    );
    assert!(
        (timeouts + clean - 1.0).abs() < 1e-6,
        "negation must complement: {timeouts} + {clean}"
    );

    // The drift advisor flags the incident window, and its advice renders
    // as the same DBA-facing report text every advisor emits.
    let advice = DriftAdvisor::new(1e-3).advise(&*snapshot)?;
    assert!(!advice.is_empty(), "the timeout burst must register as drift");
    println!("\ndrift report:\n{}", render_report(&advice));
    assert!(
        advice.iter().any(|a| a.subject.contains("timeout") || a.subject.contains("drift")),
        "advice must name the shifted workload"
    );

    println!(
        "\n{} records summarized into {} windows — zero SQL on the path",
        snapshot.total_queries(),
        snapshot.windows_closed()
    );
    Ok(())
}
