//! The daemon lifecycle in one process: spawn `logr-server` on an
//! ephemeral loopback port, speak its line-delimited JSON protocol from
//! a plain TCP client — ingest two tenants' workloads, read the
//! analytics surface (frequency, top-k, index advice, drift), watch the
//! shared resident budget apportion itself — then shut the daemon down
//! cleanly.
//!
//! Everything below the `Server::bind` call is exactly what a non-Rust
//! client would do over the wire: newline-delimited JSON frames in, one
//! `{"id":…,"ok":…,…}` line back per frame (see the `logr-server` crate
//! docs for the full protocol reference).
//!
//! Run with: `cargo run --release --example serve_and_query`

use logr_server::json::{self, Json};
use logr_server::{EngineProfile, Server, ServerConfig, ServerError};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Send one frame line, read one response line, parse it.
fn call(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, frame: &str) -> Json {
    writeln!(stream, "{frame}").expect("send frame");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    json::parse(line.trim_end()).expect("daemon speaks valid JSON")
}

fn result(resp: &Json) -> &Json {
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(true),
        "frame failed: {}",
        resp.to_text()
    );
    resp.get("result").expect("ok frame carries a result")
}

fn main() -> Result<(), ServerError> {
    let dir = std::env::temp_dir().join(format!("logr-serve-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // A small profile so two windows close quickly: 16-statement
    // windows, 256 KiB of resident shard budget shared by all tenants,
    // fsyncs coalesced across tenants every 5 ms.
    let config = ServerConfig::new(&dir)
        .profile(EngineProfile { window: 16, clusters: 2, seed: 42, ..EngineProfile::default() })
        .global_budget(256 * 1024)
        .threads(2)
        .commit_interval(Duration::from_millis(5));
    let handle = Server::bind(config, "127.0.0.1:0")?.spawn();
    println!("daemon listening on {}", handle.addr());

    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // Two tenants, two workloads. The `sales` tenant is status-lookup
    // heavy; `ops` joins audit tables. Acks arrive only once the close
    // that absorbed a batch is covered by a group-commit fsync.
    for i in 0..48 {
        let sql = if i % 3 == 0 {
            "SELECT id, total FROM orders WHERE status = ?"
        } else {
            "SELECT id, body FROM tickets WHERE status = ?"
        };
        call(
            &mut stream,
            &mut reader,
            &format!("{{\"id\":{i},\"op\":\"ingest\",\"tenant\":\"sales\",\"sql\":\"{sql}\"}}"),
        );
    }
    for _ in 0..32 {
        let sql = "SELECT e.user FROM events e, audits a WHERE e.user = ?";
        call(
            &mut stream,
            &mut reader,
            &format!("{{\"op\":\"ingest\",\"tenant\":\"ops\",\"sql\":\"{sql}\"}}"),
        );
    }

    // The whole analytics read surface is wire ops over lock-free
    // snapshots — ingest on other connections never blocks these.
    let resp = call(&mut stream, &mut reader, "{\"op\":\"frequency\",\"tenant\":\"sales\",\"pred\":{\"and\":[{\"table\":\"orders\"},{\"column_eq\":\"status\"}]}}");
    println!("sales: ~{:.0} status-lookups on orders", result(&resp).as_f64().unwrap_or(0.0));

    let resp = call(
        &mut stream,
        &mut reader,
        "{\"op\":\"top_k\",\"tenant\":\"sales\",\"class\":\"from\",\"k\":2}",
    );
    for entry in result(&resp).as_arr().unwrap_or(&[]) {
        let feature = entry.get("feature").and_then(|f| f.get("text")).and_then(Json::as_str);
        println!(
            "sales hot table: {} (~{:.0} queries)",
            feature.unwrap_or("?"),
            entry.get("estimated").and_then(Json::as_f64).unwrap_or(0.0)
        );
    }

    let resp = call(
        &mut stream,
        &mut reader,
        "{\"op\":\"advise\",\"tenant\":\"sales\",\"advisor\":\"index\",\"min_share\":0.2}",
    );
    for advice in result(&resp).as_arr().unwrap_or(&[]) {
        println!(
            "sales index advice: {}",
            advice.get("subject").and_then(Json::as_str).unwrap_or("?")
        );
    }

    let resp = call(
        &mut stream,
        &mut reader,
        "{\"op\":\"drift\",\"tenant\":\"sales\",\"tolerance\":0.05}",
    );
    match result(&resp) {
        Json::Null => println!("sales drift: no report yet (one window only)"),
        report => println!(
            "sales drift: overall {:.4} nats, stable: {}",
            report.get("overall").and_then(Json::as_f64).unwrap_or(0.0),
            report.get("stable").and_then(Json::as_bool).unwrap_or(false),
        ),
    }

    // Global stats show the budget split across the live tenants.
    let resp = call(&mut stream, &mut reader, "{\"op\":\"stats\"}");
    let stats = result(&resp);
    println!(
        "{} tenants share the budget: {} bytes each",
        stats.get("tenants").and_then(Json::as_u64).unwrap_or(0),
        stats.get("per_tenant_budget").and_then(Json::as_u64).unwrap_or(0),
    );

    // A clean shutdown drains in-flight writes and fsyncs every
    // tenant's delta log before the listener thread exits.
    call(&mut stream, &mut reader, "{\"op\":\"shutdown\"}");
    handle.join()?;
    println!("daemon stopped; stores are durable under {}", dir.display());

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
