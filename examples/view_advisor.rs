//! Materialized-view selection from a compressed log (paper §2's second
//! application), through the [`logr::analytics`] facade.
//!
//! "The results of joins … are good candidates for materialization when
//! they appear frequently in the workload. Like index selection, view
//! selection … requires repeated frequency estimation over the workload" —
//! here the frequency of *table pairs co-occurring in the FROM clause*.
//! Pair co-occurrence is exactly where mixtures earn their keep: a single
//! naive encoding multiplies independent table marginals and hallucinates
//! joins that never happen, while the mixture's per-cluster estimates keep
//! anti-correlated workloads apart (§5). The single-encoding baseline
//! below is the same snapshot recompressed at K = 1 — a read-time choice
//! ([`logr::EngineSnapshot::summary_with`]), no second ingestion.
//!
//! Run with: `cargo run --release --example view_advisor`

use logr::analytics::{Advisor, Pred, SummaryView, ViewAdvisor, WorkloadQuery};
use logr::core::CompressionObjective;
use logr::feature::FeatureClass;
use logr::workload::{generate_usbank, UsBankConfig};
use logr::{Engine, Error};

fn main() -> Result<(), Error> {
    let synthetic = generate_usbank(&UsBankConfig::default());
    // Ground truth for the comparison below — a real deployment never
    // builds this.
    let (log, _) = synthetic.ingest();

    // Fig. 2's lesson: this workload is diverse — it needs a generous
    // cluster count before join anti-correlations resolve.
    let engine = Engine::builder().window(1 << 21).clusters(48).in_memory()?;
    for (sql, count) in &synthetic.statements {
        engine.ingest_with_count(sql, *count)?;
    }
    engine.flush()?;
    let snapshot = engine.snapshot()?;
    println!(
        "workload: {} queries over {} tables",
        snapshot.history().total_queries(),
        snapshot.history().codebook().iter().filter(|(_, f)| f.class == FeatureClass::From).count()
    );

    // Candidate views: every pair of tables that the *summary* says
    // co-occurs, scored by estimated joint frequency — one facade call.
    let query = snapshot.query()?.expect("non-empty workload");
    let candidates: Vec<_> = query
        .cooccurrence(FeatureClass::From)?
        .into_iter()
        .filter(|c| c.estimated >= 1.0)
        .collect();

    // The K = 1 baseline, recompressed from the same snapshot at read
    // time, queried through the same typed surface.
    let single_summary =
        snapshot.summary_with(CompressionObjective::FixedK(1))?.expect("non-empty workload");
    let single_view = SummaryView::from_parts(
        single_summary,
        snapshot.history().codebook(),
        snapshot.history().total_queries(),
    );
    let single = WorkloadQuery::over(&single_view)?.expect("summary present");

    println!("\ntop join-pair frequencies (mixture vs single-encoding vs truth):");
    println!("{:<44} {:>12} {:>12} {:>12}", "candidate view", "mixture", "single", "true");
    let mut mixture_abs_err = 0.0;
    let mut single_abs_err = 0.0;
    for (i, c) in candidates.iter().enumerate() {
        let single_est = single.frequency(&Pred::joins(c.a.text.clone(), c.b.text.clone()))?;
        let truth = truth_for(&log, c);
        if i < 10 {
            let pair = format!("{} ⋈ {}", c.a.text, c.b.text);
            println!("{pair:<44} {:>12.0} {single_est:>12.0} {truth:>12.0}", c.estimated);
        }
        mixture_abs_err += (c.estimated - truth).abs();
        single_abs_err += (single_est - truth).abs();
    }
    println!(
        "\ntotal |estimate − truth| over {} candidate views: mixture {:.0}, single {:.0}",
        candidates.len(),
        mixture_abs_err,
        single_abs_err
    );
    println!(
        "mixture estimates are {:.1}× more accurate — anti-correlation captured (paper §5)",
        (single_abs_err / mixture_abs_err.max(1.0)).max(1.0)
    );

    // The advisor itself: the same co-occurrence ranking as shipped
    // library code, off the same snapshot any reader thread could hold.
    println!("\nadvisor picks (≥ 1% of workload):");
    for advice in ViewAdvisor::new(0.01).advise(&*snapshot)?.iter().take(5) {
        println!(
            "  CREATE MATERIALIZED VIEW … AS ({})   -- ~{:.1}% of queries",
            advice.subject,
            100.0 * advice.share
        );
    }
    Ok(())
}

/// True joint frequency, from the ground-truth log the analyst would not
/// have (demo only).
fn truth_for(log: &logr::feature::QueryLog, c: &logr::analytics::CoOccurrence) -> f64 {
    let ids: Vec<_> = [&c.a, &c.b].into_iter().filter_map(|f| log.codebook().get(f)).collect();
    log.support(&logr::feature::QueryVector::new(ids)) as f64
}
