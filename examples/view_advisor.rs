//! Materialized-view selection from a compressed log (paper §2's second
//! application).
//!
//! "The results of joins … are good candidates for materialization when
//! they appear frequently in the workload. Like index selection, view
//! selection … requires repeated frequency estimation over the workload" —
//! here the frequency of *table pairs co-occurring in the FROM clause*.
//! Pair co-occurrence is exactly where mixtures earn their keep: a single
//! naive encoding multiplies independent table marginals and hallucinates
//! joins that never happen, while the mixture's per-cluster estimates keep
//! anti-correlated workloads apart (§5).
//!
//! Run with: `cargo run --release --example view_advisor`

use logr::cluster::{cluster_log, ClusterMethod};
use logr::core::NaiveMixtureEncoding;
use logr::feature::{FeatureClass, FeatureId, QueryVector};
use logr::workload::{generate_usbank, UsBankConfig};

fn main() {
    let (log, _) = generate_usbank(&UsBankConfig::default()).ingest();
    println!(
        "workload: {} queries over {} tables",
        log.total_queries(),
        log.codebook().iter().filter(|(_, f)| f.class == FeatureClass::From).count()
    );

    // Fig. 2's lesson: this workload is diverse — it needs a generous
    // cluster count before join anti-correlations resolve.
    let single = NaiveMixtureEncoding::single(&log);
    let clustering = cluster_log(&log, 48, ClusterMethod::KMeansEuclidean, 0);
    let mixture = NaiveMixtureEncoding::build(&log, &clustering);

    // Candidate views: every pair of tables that the *summary* says
    // co-occurs; scored by estimated joint frequency.
    let tables: Vec<(FeatureId, String)> = log
        .codebook()
        .iter()
        .filter(|(_, f)| f.class == FeatureClass::From)
        .map(|(id, f)| (id, f.text.clone()))
        .collect();

    struct Candidate {
        pair: String,
        mixture_est: f64,
        single_est: f64,
        truth: f64,
    }
    let mut candidates = Vec::new();
    for (i, (ida, a)) in tables.iter().enumerate() {
        for (idb, b) in &tables[i + 1..] {
            let pattern = QueryVector::new(vec![*ida, *idb]);
            let mixture_est = mixture.estimate_count(&pattern);
            if mixture_est < 1.0 {
                continue;
            }
            candidates.push(Candidate {
                pair: format!("{a} ⋈ {b}"),
                mixture_est,
                single_est: single.estimate_count(&pattern),
                truth: log.support(&pattern) as f64,
            });
        }
    }
    candidates.sort_by(|x, y| y.mixture_est.total_cmp(&x.mixture_est));

    println!("\ntop join-pair frequencies (mixture vs single-encoding vs truth):");
    println!("{:<44} {:>12} {:>12} {:>12}", "candidate view", "mixture", "single", "true");
    let mut mixture_abs_err = 0.0;
    let mut single_abs_err = 0.0;
    for c in candidates.iter().take(10) {
        println!("{:<44} {:>12.0} {:>12.0} {:>12.0}", c.pair, c.mixture_est, c.single_est, c.truth);
    }
    for c in &candidates {
        mixture_abs_err += (c.mixture_est - c.truth).abs();
        single_abs_err += (c.single_est - c.truth).abs();
    }
    println!(
        "\ntotal |estimate − truth| over {} candidate views: mixture {:.0}, single {:.0}",
        candidates.len(),
        mixture_abs_err,
        single_abs_err
    );
    println!(
        "mixture estimates are {:.1}× more accurate — anti-correlation captured (paper §5)",
        (single_abs_err / mixture_abs_err.max(1.0)).max(1.0)
    );

    println!("\nadvisor picks (≥ 1% of workload):");
    let total = log.total_queries() as f64;
    for c in candidates.iter().filter(|c| c.mixture_est / total >= 0.01).take(5) {
        println!(
            "  CREATE MATERIALIZED VIEW … AS ({})   -- ~{:.1}% of queries",
            c.pair,
            100.0 * c.mixture_est / total
        );
    }
}
