//! Durable, bounded-memory streaming over an unbounded query log — the
//! full [`logr::Engine`] lifecycle: open on a directory, stream under a
//! resident budget, compact the store, crash, reopen, continue.
//!
//! A long-running engine accumulates one history shard per window, and
//! the shards' mismatch buffers grow quadratically with the
//! distinct-query count — fine for a demo, fatal for a daemon. This
//! example runs the same distinct-heavy stream twice:
//!
//! 1. **in-memory** — every closed shard stays resident;
//! 2. **durable** — `open(dir)` with a 256 KiB resident budget: closed
//!    shards evict to the versioned store and reload transparently, the
//!    manifest makes every window close a recovery point, and
//!    `compact()` folds the per-window shard files into one.
//!
//! Both runs must produce identical history summaries (the store holds
//! integer mismatch counts and bit-packed points — reloads are
//! bit-exact); after a simulated crash the reopened engine must agree
//! too. A final section closes windows on a wall-clock grid via
//! `ingest_at_ms` — the time-based flavor a production tail would use.
//!
//! Run with: `cargo run --release --example out_of_core_stream`

use logr::core::TimeWindows;
use logr::{Engine, Error};

/// 600 distinct statement shapes, cycled: enough distinct mass that the
/// history's shard payloads dwarf a 256 KiB budget. (The budget must
/// cover the largest single shard — the hot tail is pinned while the
/// close path reads it.)
fn statement(i: usize) -> String {
    let i = (i % 600) as u32;
    match i % 3 {
        0 => format!("SELECT c{}, c{} FROM t{} WHERE a{} = ?", i % 37, i % 23, i % 7, i % 19),
        1 => {
            format!("SELECT c{} FROM t{} WHERE a{} = ? AND b{} = ?", i % 41, i % 7, i % 19, i % 13)
        }
        _ => format!("SELECT c{}, c{} FROM t{}", i % 37, i % 41, i % 5),
    }
}

fn main() -> Result<(), Error> {
    const STREAM_LEN: usize = 1200;
    const BUDGET: usize = 256 * 1024;

    // ---- Run 1: in-memory (every shard resident). ----------------------
    let unbounded = Engine::builder().window(100).clusters(4).in_memory()?;
    for i in 0..STREAM_LEN {
        unbounded.ingest(&statement(i))?;
    }

    // ---- Run 2: durable (256 KiB resident budget, store on disk). ------
    let dir = std::env::temp_dir().join(format!("logr-ooc-example-{}", std::process::id()));
    let bounded = Engine::builder().window(100).clusters(4).resident_budget(BUDGET).open(&dir)?;
    let mut peak = 0usize;
    for i in 0..STREAM_LEN {
        if bounded.ingest(&statement(i))?.is_some() {
            peak = peak.max(bounded.resident_shard_bytes()?);
        }
    }

    println!("=== resident history-shard bytes ({STREAM_LEN} queries, window 100) ===");
    println!(
        "in-memory : {:>8} bytes, {} windows all resident",
        unbounded.resident_shard_bytes()?,
        unbounded.windows_closed()?
    );
    println!(
        "durable   : {:>8} bytes peak (budget {BUDGET}), {} shards on disk",
        peak,
        bounded.spilled_shards()?
    );
    assert!(peak <= BUDGET, "budget violated");

    // The summaries are bit-identical: reloaded shards serve the exact
    // mismatch counts the resident ones would.
    let a = unbounded.summary()?.expect("history");
    let b = bounded.summary()?.expect("history");
    assert_eq!(a.clustering, b.clustering);
    assert_eq!(a.error().to_bits(), b.error().to_bits());
    println!(
        "history summary over {} distinct queries: k={}, error={:.4} — identical in both runs",
        bounded.snapshot()?.history().distinct_count(),
        b.mixture.k(),
        b.error()
    );

    // ---- Compaction: many per-window files -> one. ---------------------
    // The replaced files stay on disk until the next reopen (snapshots
    // handed out before the compaction may still read them); recovery
    // garbage-collects everything the manifest no longer references.
    let files_before = std::fs::read_dir(&dir)?.count();
    let merged = bounded.compact()?;
    println!("compacted {merged} shards into one file, summaries unchanged");
    let c = bounded.summary()?.expect("history");
    assert_eq!(b.clustering, c.clustering);

    // ---- Crash + recovery: drop everything, reopen, agree. -------------
    drop(bounded);
    let reopened = Engine::open(&dir)?;
    let files_after = std::fs::read_dir(&dir)?.count();
    let d = reopened.summary()?.expect("history");
    assert_eq!(a.clustering, d.clustering);
    assert_eq!(a.error().to_bits(), d.error().to_bits());
    println!(
        "reopened from {} after a simulated crash: {} windows, summary bit-identical; \
         recovery swept the store from {files_before} files to {files_after}",
        dir.display(),
        reopened.windows_closed()?
    );

    // ---- Time-based windows (wall-clock grid, injected here). ----------
    let timed = Engine::builder()
        .time_windows(TimeWindows { window_ms: 1_000, slide_ms: None })
        .clusters(2)
        .in_memory()?;
    println!("=== time-based tumbling windows (1 s grid) ===");
    // ~3.3 statements per second for five seconds.
    for i in 0..17u64 {
        if let Some(w) = timed.ingest_at_ms(&statement(i as usize), 1, i * 300)? {
            println!(
                "window {} closed at t={}ms: {} queries, {} distinct",
                w.index,
                w.closed_at_ms.unwrap(),
                w.queries,
                w.distinct
            );
        }
    }
    if let Some(w) = timed.flush()? {
        println!("flush closed window {} with {} queries", w.index, w.queries);
    }

    let _ = std::fs::remove_dir_all(&dir);
    println!("ok");
    Ok(())
}
