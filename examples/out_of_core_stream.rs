//! Bounded-memory streaming over an unbounded query log (PR 3).
//!
//! A long-running `StreamSummarizer` accumulates one history shard per
//! window, and the shards' mismatch buffers grow quadratically with the
//! distinct-query count — fine for a demo, fatal for a daemon. This
//! example runs the same distinct-heavy stream twice:
//!
//! 1. **unbounded** — every closed shard stays resident (the PR 2
//!    behavior);
//! 2. **bounded** — `spill_to(dir, budget)` attaches the persistent shard
//!    store, evicting closed shards to disk under a 256 KiB resident
//!    budget and reloading them transparently.
//!
//! Both runs must produce identical history summaries (the store holds
//! integer mismatch counts and bit-packed points — reloads are
//! bit-exact), while the bounded run's resident footprint stays pinned.
//! A final section closes windows on a wall-clock grid via
//! `ingest_at_ms` — the time-based flavor a production tail would use.
//!
//! Run with: `cargo run --release --example out_of_core_stream`

use logr::cluster::Distance;
use logr::core::{StreamConfig, StreamSummarizer, TimeWindows};

/// 600 distinct statement shapes, cycled: enough distinct mass that the
/// history's shard payloads dwarf a 256 KiB budget. (The budget must
/// cover the largest single shard — the hot tail is pinned while the
/// close path reads it.)
fn statement(i: usize) -> String {
    let i = (i % 600) as u32;
    match i % 3 {
        0 => format!("SELECT c{}, c{} FROM t{} WHERE a{} = ?", i % 37, i % 23, i % 7, i % 19),
        1 => {
            format!("SELECT c{} FROM t{} WHERE a{} = ? AND b{} = ?", i % 41, i % 7, i % 19, i % 13)
        }
        _ => format!("SELECT c{}, c{} FROM t{}", i % 37, i % 41, i % 5),
    }
}

fn main() {
    const STREAM_LEN: usize = 1200;
    const BUDGET: usize = 256 * 1024;
    let config = StreamConfig { window: 100, k: 4, ..StreamConfig::default() };

    // ---- Run 1: unbounded (every shard resident). ----------------------
    let mut unbounded = StreamSummarizer::new(config);
    for i in 0..STREAM_LEN {
        unbounded.ingest(&statement(i));
    }

    // ---- Run 2: bounded (256 KiB resident budget, shards on disk). -----
    let dir = std::env::temp_dir().join(format!("logr-ooc-example-{}", std::process::id()));
    let mut bounded = StreamSummarizer::new(config);
    bounded.spill_to(&dir, BUDGET).expect("attach spill store");
    let mut peak = 0usize;
    for i in 0..STREAM_LEN {
        if bounded.ingest(&statement(i)).is_some() {
            peak = peak.max(bounded.resident_shard_bytes());
        }
    }

    println!("=== resident history-shard bytes ({STREAM_LEN} queries, window 100) ===");
    println!(
        "unbounded : {:>8} bytes, {} shards all resident",
        unbounded.resident_shard_bytes(),
        unbounded.shard_store().n_shards()
    );
    println!(
        "bounded   : {:>8} bytes peak (budget {BUDGET}), {} of {} shards on disk",
        peak,
        bounded.spilled_shards(),
        bounded.shard_store().n_shards()
    );
    assert!(peak <= BUDGET, "budget violated");

    // The summaries are bit-identical: reloaded shards serve the exact
    // mismatch counts the resident ones would.
    let a = unbounded.history_summary().expect("history");
    let b = bounded.history_summary().expect("history");
    assert_eq!(a.clustering, b.clustering);
    assert_eq!(a.error().to_bits(), b.error().to_bits());
    println!(
        "history summary over {} distinct queries: k={}, error={:.4} — identical in both runs",
        bounded.history().distinct_count(),
        b.mixture.k(),
        b.error()
    );

    // ---- Time-based windows (wall-clock grid, injected here). ----------
    let mut timed = StreamSummarizer::new(StreamConfig {
        time: Some(TimeWindows { window_ms: 1_000, slide_ms: None }),
        k: 2,
        metric: Distance::Hamming,
        ..StreamConfig::default()
    });
    println!("=== time-based tumbling windows (1 s grid) ===");
    // ~3.3 statements per second for five seconds.
    for i in 0..17u64 {
        if let Some(w) = timed.ingest_at_ms(&statement(i as usize), 1, i * 300) {
            println!(
                "window {} closed at t={}ms: {} queries, {} distinct",
                w.index,
                w.closed_at_ms.unwrap(),
                w.queries,
                w.distinct
            );
        }
    }
    if let Some(w) = timed.flush() {
        println!("flush closed window {} with {} queries", w.index, w.queries);
    }

    let _ = std::fs::remove_dir_all(&dir);
    println!("ok");
}
