//! Query recommendation from a compressed log (paper §1/§9.1: "automated
//! analysis of database access logs is critical for … query
//! recommendation"), through the [`logr::analytics`] facade.
//!
//! Recommenders like QueRIE and SnipSuggest score candidate query fragments
//! by how often they co-occur with what the user has typed so far. Those
//! co-occurrence counts are exactly the pattern marginals a LogR summary
//! estimates: [`logr::analytics::QueryRecommender`] featurizes the partial
//! query, then ranks every other feature `f` by the mixture estimate of
//! `p(f | partial) = est[partial ∪ {f}] / est[partial]`.
//!
//! Run with: `cargo run --release --example query_recommendation`

use logr::analytics::{Advisor, Pred, QueryRecommender};
use logr::feature::FeatureClass;
use logr::workload::{generate_pocketdata, PocketDataConfig};
use logr::{Engine, Error};

fn main() -> Result<(), Error> {
    // Historical workload → summary (this is all the recommender keeps).
    let synthetic = generate_pocketdata(&PocketDataConfig::default());
    let engine = Engine::builder().window(1 << 21).clusters(8).in_memory()?;
    for (sql, count) in &synthetic.statements {
        engine.ingest_with_count(sql, *count)?;
    }
    engine.flush()?;
    let snapshot = engine.snapshot()?;
    let summary = snapshot.summary()?.expect("non-empty workload");
    println!(
        "recommender state: {} clusters, {} stored marginals (log had {} queries)\n",
        summary.mixture.k(),
        summary.total_verbosity(),
        snapshot.history().total_queries()
    );

    // The user has typed a partial query.
    let partial_sql = "SELECT sms_type FROM messages WHERE status = ?";
    println!("partial query: {partial_sql}");

    let query = snapshot.query()?.expect("non-empty workload");
    let base = query.frequency(
        &Pred::column("sms_type").and(Pred::table("messages")).and(Pred::column_eq("status")),
    )?;
    println!("fragment matches ≈ {base:.0} historical queries\n");

    // Rank candidate continuations by conditional probability — the
    // advisor runs off the same snapshot any reader thread could hold.
    let recs = QueryRecommender::new(partial_sql, 0.10).advise(&*snapshot)?;
    if recs.is_empty() {
        println!("fragment unseen in the workload — nothing to recommend");
        return Ok(());
    }

    println!("suggested continuations (p(feature | partial) ≥ 10%):");
    for advice in recs.iter().take(12) {
        let kind = match advice.features[0].class {
            FeatureClass::Select => "add to SELECT",
            FeatureClass::Where => "add to WHERE ",
            FeatureClass::From => "join table   ",
            _ => "extend with  ",
        };
        println!("  {kind}  {:<42} ({:.0}%)", advice.subject, advice.share * 100.0);
    }

    // Sanity: compare the top suggestion's conditional against ground
    // truth (demo only — the recommender never needs the raw log).
    let (log, _) = synthetic.ingest();
    if let Some(top) = recs.first() {
        let partial_ids: Vec<_> = [
            logr::feature::Feature::select("sms_type"),
            logr::feature::Feature::from_table("messages"),
            logr::feature::Feature::where_atom("status = ?"),
        ]
        .iter()
        .filter_map(|f| log.codebook().get(f))
        .collect();
        let partial: logr::feature::QueryVector = partial_ids.iter().copied().collect();
        let mut extended_ids = partial_ids;
        extended_ids
            .push(log.codebook().get(&top.features[0]).expect("recommended feature exists"));
        let extended: logr::feature::QueryVector = extended_ids.into_iter().collect();
        let true_p = log.support(&extended) as f64 / log.support(&partial) as f64;
        println!(
            "\ntop suggestion check: estimated {:.0}% vs true {:.0}%",
            top.share * 100.0,
            true_p * 100.0
        );
    }
    Ok(())
}
