//! Query recommendation from a compressed log (paper §1/§9.1: "automated
//! analysis of database access logs is critical for … query
//! recommendation").
//!
//! Recommenders like QueRIE and SnipSuggest score candidate query fragments
//! by how often they co-occur with what the user has typed so far. Those
//! co-occurrence counts are exactly the pattern marginals a LogR summary
//! estimates: given the features of a partial query, rank every other
//! feature `f` by the mixture estimate of
//! `p(f | partial) = est[partial ∪ {f}] / est[partial]`.
//!
//! Run with: `cargo run --release --example query_recommendation`

use logr::core::{CompressionObjective, LogR, LogRConfig};
use logr::feature::{FeatureClass, LogIngest, QueryVector};
use logr::workload::{generate_pocketdata, PocketDataConfig};

fn main() {
    // Historical workload → summary (this is all the recommender keeps).
    let (log, _) = generate_pocketdata(&PocketDataConfig::default()).ingest();
    let summary =
        LogR::new(LogRConfig { objective: CompressionObjective::FixedK(8), ..Default::default() })
            .compress(&log);
    println!(
        "recommender state: {} clusters, {} stored marginals (log had {} queries)\n",
        summary.mixture.k(),
        summary.total_verbosity(),
        log.total_queries()
    );

    // The user has typed a partial query.
    let partial_sql = "SELECT sms_type FROM messages WHERE status = ?";
    println!("partial query: {partial_sql}");

    // Featurize the fragment against the summary's codebook.
    let mut probe = LogIngest::new();
    probe.ingest(partial_sql);
    let (probe_log, _) = probe.finish();
    let mut partial_ids = Vec::new();
    for (_, feature) in probe_log.codebook().iter() {
        if let Some(id) = log.codebook().get(feature) {
            partial_ids.push(id);
        }
    }
    let partial: QueryVector = partial_ids.into_iter().collect();
    let base = summary.estimate_count(&partial);
    println!("fragment matches ≈ {base:.0} historical queries\n");
    if base <= 0.0 {
        println!("fragment unseen in the workload — nothing to recommend");
        return;
    }

    // Rank candidate continuations by conditional probability.
    let mut recs: Vec<(String, FeatureClass, f64)> = Vec::new();
    for (id, feature) in log.codebook().iter() {
        if partial.contains(id) {
            continue;
        }
        let mut extended_ids: Vec<_> = partial.iter().collect();
        extended_ids.push(id);
        let extended = QueryVector::new(extended_ids);
        let conditional = summary.estimate_count(&extended) / base;
        if conditional > 0.10 {
            recs.push((feature.text.clone(), feature.class, conditional));
        }
    }
    recs.sort_by(|a, b| b.2.total_cmp(&a.2));

    println!("suggested continuations (p(feature | partial) ≥ 10%):");
    for (text, class, p) in recs.iter().take(12) {
        let kind = match class {
            FeatureClass::Select => "add to SELECT",
            FeatureClass::Where => "add to WHERE ",
            FeatureClass::From => "join table   ",
            _ => "extend with  ",
        };
        println!("  {kind}  {text:<42} ({:.0}%)", p * 100.0);
    }

    // Sanity: compare the top suggestion's conditional against ground truth.
    if let Some((text, class, est_p)) = recs.first() {
        let fid = log
            .codebook()
            .get(&logr::feature::Feature::new(*class, text.clone()))
            .expect("recommended feature exists");
        let mut ids: Vec<_> = partial.iter().collect();
        ids.push(fid);
        let true_p = log.support(&QueryVector::new(ids)) as f64 / log.support(&partial) as f64;
        println!(
            "\ntop suggestion check: estimated {:.0}% vs true {:.0}%",
            est_p * 100.0,
            true_p * 100.0
        );
    }
}
