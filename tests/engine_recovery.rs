//! PR 4 acceptance, recovery half: `Engine::open` on a previously
//! spilled store reproduces window summaries, drift, novelty, and
//! history summaries **bit-identical** to an engine that never restarted
//! (property-tested over random workloads, window shapes, and restart
//! points), and every way the store can be damaged surfaces as a
//! distinct typed `logr::Error` — never a panic.

use logr::cluster::spill::{self, fnv1a64};
use logr::cluster::testutil::TempStore;
use logr::cluster::SpillError;
use logr::core::WindowSummary;
use logr::{Engine, EngineBuilder, Error};
use proptest::prelude::*;
use std::sync::Arc;

/// A pool of distinct statement shapes over shared tables/columns, so
/// random streams mix repeats, novel queries, unparseable garbage, and
/// multi-branch (OR) statements.
fn statement(i: u64) -> String {
    match i % 7 {
        0 => format!("SELECT c{}, c{} FROM t{} WHERE a{} = ?", i % 13, i % 11, i % 3, i % 7),
        1 => format!("SELECT c{} FROM t{} WHERE a{} = ? AND b{} = ?", i % 17, i % 3, i % 7, i % 5),
        2 => format!("SELECT c{}, c{} FROM t{}", i % 13, i % 17, i % 4),
        3 => format!("SELECT c{} FROM t{} WHERE a{} > ?", i % 11, i % 4, i % 7),
        4 => format!("SELECT c{} FROM t{} WHERE x{} = ? OR y{} = ?", i % 5, i % 3, i % 5, i % 3),
        5 => "THIS IS NOT SQL @@@".to_string(),
        _ => format!("SELECT balance FROM accounts WHERE owner{} = ?", i % 6),
    }
}

fn assert_windows_identical(a: &WindowSummary, b: &WindowSummary) {
    assert_eq!(a.index, b.index, "window index");
    assert_eq!(a.queries, b.queries, "window {} queries", a.index);
    assert_eq!(a.distinct, b.distinct, "window {} distinct", a.index);
    assert_eq!(a.new_distinct, b.new_distinct, "window {} new distinct", a.index);
    assert_eq!(a.closed_at_ms, b.closed_at_ms, "window {} boundary", a.index);
    assert_eq!(a.summary.clustering, b.summary.clustering, "window {} clustering", a.index);
    assert_eq!(
        a.summary.error().to_bits(),
        b.summary.error().to_bits(),
        "window {} error",
        a.index
    );
    assert_eq!(a.stable, b.stable, "window {} stability", a.index);
    match (&a.drift, &b.drift) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.overall.to_bits(), y.overall.to_bits(), "window {} drift", a.index);
            assert_eq!(x.new_features, y.new_features, "window {} new features", a.index);
            assert_eq!(
                x.vanished_features, y.vanished_features,
                "window {} vanished features",
                a.index
            );
        }
        _ => panic!("window {}: drift presence diverged", a.index),
    }
    assert_eq!(a.novelty.len(), b.novelty.len(), "window {} novelty len", a.index);
    for (x, y) in a.novelty.iter().zip(&b.novelty) {
        assert_eq!(x.to_bits(), y.to_bits(), "window {} novelty", a.index);
    }
}

/// Drive `engine` over `stream[from..]`, returning every closed window.
fn drive(engine: &Engine, stream: &[(String, u64)], from: usize) -> Vec<Arc<WindowSummary>> {
    stream[from..]
        .iter()
        .filter_map(|(sql, count)| engine.ingest_with_count(sql, *count).expect("ingest"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance property: checkpoint → drop → reopen at an
    /// arbitrary mid-stream point (mid-window included), then continue —
    /// every later window artifact and the final history summary match a
    /// never-restarted engine to the bit.
    #[test]
    fn reopened_engine_is_bit_identical(
        seeds in prop::collection::vec(0u64..60, 12..90),
        counts in prop::collection::vec(1u64..4, 12..90),
        window in 8u64..24,
        slide_num in 0u64..3,
        restart_frac in 0usize..100,
        budget_zero in proptest::arbitrary::any::<bool>(),
    ) {
        let stream: Vec<(String, u64)> = seeds
            .iter()
            .zip(counts.iter().cycle())
            .map(|(&s, &c)| (statement(s), c))
            .collect();
        let slide = (slide_num > 0).then(|| (window / (slide_num + 1)).max(1));
        let restart_at = restart_frac * stream.len() / 100;
        let budget = if budget_zero { 0 } else { usize::MAX };

        let build = || {
            let mut b = Engine::builder().window(window).clusters(3).resident_budget(budget);
            if let Some(s) = slide {
                b = b.slide(s);
            }
            b
        };
        // Engine A never restarts; engine B checkpoints mid-stream (the
        // checkpoint captures the half-filled window buffer), is dropped
        // — losing all in-memory state — and recovers from the store
        // alone. TempStore created the directories; open() treats an
        // empty directory as a fresh store.
        let dir_a = TempStore::new("engine-prop-a");
        let dir_b = TempStore::new("engine-prop-b");
        let straight = build().open(dir_a.path()).expect("open straight-through engine");
        let straight_windows = drive(&straight, &stream, 0);

        let first = build().open(dir_b.path()).expect("open pre-restart engine");
        let mut restarted_windows = drive(&first, &stream[..restart_at], 0);
        first.checkpoint().expect("checkpoint");
        drop(first);
        let second = build().open(dir_b.path()).expect("reopen");
        prop_assert_eq!(
            second.windows_closed().unwrap(),
            restarted_windows.len(),
            "recovered window count"
        );
        restarted_windows.extend(drive(&second, &stream, restart_at));

        prop_assert_eq!(straight_windows.len(), restarted_windows.len(), "close count");
        for (a, b) in straight_windows.iter().zip(&restarted_windows) {
            assert_windows_identical(a, b);
        }
        // Final history summaries (and drift/novelty via the snapshots)
        // agree to the bit.
        let (sa, sb) = (straight.snapshot().unwrap(), second.snapshot().unwrap());
        prop_assert_eq!(sa.total_queries(), sb.total_queries());
        match (sa.summary().unwrap(), sb.summary().unwrap()) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                prop_assert_eq!(&x.clustering, &y.clustering);
                prop_assert_eq!(x.error().to_bits(), y.error().to_bits());
                prop_assert_eq!(x.total_verbosity(), y.total_verbosity());
            }
            _ => prop_assert!(false, "summary presence diverged"),
        }
    }
}

#[test]
fn reopen_without_checkpoint_recovers_the_last_window_close() {
    // Ingestion persists at window granularity: dropping mid-window
    // without a checkpoint loses only the buffered tail, and the reopened
    // engine resumes from the last close.
    let store = TempStore::new("engine-close-granularity");
    let engine = Engine::builder().window(10).open(store.path()).unwrap();
    for i in 0..27 {
        engine.ingest(&statement(i)).unwrap();
    }
    assert_eq!(engine.windows_closed().unwrap(), 2);
    drop(engine);
    let reopened = Engine::open(store.path()).unwrap();
    assert_eq!(reopened.windows_closed().unwrap(), 2);
    assert_eq!(reopened.total_queries().unwrap(), 20, "buffered tail was not checkpointed");
}

#[test]
fn compacted_store_reopens_bit_identically() {
    // Compaction (satellite): many small shard files merge into one, the
    // stale files disappear, and both the live engine and a reopened one
    // serve bit-identical summaries.
    let store = TempStore::new("engine-compact");
    let engine = Engine::builder().window(8).clusters(2).open(store.path()).unwrap();
    for i in 0..80 {
        engine.ingest(&statement(i)).unwrap();
    }
    let before = engine.summary().unwrap().expect("summary");
    // A reader snapshot taken *before* the compaction: it references the
    // pre-compact shard files and must keep answering after them.
    let pre_compact_snapshot = engine.snapshot().unwrap();
    let files_before = std::fs::read_dir(store.path()).unwrap().count();
    let merged = engine.compact().unwrap();
    assert!(merged > 1, "expected a multi-shard history, merged {merged}");
    // Stale files are NOT deleted while the engine lives — snapshots may
    // still read them (regression: an eager delete broke live readers).
    let files_after_compact = std::fs::read_dir(store.path()).unwrap().count();
    assert_eq!(files_after_compact, files_before + 1, "compact must only add the merged file");
    let via_old_snapshot = pre_compact_snapshot.summary().unwrap().expect("summary");
    assert_eq!(before.clustering, via_old_snapshot.clustering);
    let after = engine.summary().unwrap().expect("summary");
    assert_eq!(before.clustering, after.clustering);
    assert_eq!(before.error().to_bits(), after.error().to_bits());
    // Reopening garbage-collects the unreferenced files (no snapshot can
    // exist then) and still serves bit-identical summaries.
    drop(engine);
    drop(pre_compact_snapshot);
    let reopened = Engine::open(store.path()).unwrap();
    let files_after_reopen = std::fs::read_dir(store.path()).unwrap().count();
    assert!(
        files_after_reopen < files_before,
        "{files_before} files -> {files_after_reopen} (manifest + merged shard expected)"
    );
    let recovered = reopened.summary().unwrap().expect("summary");
    assert_eq!(before.clustering, recovered.clustering);
    assert_eq!(before.error().to_bits(), recovered.error().to_bits());
    // Idempotent.
    assert_eq!(reopened.compact().unwrap(), 0);
}

#[test]
fn corrupt_stored_config_is_rejected_not_panicked() {
    // A checksum-valid manifest carrying a configuration the summarizer
    // would refuse (here: window 0) must surface as CorruptManifest.
    let (store, _) = damaged_store_fixture("engine-bad-config");
    let path = store.join(logr::manifest::FILE_NAME);
    let mut bytes = std::fs::read(&path).unwrap();
    // The window size is the first body field (offset 12, u64 LE).
    bytes[12..20].copy_from_slice(&0u64.to_le_bytes());
    let total = bytes.len();
    let checksum = fnv1a64(&bytes[8..total - 8]);
    bytes[total - 8..].copy_from_slice(&checksum.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    match Engine::open(store.path()).unwrap_err() {
        Error::CorruptManifest { detail } => {
            assert!(detail.contains("window must be positive"), "{detail}")
        }
        other => panic!("wrong error: {other}"),
    }
}

// ---- recovery edge cases: each a distinct typed error, never a panic --

/// A small persisted store to damage.
#[test]
fn resume_gc_spares_foreign_files_and_removes_orphaned_shards() {
    let store = TempStore::new("engine-gc-scope");
    let engine = Engine::builder().window(6).open(store.path()).unwrap();
    for i in 0..30 {
        engine.ingest(&statement(i)).unwrap();
    }
    engine.checkpoint().unwrap();
    drop(engine);
    // A store directory may hold files the engine does not own — even
    // ones with a .bin extension. Only the spill store's own
    // `shard-*.bin` namespace is the engine's to clean.
    let foreign_bin = store.path().join("model.bin");
    let foreign_txt = store.path().join("notes.txt");
    let orphan_shard = store.path().join("shard-99999-1-deadbeef.bin");
    std::fs::write(&foreign_bin, b"user data, not a shard").unwrap();
    std::fs::write(&foreign_txt, b"user notes").unwrap();
    std::fs::write(&orphan_shard, b"compaction leftover").unwrap();

    let engine = Engine::open(store.path()).unwrap();
    assert!(foreign_bin.exists(), "resume GC deleted a user file");
    assert!(foreign_txt.exists(), "resume GC deleted a user file");
    assert!(!orphan_shard.exists(), "unreferenced engine shard survived GC");
    // The engine itself recovered fine alongside the foreign files.
    assert!(engine.total_queries().unwrap() > 0);
}

fn damaged_store_fixture(tag: &str) -> (TempStore, Vec<std::path::PathBuf>) {
    let store = TempStore::new(tag);
    let engine = Engine::builder().window(6).open(store.path()).unwrap();
    for i in 0..30 {
        engine.ingest(&statement(i)).unwrap();
    }
    engine.checkpoint().unwrap();
    drop(engine);
    let shards: Vec<std::path::PathBuf> = std::fs::read_dir(store.path())
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "bin"))
        .collect();
    assert!(shards.len() >= 2, "fixture needs several shard files");
    (store, shards)
}

#[test]
fn live_store_cannot_be_opened_twice() {
    // Opening a store owned by a live engine must refuse: the second
    // open's recovery would garbage-collect shard files the first
    // engine's snapshots still read.
    let store = TempStore::new("engine-lock");
    let engine = Engine::builder().window(6).open(store.path()).unwrap();
    for i in 0..20 {
        engine.ingest(&statement(i)).unwrap();
    }
    match Engine::open(store.path()).unwrap_err() {
        Error::StoreLocked { pid, .. } => assert_eq!(pid, std::process::id()),
        other => panic!("wrong error: {other}"),
    }
    // Dropping the engine releases the lock; the store reopens cleanly.
    drop(engine);
    let reopened = Engine::open(store.path()).unwrap();
    assert_eq!(reopened.windows_closed().unwrap(), 3);
}

#[test]
fn resume_on_an_empty_dir_is_missing_manifest() {
    let store = TempStore::new("engine-empty");
    let err = EngineBuilder::new().resume(store.path()).unwrap_err();
    match err {
        Error::MissingManifest { dir } => assert_eq!(dir, store.path()),
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn manifest_newer_than_the_binary_is_version_gated() {
    let (store, _) = damaged_store_fixture("engine-version");
    let path = store.join(logr::manifest::FILE_NAME);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8..12].copy_from_slice(&(logr::manifest::VERSION + 1).to_le_bytes());
    // Keep the checksum consistent so the version gate — not the
    // integrity check — is what must fire.
    let total = bytes.len();
    let checksum = fnv1a64(&bytes[8..total - 8]);
    bytes[total - 8..].copy_from_slice(&checksum.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    match Engine::open(store.path()).unwrap_err() {
        Error::ManifestVersion { found, supported } => {
            assert_eq!(found, logr::manifest::VERSION + 1);
            assert_eq!(supported, logr::manifest::VERSION);
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn corrupt_manifest_is_a_typed_error() {
    let (store, _) = damaged_store_fixture("engine-manifest-rot");
    let path = store.join(logr::manifest::FILE_NAME);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(Engine::open(store.path()), Err(Error::CorruptManifest { .. })));
}

#[test]
fn deleted_shard_file_is_missing_shard() {
    let (store, shards) = damaged_store_fixture("engine-deleted");
    std::fs::remove_file(&shards[0]).unwrap();
    match Engine::open(store.path()).unwrap_err() {
        Error::MissingShard { path } => assert_eq!(path, shards[0]),
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn truncated_shard_file_is_a_typed_spill_error() {
    let (store, shards) = damaged_store_fixture("engine-truncated");
    let bytes = std::fs::read(&shards[1]).unwrap();
    std::fs::write(&shards[1], &bytes[..bytes.len() / 2]).unwrap();
    match Engine::open(store.path()).unwrap_err() {
        Error::Spill(SpillError::Truncated { .. }) => {}
        other => panic!("wrong error: {other}"),
    }
    // A flipped payload byte, by contrast, is a checksum mismatch.
    std::fs::write(&shards[1], &bytes).unwrap();
    let mut rotted = bytes.clone();
    let last = rotted.len() - 9; // inside the checksummed span
    rotted[last] ^= 0x01;
    std::fs::write(&shards[1], &rotted).unwrap();
    match Engine::open(store.path()).unwrap_err() {
        Error::Spill(SpillError::ChecksumMismatch { .. }) => {}
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn swapped_shard_payloads_are_a_store_mismatch_never_wrong_distances() {
    // Every shard file is individually checksum-valid, but two of them
    // have exchanged contents — the store as a whole no longer describes
    // the manifest's checkpoint. Serving distances from it would be
    // silently wrong; recovery must refuse with a typed StoreMismatch.
    let (store, mut shards) = damaged_store_fixture("engine-payload-swap");
    shards.sort(); // chain order (shard-00000… < shard-00001…)
    let a = std::fs::read(&shards[0]).unwrap();
    let b = std::fs::read(&shards[1]).unwrap();
    std::fs::write(&shards[0], &b).unwrap();
    std::fs::write(&shards[1], &a).unwrap();
    match Engine::open(store.path()).unwrap_err() {
        Error::StoreMismatch { detail } => {
            assert!(detail.contains("chain"), "{detail}");
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn swapped_in_foreign_shard_is_a_store_mismatch_or_chain_error() {
    // A checksum-valid shard file from a *different* store must not be
    // silently accepted: either the chain validation or the
    // manifest/file cross-check refuses.
    let (store, shards) = damaged_store_fixture("engine-foreign");
    // Build a foreign-but-valid record and overwrite the last shard file.
    let foreign =
        spill::ShardRecord { n_features: 4, start: 0, intra: vec![], cross: vec![], bits: vec![] };
    spill::write_file(shards.last().unwrap(), &foreign).unwrap();
    match Engine::open(store.path()).unwrap_err() {
        Error::Spill(SpillError::Corrupt(_)) | Error::StoreMismatch { .. } => {}
        other => panic!("wrong error: {other}"),
    }
}
