//! The end-to-end operations workflow the library exists for: compress a
//! baseline on the database host, ship the portable artifact, and monitor
//! later windows for drift — all through the public facade.

use logr::core::{feature_drift, CompressionObjective, LogR, LogRConfig, PortableSummary};
use logr::feature::{Feature, LogIngest};
use logr::workload::{generate_pocketdata, PocketDataConfig};

#[test]
fn compress_ship_and_answer() {
    let (log, _) = generate_pocketdata(&PocketDataConfig::small(77)).ingest();
    let summary =
        LogR::new(LogRConfig { objective: CompressionObjective::FixedK(6), ..Default::default() })
            .compress(&log);

    // Ship through bytes, not shared memory.
    let portable = PortableSummary::from_summary(&summary, &log);
    let mut wire = Vec::new();
    portable.write_to(&mut wire).unwrap();
    let received = PortableSummary::read_from(wire.as_slice()).unwrap();

    // Single-feature (table) counts answered from the artifact are exact.
    let mut checked = 0;
    for (id, feature) in log.codebook().iter() {
        if feature.class != logr::feature::FeatureClass::From {
            continue;
        }
        let est = received.estimate_count(std::slice::from_ref(feature));
        let truth = log.support(&logr::feature::QueryVector::new(vec![id])) as f64;
        assert!((est - truth).abs() < 1e-6, "{feature}: {est} vs {truth}");
        checked += 1;
    }
    assert!(checked >= 4, "expected several tables, saw {checked}");
    // The artifact stores marginals, not queries: what went over the wire
    // is exactly the summary, bounded by verbosity — not by log size.
    assert_eq!(received.total_verbosity(), summary.total_verbosity());
    assert!(
        wire.len() < 64 * received.total_verbosity() + 64 * log.num_features() + 1024,
        "wire size {} out of proportion to verbosity {}",
        wire.len(),
        received.total_verbosity()
    );
}

#[test]
fn same_workload_different_day_is_stable() {
    // Two runs of the same workload with different multiplicity noise but
    // the same template population: drift must stay small and report no
    // new features.
    let (monday, _) = generate_pocketdata(&PocketDataConfig::small(5)).ingest();
    let (tuesday, _) = generate_pocketdata(&PocketDataConfig::small(5)).ingest();
    let report = feature_drift(&monday, &tuesday);
    assert!(report.new_features.is_empty());
    assert!(report.overall < 1e-9, "identical generator drifted: {}", report.overall);
}

#[test]
fn injected_traffic_is_flagged() {
    let (baseline, _) = generate_pocketdata(&PocketDataConfig::small(5)).ingest();
    // Window = a slice of the same workload + a credential scan.
    let synthetic = generate_pocketdata(&PocketDataConfig::small(5));
    let mut window = LogIngest::new();
    for (sql, count) in synthetic.statements.iter().take(30) {
        window.ingest_with_count(sql, *count);
    }
    window.ingest_with_count("SELECT password_hash, salt FROM credentials WHERE uid = ?", 40);
    let (window_log, _) = window.finish();

    let report = feature_drift(&baseline, &window_log);
    assert!(!report.is_stable(1e-6));
    assert!(
        report.new_features.iter().any(|f| f.contains("credentials")),
        "injected table not surfaced: {:?}",
        report.new_features
    );
    // And the baseline's summary prices the injected query at zero.
    let summary = LogR::with_clusters(6).compress(&baseline);
    let est = summary.estimate_count_features(&baseline, &[Feature::from_table("credentials")]);
    assert_eq!(est, 0.0);
}
