//! End-to-end integration: raw SQL text → ingestion → clustering →
//! mixture encoding → statistics, across the synthetic workloads.

use logr::cluster::{cluster_log, ClusterMethod, Distance};
use logr::core::{
    empirical_entropy, marginal_deviation, synthesis_error, CompressionObjective, LogR, LogRConfig,
    NaiveMixtureEncoding,
};
use logr::feature::{Feature, QueryVector};
use logr::workload::{generate_pocketdata, generate_usbank, PocketDataConfig, UsBankConfig};

#[test]
fn pocketdata_end_to_end() {
    let synthetic = generate_pocketdata(&PocketDataConfig::small(42));
    let (log, stats) = synthetic.ingest();

    assert_eq!(stats.parse_errors, 0);
    assert_eq!(stats.unsupported, 0);
    assert_eq!(stats.distinct_rewritable, stats.distinct_anonymized);
    assert!(log.total_queries() >= synthetic.total());

    // Compress at a few K; error must trend down, verbosity up.
    let mut errors = Vec::new();
    let mut verbosities = Vec::new();
    for k in [1, 4, 16] {
        let clustering = cluster_log(&log, k, ClusterMethod::Spectral(Distance::Hamming), 7);
        let mixture = NaiveMixtureEncoding::build(&log, &clustering);
        errors.push(mixture.error());
        verbosities.push(mixture.total_verbosity());
    }
    assert!(errors[2] < errors[0], "error did not decrease with clusters: {errors:?}");
    assert!(
        verbosities[2] >= verbosities[0],
        "verbosity did not grow with clusters: {verbosities:?}"
    );
}

#[test]
fn usbank_end_to_end() {
    let synthetic = generate_usbank(&UsBankConfig::small(42));
    let (log, stats) = synthetic.ingest();
    assert_eq!(stats.parse_errors, 0);
    assert!(stats.distinct_raw > stats.distinct_anonymized, "constants should collapse");

    let summary = LogR::new(LogRConfig {
        method: ClusterMethod::KMeansEuclidean,
        objective: CompressionObjective::FixedK(6),
        ..Default::default()
    })
    .compress(&log);
    assert!(summary.mixture.k() <= 6);
    assert!(summary.error() >= -1e-9);

    // Table-level counts are exact (single-feature patterns).
    for (id, feature) in log.codebook().iter() {
        if feature.class == logr::feature::FeatureClass::From {
            let pattern = QueryVector::new(vec![id]);
            let est = summary.estimate_count(&pattern);
            let truth = log.support(&pattern) as f64;
            assert!(
                (est - truth).abs() < 1e-6,
                "table count mismatch for {feature}: {est} vs {truth}"
            );
        }
    }
}

#[test]
fn diagnostics_track_error_across_k() {
    let synthetic = generate_usbank(&UsBankConfig::small(11));
    let (log, _) = synthetic.ingest();

    let mut rows = Vec::new();
    for k in [1, 3, 9] {
        let clustering = cluster_log(&log, k, ClusterMethod::KMeansEuclidean, 0);
        let mixture = NaiveMixtureEncoding::build(&log, &clustering);
        rows.push((
            mixture.error(),
            synthesis_error(&log, &mixture, 400, 5),
            marginal_deviation(&log, &mixture),
        ));
    }
    // Fig. 3's claim: as error falls across the sweep, so do the
    // diagnostics (allowing small sampling noise at adjacent points).
    assert!(rows[2].0 < rows[0].0);
    assert!(rows[2].1 <= rows[0].1 + 0.05, "synthesis error did not fall: {rows:?}");
    assert!(rows[2].2 <= rows[0].2 + 0.05, "marginal deviation did not fall: {rows:?}");
}

#[test]
fn compression_objectives_honored() {
    let synthetic = generate_pocketdata(&PocketDataConfig::small(3));
    let (log, _) = synthetic.ingest();
    let single_error = NaiveMixtureEncoding::single(&log).error();
    let bound = single_error * 0.5;

    let summary = LogR::new(LogRConfig {
        method: ClusterMethod::KMeansEuclidean,
        objective: CompressionObjective::MaxError { bound, max_k: 32 },
        ..Default::default()
    })
    .compress(&log);
    assert!(summary.error() <= bound + 1e-9, "error {} exceeds bound {bound}", summary.error());
}

#[test]
fn example_1_feature_extraction_through_facade() {
    // The paper's Example 1, run through the public facade.
    let mut ingest = logr::feature::LogIngest::new();
    ingest.ingest(
        "SELECT _id, sms_type, _time FROM Messages WHERE status = ? AND transport_type = ?",
    );
    let (log, _) = ingest.finish();
    assert_eq!(log.num_features(), 6);
    assert!(log.codebook().get(&Feature::where_atom("transport_type = ?")).is_some());
    assert!((empirical_entropy(&log) - 0.0).abs() < 1e-12);
}
