//! PR 6 acceptance, power-cut half: the replay harness — extended for
//! the delta-manifest close path.
//!
//! A scripted engine run executes entirely against a `FaultFs`, which
//! records the full mutating IO-op trace — every write and append,
//! which of them were fsynced, every rename/remove, and every
//! directory sync. For **every prefix** of that trace (a power cut at
//! that exact op), and for the torn/unsynced-page variants of the
//! prefix's final op, the harness materializes the surviving on-disk
//! state (`vfs::durable_state`) and opens an engine on it. The
//! properties:
//!
//! * a crash state holding a durable base manifest recovers to **a
//!   state the run actually reached**: the surviving base bytes are
//!   ones the run wrote, and the recovered (windows closed, total
//!   queries) pair appears in the run's step-by-step record — the
//!   delta log can only land recovery on a step boundary, never on an
//!   invented in-between state;
//! * the delta log replays **bit-identically**: re-encoding the
//!   replayed manifest equals, byte for byte, the base manifest the
//!   recovered engine's own checkpoint writes (decode → replay the
//!   surviving append-log prefix → reconstruct full stream state →
//!   re-encode is the identity);
//! * a writable resume leaves no `*.tmp` litter behind — crash-orphaned
//!   shard temporaries and manifest temporaries are swept;
//! * a crash state without a durable manifest is the typed
//!   [`Error::MissingManifest`], nothing else;
//! * **never** a panic, never silently different data.
//!
//! Exercised across tumbling/sliding/time windows, budget 0 and
//! unbounded, SQL and template sources (the latter proves the miner
//! journal recovers bit-identically), with compaction and explicit
//! checkpoints mid-trace —
//! deterministic scenario tests plus a property test over random window
//! shapes, budgets, and scripts, plus an exhaustive record-prefix sweep
//! of one multi-record delta log.

use logr::cluster::vfs::{durable_state, FaultFs, IoOp, LastOpVariant};
use logr::cluster::Clustering;
use logr::core::TimeWindows;
use logr::{Engine, EngineBuilder, Error};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Same statement pool as the recovery suite: repeats, novel queries,
/// unparseable garbage, multi-branch statements.
fn statement(i: u64) -> String {
    match i % 7 {
        0 => format!("SELECT c{}, c{} FROM t{} WHERE a{} = ?", i % 13, i % 11, i % 3, i % 7),
        1 => format!("SELECT c{} FROM t{} WHERE a{} = ? AND b{} = ?", i % 17, i % 3, i % 7, i % 5),
        2 => format!("SELECT c{}, c{} FROM t{}", i % 13, i % 17, i % 4),
        3 => format!("SELECT c{} FROM t{} WHERE a{} > ?", i % 11, i % 4, i % 7),
        4 => format!("SELECT c{} FROM t{} WHERE x{} = ? OR y{} = ?", i % 5, i % 3, i % 5, i % 3),
        5 => "THIS IS NOT SQL @@@".to_string(),
        _ => format!("SELECT balance FROM accounts WHERE owner{} = ?", i % 6),
    }
}

/// Free-form service lines for the template-source scenario: stable
/// shapes with rotating parameters, plus a parameter-free line (which
/// mines to a wildcard-less template).
fn service_line(i: u64) -> String {
    match i % 5 {
        0 => format!("auth: user u{} logged in from 10.0.0.{}", i % 19, i % 251),
        1 => format!("http: GET /api/v1/items/{} -> 200 in {} ms", i % 97, 3 + i % 40),
        2 => format!("db: slow query {} ms on shard {}", 100 + i % 400, i % 8),
        3 => "cache: flush complete".to_string(),
        _ => format!("gc: pause {} ms heap {} mb", i % 60, 256 + i % 512),
    }
}

/// One scripted engine operation.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// `ingest(statement(i))`.
    Sql(u64),
    /// `ingest_record(service_line(i))` for template-source scenarios.
    Record(u64),
    /// `ingest_at_ms(statement(i), 1, ts)` for time-window scenarios.
    At(u64, u64),
    Flush,
    Checkpoint,
    Compact,
}

/// What the run left behind: the IO trace, every base manifest the run
/// wrote (bytes → the engine state that wrote it), the engine state
/// after every step (every state a crash may legally recover to), and
/// a fingerprint of the final history summary.
struct Recorded {
    trace: Vec<IoOp>,
    bases: BTreeMap<Vec<u8>, CheckpointMeta>,
    states: Vec<CheckpointMeta>,
    final_summary: Option<(Clustering, u64)>,
}

#[derive(Debug, Clone, PartialEq)]
struct CheckpointMeta {
    windows_closed: usize,
    total_queries: u64,
}

/// Run `steps` on a fresh engine over a `FaultFs`, recording every
/// checkpoint the run writes (keyed by exact manifest bytes) and the
/// full IO trace.
fn run_scripted(
    dir: &Path,
    build: impl FnOnce(EngineBuilder) -> EngineBuilder,
    steps: &[Step],
) -> Recorded {
    let fs = Arc::new(FaultFs::new());
    let manifest_path = dir.join(logr::manifest::FILE_NAME);
    let engine = build(Engine::builder()).vfs(fs.clone()).open(dir).expect("open on FaultFs");
    let mut bases: BTreeMap<Vec<u8>, CheckpointMeta> = BTreeMap::new();
    let mut states: Vec<CheckpointMeta> = Vec::new();
    let mut record = |engine: &Engine| {
        // Persists happen inside the engine call that advanced the
        // state, so metadata captured right after a call matches
        // whatever that call made durable — a crash can only ever land
        // recovery on one of these step-boundary states. `or_insert`
        // keeps the first capture of each base manifest: under the
        // delta log the base bytes stay put across window closes while
        // the recoverable state advances through appended records.
        let meta = CheckpointMeta {
            windows_closed: engine.windows_closed().expect("windows_closed"),
            total_queries: engine.total_queries().expect("total_queries"),
        };
        if let Some(bytes) = fs.files().get(&manifest_path) {
            bases.entry(bytes.clone()).or_insert_with(|| meta.clone());
        }
        states.push(meta);
    };
    record(&engine);
    for step in steps {
        match *step {
            Step::Sql(i) => {
                engine.ingest(&statement(i)).expect("ingest");
            }
            Step::Record(i) => {
                engine.ingest_record(&service_line(i)).expect("ingest_record");
            }
            Step::At(i, ts) => {
                engine.ingest_at_ms(&statement(i), 1, ts).expect("ingest_at_ms");
            }
            Step::Flush => {
                engine.flush().expect("flush");
            }
            Step::Checkpoint => engine.checkpoint().expect("checkpoint"),
            Step::Compact => {
                engine.compact().expect("compact");
            }
        }
        record(&engine);
    }
    let final_summary =
        engine.summary().expect("summary").map(|s| (s.clustering.clone(), s.error().to_bits()));
    drop(engine);
    Recorded { trace: fs.trace(), bases, states, final_summary }
}

/// The acceptance property, checked at one crash point: recovery either
/// lands on a state the run actually reached — with the surviving
/// delta-log prefix replaying bit-identically into the checkpoint the
/// recovered engine folds — or fails with the one typed error a
/// manifest-less store permits.
fn check_crash_point(dir: &Path, rec: &Recorded, k: usize, variant: LastOpVariant) {
    let manifest_path = dir.join(logr::manifest::FILE_NAME);
    let (files, dirs) = durable_state(&rec.trace[..k], variant);
    let surviving = files.get(&manifest_path).cloned();
    let fs = Arc::new(FaultFs::from_files(files, dirs));
    let Some(bytes) = surviving else {
        match EngineBuilder::new().vfs(fs).resume(dir) {
            Ok(_) => panic!("prefix {k} {variant:?}: resume succeeded without a durable manifest"),
            Err(Error::MissingManifest { .. }) => return,
            Err(other) => panic!("prefix {k} {variant:?}: wrong error: {other}"),
        }
    };
    // The durable base must be one the run actually wrote — a torn or
    // partially-synced manifest surviving under the final name would
    // show up here as unrecognized bytes.
    let base_meta = rec.bases.get(&bytes).unwrap_or_else(|| {
        panic!("prefix {k} {variant:?}: durable manifest is not any checkpoint of the run")
    });
    // Replay the surviving base + delta-log prefix directly and
    // re-encode it: this is the exact byte image a faithful fold must
    // produce from this crash state.
    let (replayed, _) = logr::manifest::read_store_with(&*fs, dir)
        .unwrap_or_else(|e| panic!("prefix {k} {variant:?}: durable store failed to replay: {e}"));
    let expected = logr::manifest::encode(&replayed);
    let engine = EngineBuilder::new().vfs(fs.clone()).resume(dir).unwrap_or_else(|e| {
        panic!("prefix {k} {variant:?}: durable checkpoint failed to recover: {e}")
    });
    let meta = CheckpointMeta {
        windows_closed: engine.windows_closed().expect("windows_closed"),
        total_queries: engine.total_queries().expect("total_queries"),
    };
    assert!(
        rec.states.contains(&meta),
        "prefix {k} {variant:?}: recovered to {meta:?}, a state the run never reached"
    );
    assert!(
        meta.windows_closed >= base_meta.windows_closed
            && meta.total_queries >= base_meta.total_queries,
        "prefix {k} {variant:?}: recovered {meta:?} behind its own base {base_meta:?}"
    );
    // A writable resume sweeps crash litter: no `*.tmp` — shard or
    // manifest temporary — may survive it.
    for path in fs.files().keys() {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        assert!(
            !name.ends_with(".tmp"),
            "prefix {k} {variant:?}: {} survived a writable resume",
            path.display()
        );
    }
    // Bit-identity, the strong form: the recovered engine's own
    // checkpoint must write exactly the re-encoded replayed manifest —
    // decode → replay the delta prefix → reconstruct full stream state
    // → re-encode is the identity exactly when recovery was faithful.
    engine
        .checkpoint()
        .unwrap_or_else(|e| panic!("prefix {k} {variant:?}: re-checkpoint failed: {e}"));
    let rewritten = fs
        .files()
        .get(&manifest_path)
        .cloned()
        .unwrap_or_else(|| panic!("prefix {k} {variant:?}: re-checkpoint wrote nothing"));
    assert_eq!(
        rewritten, expected,
        "prefix {k} {variant:?}: fold diverges from the replayed delta prefix"
    );
}

/// Sweep every crash point of the recorded trace: each prefix with the
/// pessimistic base semantics, plus the applied/torn variants of the
/// prefix's final op. Then confirm the full-trace (clean shutdown) state
/// serves the original run's final history summary bit-identically.
fn replay_everywhere(dir: &Path, rec: &Recorded) {
    assert!(!rec.bases.is_empty(), "run recorded no checkpoints — scenario bug");
    for k in 0..=rec.trace.len() {
        check_crash_point(dir, rec, k, LastOpVariant::Lost);
        if k > 0 {
            check_crash_point(dir, rec, k, LastOpVariant::Applied);
            check_crash_point(dir, rec, k, LastOpVariant::Torn);
        }
    }
    let (files, dirs) = durable_state(&rec.trace, LastOpVariant::Lost);
    let fs = Arc::new(FaultFs::from_files(files, dirs));
    let engine = EngineBuilder::new().vfs(fs).resume(dir).expect("clean-shutdown resume");
    let recovered =
        engine.summary().expect("summary").map(|s| (s.clustering.clone(), s.error().to_bits()));
    assert_eq!(recovered, rec.final_summary, "final history summary diverged after recovery");
}

fn sql_steps(n: u64) -> Vec<Step> {
    (0..n).map(Step::Sql).collect()
}

#[test]
fn power_cut_replay_tumbling_budget_zero_with_compaction() {
    // Budget 0 spills aggressively (maximum shard-file traffic), the
    // mid-run compact rewrites the store, and the mid-window checkpoint
    // persists a half-filled buffer.
    let mut steps = sql_steps(14);
    steps.push(Step::Compact);
    steps.extend((14..23).map(Step::Sql));
    steps.push(Step::Checkpoint);
    steps.extend((23..26).map(Step::Sql));
    let dir = PathBuf::from("/vstore-tumbling");
    let rec = run_scripted(&dir, |b| b.window(5).clusters(2).resident_budget(0), &steps);
    replay_everywhere(&dir, &rec);
}

#[test]
fn power_cut_replay_sliding_unbounded() {
    let mut steps = sql_steps(20);
    steps.push(Step::Flush);
    let dir = PathBuf::from("/vstore-sliding");
    let rec = run_scripted(&dir, |b| b.window(6).slide(3).clusters(2), &steps);
    replay_everywhere(&dir, &rec);
}

#[test]
fn power_cut_replay_time_windows_budget_zero() {
    // Time-based windows close on timestamp boundaries; jumping the
    // clock forces closes at irregular points in the script.
    let steps: Vec<Step> = (0..22).map(|i| Step::At(i, 140 * i + 1)).collect();
    let dir = PathBuf::from("/vstore-time");
    let rec = run_scripted(
        &dir,
        |b| {
            b.time_windows(TimeWindows { window_ms: 500, slide_ms: None })
                .clusters(2)
                .resident_budget(0)
        },
        &steps,
    );
    replay_everywhere(&dir, &rec);
}

#[test]
fn power_cut_replay_template_source_budget_zero() {
    // A template-source engine carries extra recovery state: the miner's
    // journal rides in the base manifest and its per-record increments in
    // the delta log. The bit-identity half of the sweep (recovered
    // engine's re-checkpoint == replayed manifest bytes) therefore proves
    // the mined template tree survives every crash point exactly — a
    // recovery that dropped or reordered journal entries would re-encode
    // different featurizer bytes and fail the byte comparison.
    let mut steps: Vec<Step> = (0..14).map(Step::Record).collect();
    steps.push(Step::Checkpoint);
    steps.extend((14..24).map(Step::Record));
    let dir = PathBuf::from("/vstore-template");
    let rec = run_scripted(
        &dir,
        |b| b.window(5).clusters(2).resident_budget(0).source(logr::SourceConfig::template()),
        &steps,
    );
    replay_everywhere(&dir, &rec);
}

/// The delta log replays bit-identically at **every** record prefix,
/// not only the prefixes the crash sweep happens to produce: a run
/// that appends several delta records is truncated at each frame
/// boundary, and for every truncation the replayed manifest's
/// re-encoding must equal, byte for byte, the base manifest a resumed
/// engine's fold writes. Recovered window counts step monotonically
/// toward the live engine's final count as records are restored.
#[test]
fn every_delta_log_prefix_folds_bit_identically() {
    let dir = PathBuf::from("/vstore-delta-prefix");
    let fs = Arc::new(FaultFs::new());
    let engine = Engine::builder().window(4).clusters(2).vfs(fs.clone()).open(&dir).expect("open");
    for i in 0..40 {
        engine.ingest(&statement(i)).expect("ingest");
    }
    let final_windows = engine.windows_closed().expect("windows_closed");
    drop(engine);
    let files = fs.files();
    let dirs: BTreeSet<PathBuf> = fs.dirs();
    let delta_path = dir.join(logr::manifest::DELTA_FILE_NAME);
    let delta = files.get(&delta_path).cloned().expect("run left a delta log");
    // Frame boundaries: a 36-byte header, then [len u64][payload][fnv u64]
    // per record. Walk them so each cut holds exactly `records` frames.
    let mut cuts = vec![logr::manifest::DELTA_HEADER_LEN];
    let mut at = logr::manifest::DELTA_HEADER_LEN;
    while at < delta.len() {
        let len = u64::from_le_bytes(delta[at..at + 8].try_into().unwrap()) as usize;
        at += 8 + len + 8;
        cuts.push(at);
    }
    assert_eq!(at, delta.len(), "frame walk must land exactly on the file end");
    assert!(cuts.len() > 4, "scenario closed too few windows over the delta log");
    let mut last_windows = None;
    for (records, cut) in cuts.iter().enumerate() {
        let mut truncated = files.clone();
        truncated.insert(delta_path.clone(), delta[..*cut].to_vec());
        let fs = Arc::new(FaultFs::from_files(truncated, dirs.clone()));
        let (replayed, replay) =
            logr::manifest::read_store_with(&*fs, &dir).expect("replay truncated store");
        assert!(replay.log_bound, "prefix {records}: delta must bind to its base");
        assert_eq!(replay.records_applied, records as u64, "prefix {records}: applied count");
        let expected = logr::manifest::encode(&replayed);
        let engine = EngineBuilder::new().vfs(fs.clone()).resume(&dir).expect("resume");
        let recovered = engine.windows_closed().expect("windows_closed");
        if let Some(prev) = last_windows {
            assert!(recovered >= prev, "prefix {records}: windows went backwards");
        }
        last_windows = Some(recovered);
        engine.checkpoint().expect("fold");
        let folded = fs
            .files()
            .get(&dir.join(logr::manifest::FILE_NAME))
            .cloned()
            .expect("fold wrote a base");
        assert_eq!(folded, expected, "prefix {records}: fold diverges from the replayed prefix");
    }
    assert_eq!(last_windows, Some(final_windows), "full prefix must recover every window");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The same property over random window shapes, budgets, and scripts
    /// (compaction and checkpoints sprinkled at random points).
    #[test]
    fn power_cut_replay_holds_for_random_scenarios(
        case in 0u64..1_000_000,
        seeds in prop::collection::vec(0u64..60, 10..30),
        window in 4u64..10,
        slide_num in 0u64..3,
        budget_zero in proptest::arbitrary::any::<bool>(),
        compact_frac in 0usize..100,
        checkpoint_frac in 0usize..100,
    ) {
        let mut steps: Vec<Step> = seeds.iter().map(|&s| Step::Sql(s)).collect();
        let compact_at = compact_frac * steps.len() / 100;
        let checkpoint_at = checkpoint_frac * steps.len() / 100;
        // Insert the later index first so the earlier stays valid.
        let (hi, hi_step, lo, lo_step) = if compact_at >= checkpoint_at {
            (compact_at, Step::Compact, checkpoint_at, Step::Checkpoint)
        } else {
            (checkpoint_at, Step::Checkpoint, compact_at, Step::Compact)
        };
        steps.insert(hi, hi_step);
        steps.insert(lo, lo_step);
        // Unique virtual directory per case: the engine's in-process
        // store registry keys on the path, and a shared name would
        // serialize… or collide across concurrently-running cases.
        let dir = PathBuf::from(format!("/vstore-prop-{case}-{window}-{slide_num}"));
        let slide = (slide_num > 0).then(|| (window / (slide_num + 1)).max(1));
        let rec = run_scripted(&dir, |mut b| {
            b = b.window(window).clusters(2);
            if let Some(s) = slide {
                b = b.slide(s);
            }
            if budget_zero {
                b = b.resident_budget(0);
            }
            b
        }, &steps);
        replay_everywhere(&dir, &rec);
    }
}
