//! PR 4 acceptance, concurrency half: `Engine::snapshot()` reads stay
//! consistent while a writer thread ingests. Reader threads hammer
//! snapshots (summaries, estimates, drift, advice) through the whole
//! write run and assert internal consistency on every view; CI runs this
//! with `LOGR_THREADS=4` so the clustering fan-out, the spill store, and
//! the snapshot handoff race each other on every run.

use logr::feature::FeatureClass;
use logr::{Engine, EngineSnapshot};
use logr_cluster::testutil::TempStore;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

const WINDOW: u64 = 40;
const STREAM_LEN: u64 = 1200;
const READERS: usize = 3;

fn statement(i: u64) -> String {
    match i % 5 {
        0 => format!("SELECT c{}, c{} FROM t{} WHERE a{} = ?", i % 13, i % 11, i % 3, i % 7),
        1 => format!("SELECT c{} FROM t{} WHERE a{} = ? AND b{} = ?", i % 17, i % 3, i % 7, i % 5),
        2 => format!("SELECT c{}, c{} FROM t{}", i % 13, i % 17, i % 4),
        3 => format!("SELECT c{} FROM t{} WHERE a{} > ?", i % 11, i % 4, i % 7),
        _ => format!("SELECT balance FROM accounts WHERE owner{} = ?", i % 6),
    }
}

/// Every invariant a consistent snapshot must satisfy, whatever moment it
/// was captured at.
fn check_snapshot(snap: &EngineSnapshot, last_seen_windows: usize) -> usize {
    let windows = snap.windows_closed();
    assert!(
        windows >= last_seen_windows,
        "snapshots went backwards: {windows} after {last_seen_windows}"
    );
    // The history is absorbed at window closes only, and tumbling windows
    // of unit-multiplicity statements close at exactly WINDOW queries.
    assert_eq!(
        snap.history().total_queries(),
        windows as u64 * WINDOW,
        "history out of step with the close count"
    );
    assert!(snap.buffered_queries() < WINDOW, "buffer spans a whole window");
    assert_eq!(snap.total_queries(), snap.history().total_queries() + snap.buffered_queries());

    // The summary clusters exactly the snapshot's own history — a torn
    // handoff (matrix from one boundary, log from another) would trip the
    // size assertion inside compress_condensed or produce a clustering of
    // the wrong length.
    let summary = snap.summary().expect("summary");
    assert_eq!(summary.is_some(), snap.history().distinct_count() > 0);
    if let Some(summary) = &summary {
        assert_eq!(summary.clustering.len(), snap.history().distinct_count());
        assert!(summary.error().is_finite());
        // Estimates answer from the mixture alone and can never exceed
        // the absorbed total by more than estimator slack.
        let total = snap.history().total_queries() as f64;
        let query = snap.query().expect("query").expect("non-empty history");
        for (_, feature) in snap.history().codebook().iter().take(8) {
            let est = query
                .frequency(&logr::analytics::Pred::feature(feature.clone()))
                .expect("known feature");
            assert!(est.is_finite() && est >= 0.0);
            assert!(est <= total * 1.5 + 1.0, "estimate {est} vs total {total}");
        }
        // Advice is internally consistent with the same summary.
        for pick in snap.advise(0.05).expect("advise") {
            assert!(pick.share >= 0.05);
            assert!((pick.share - pick.estimated / total).abs() < 1e-12);
        }
    }
    // Window artifacts agree with themselves.
    if let Some(w) = snap.last_window() {
        assert_eq!(w.index + 1, windows, "last window out of step");
        let drift_stable = w.drift.as_ref().is_none_or(|d| d.is_stable(1e-3));
        assert_eq!(w.stable, drift_stable, "stability flag disagrees with the report");
        assert_eq!(snap.novelty().len(), w.novelty.len());
    }
    windows
}

fn stress(engine: Engine) {
    let engine = Arc::new(engine);
    let done = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for _ in 0..READERS {
            let engine = Arc::clone(&engine);
            let done = Arc::clone(&done);
            let reads = Arc::clone(&reads);
            scope.spawn(move || {
                let mut last = 0usize;
                while !done.load(Ordering::Relaxed) {
                    let snap = engine.snapshot().expect("snapshot");
                    last = check_snapshot(&snap, last);
                    reads.fetch_add(1, Ordering::Relaxed);
                }
                last
            });
        }
        // The one writer.
        let writer_engine = Arc::clone(&engine);
        let writer = scope.spawn(move || {
            for i in 0..STREAM_LEN {
                writer_engine.ingest(&statement(i)).expect("ingest");
            }
        });
        writer.join().expect("writer panicked");
        done.store(true, Ordering::Relaxed);
    });
    assert_eq!(engine.windows_closed().unwrap(), (STREAM_LEN / WINDOW) as usize);
    assert!(reads.load(Ordering::Relaxed) > 0, "readers never observed a snapshot");
    // A final snapshot answers the advisor question coherently.
    let snap = engine.snapshot().unwrap();
    let advice = snap.advise(0.0).unwrap();
    assert!(!advice.is_empty());
    assert!(advice.iter().all(|a| snap
        .history()
        .codebook()
        .iter()
        .any(|(_, f)| f.class == FeatureClass::Where && f.text == a.predicate)));
    // And a concrete estimate matches ground truth on a hot table.
    let query = snap.query().unwrap().expect("non-empty history");
    let est = query.frequency(&logr::analytics::Pred::table("accounts")).unwrap();
    assert!(est > 0.0);
}

#[test]
fn readers_stay_consistent_while_a_writer_ingests_in_memory() {
    stress(Engine::builder().window(WINDOW).clusters(3).in_memory().unwrap());
}

#[test]
fn readers_stay_consistent_while_a_writer_ingests_durably() {
    // Durable + zero resident budget: snapshot reads reload spilled
    // shards from the store while the writer appends, persists, and
    // evicts — the full stack races on every close.
    let store = TempStore::new("engine-stress");
    stress(
        Engine::builder().window(WINDOW).clusters(3).resident_budget(0).open(store.path()).unwrap(),
    );
}
