//! PR 6 acceptance, transient-fault half: injected IO errors.
//!
//! Every test drives a real engine over a [`FaultFs`] and injects
//! failures at specific call sites:
//!
//! * transient faults (`EINTR`) are retried transparently — bounded by
//!   [`IO_RETRY_ATTEMPTS`], never forever;
//! * `ENOSPC` fails fast as the typed [`Error::StorageExhausted`];
//! * a failed persist leaves the store openable at its previous durable
//!   checkpoint;
//! * [`EngineBuilder::read_only`] serves the full read surface without
//!   taking the store lock or garbage-collecting, and every write entry
//!   point is the typed [`Error::ReadOnly`];
//! * the `O_EXCL` store lock takes over verified-stale (dead-pid) locks,
//!   refuses live foreign owners, and survives a lost `create_exclusive`
//!   race.

use logr::cluster::vfs::{FaultFs, OpKind, Vfs, IO_RETRY_ATTEMPTS};
use logr::cluster::SpillError;
use logr::{Engine, EngineBuilder, Error};
use std::collections::{BTreeMap, BTreeSet};
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn statement(i: u64) -> String {
    format!("SELECT c{} FROM t{} WHERE a{} = ?", i % 13, i % 3, i % 7)
}

/// Fresh engine on a fresh `FaultFs`: window 4, 2 clusters, budget 0 so
/// every window close writes shard files (maximum IO surface).
fn spilling_engine(dir: &Path) -> (Arc<FaultFs>, Engine) {
    let fs = Arc::new(FaultFs::new());
    let engine = Engine::builder()
        .window(4)
        .clusters(2)
        .resident_budget(0)
        .vfs(fs.clone())
        .open(dir)
        .expect("open");
    (fs, engine)
}

#[test]
fn transient_eintr_is_retried_transparently() {
    let dir = PathBuf::from("/vstore-eintr-ok");
    let (fs, engine) = spilling_engine(&dir);
    // Two consecutive EINTRs on every IO class the write path uses —
    // all inside the retry budget, so the caller never sees them.
    fs.inject(OpKind::Write, "shard-", ErrorKind::Interrupted, 2);
    fs.inject(OpKind::Fsync, "shard-", ErrorKind::Interrupted, 2);
    fs.inject(OpKind::Write, "engine.tmp", ErrorKind::Interrupted, 2);
    for i in 0..8 {
        engine.ingest(&statement(i)).expect("ingest rides out EINTR");
    }
    engine.checkpoint().expect("checkpoint rides out EINTR");
    assert_eq!(engine.windows_closed().unwrap(), 2);
}

#[test]
fn persistent_eintr_is_bounded_not_an_infinite_loop() {
    let dir = PathBuf::from("/vstore-eintr-forever");
    let (fs, engine) = spilling_engine(&dir);
    // More consecutive failures than the retry budget: the engine must
    // give up with a typed error (here inside the shard store), not spin.
    fs.inject(OpKind::Write, "shard-", ErrorKind::Interrupted, IO_RETRY_ATTEMPTS + 10);
    let err = (0..8)
        .map(|i| engine.ingest(&statement(i)))
        .find_map(Result::err)
        .expect("a window close must hit the failing shard write");
    match err {
        Error::Spill(SpillError::Io(io)) => assert_eq!(io.kind(), ErrorKind::Interrupted),
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn enospc_on_the_shard_store_is_storage_exhausted() {
    let dir = PathBuf::from("/vstore-enospc-shard");
    let (fs, engine) = spilling_engine(&dir);
    // ENOSPC is not transient: it must fail fast (single attempt), with
    // the operator-actionable typed error.
    fs.inject(OpKind::Write, "shard-", ErrorKind::StorageFull, usize::MAX);
    let err = (0..8)
        .map(|i| engine.ingest(&statement(i)))
        .find_map(Result::err)
        .expect("a window close must hit the full disk");
    assert!(matches!(err, Error::StorageExhausted { .. }), "wrong error: {err}");
}

#[test]
fn enospc_on_the_manifest_is_storage_exhausted() {
    let dir = PathBuf::from("/vstore-enospc-manifest");
    let (fs, engine) = spilling_engine(&dir);
    for i in 0..8 {
        engine.ingest(&statement(i)).expect("ingest");
    }
    fs.inject(OpKind::Write, "engine.tmp", ErrorKind::StorageFull, usize::MAX);
    match engine.checkpoint().unwrap_err() {
        Error::StorageExhausted { detail } => {
            assert!(detail.contains("engine.tmp"), "detail should name the failing file: {detail}");
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn failed_persist_leaves_the_store_openable_at_the_previous_checkpoint() {
    let dir = PathBuf::from("/vstore-failed-close");
    let (fs, engine) = spilling_engine(&dir);
    for i in 0..8 {
        engine.ingest(&statement(i)).expect("ingest");
    }
    engine.checkpoint().expect("good checkpoint");
    // Ingest to the next window close: its auto-persist is the last
    // checkpoint the store will hold durably.
    for i in 8..12 {
        engine.ingest(&statement(i)).expect("ingest");
    }
    let durable_windows = engine.windows_closed().unwrap();
    let durable_queries = engine.total_queries().unwrap();
    // More work lands in the buffer, then the disk starts failing: the
    // checkpoint attempt errors out...
    for i in 12..14 {
        engine.ingest(&statement(i)).expect("ingest");
    }
    fs.inject(OpKind::Write, "engine.tmp", ErrorKind::StorageFull, usize::MAX);
    assert!(engine.checkpoint().is_err(), "checkpoint must fail under ENOSPC");
    fs.clear_faults();
    drop(engine);
    // ...and the store still opens, exactly at the last good checkpoint:
    // the atomic write protocol never touched the previous manifest.
    let recovered =
        EngineBuilder::new().vfs(fs.clone()).resume(&dir).expect("store survived the failed close");
    assert_eq!(recovered.windows_closed().unwrap(), durable_windows);
    assert_eq!(recovered.total_queries().unwrap(), durable_queries);
}

#[test]
fn read_only_engine_serves_reads_beside_a_live_writer() {
    let dir = PathBuf::from("/vstore-ro-beside");
    let (fs, writer) = spilling_engine(&dir);
    for i in 0..9 {
        writer.ingest(&statement(i)).expect("ingest");
    }
    writer.checkpoint().expect("checkpoint");
    // The writer still holds the store lock; a read-only open must not
    // contend for it.
    let reader = EngineBuilder::new()
        .read_only()
        .vfs(fs.clone())
        .resume(&dir)
        .expect("read-only open beside the live writer");
    assert!(reader.is_read_only());
    assert!(!writer.is_read_only());
    assert_eq!(reader.windows_closed().unwrap(), writer.windows_closed().unwrap());
    assert_eq!(reader.total_queries().unwrap(), writer.total_queries().unwrap());
    let (r, w) = (reader.summary().unwrap(), writer.summary().unwrap());
    match (r, w) {
        (Some(r), Some(w)) => {
            assert_eq!(r.clustering, w.clustering);
            assert_eq!(r.error().to_bits(), w.error().to_bits());
        }
        (r, w) => panic!("summaries diverged: reader={:?} writer={:?}", r.is_some(), w.is_some()),
    }
}

#[test]
fn read_only_engine_rejects_every_write_entry_point() {
    let dir = PathBuf::from("/vstore-ro-writes");
    let (fs, writer) = spilling_engine(&dir);
    for i in 0..9 {
        writer.ingest(&statement(i)).expect("ingest");
    }
    writer.checkpoint().expect("checkpoint");
    drop(writer);
    let reader = EngineBuilder::new().read_only().vfs(fs).resume(&dir).expect("read-only open");
    assert!(matches!(reader.ingest("SELECT 1"), Err(Error::ReadOnly)));
    assert!(matches!(reader.ingest_with_count("SELECT 1", 3), Err(Error::ReadOnly)));
    assert!(matches!(reader.ingest_at_ms("SELECT 1", 1, 99), Err(Error::ReadOnly)));
    assert!(matches!(reader.flush(), Err(Error::ReadOnly)));
    assert!(matches!(reader.checkpoint(), Err(Error::ReadOnly)));
    assert!(matches!(reader.compact(), Err(Error::ReadOnly)));
}

#[test]
fn read_only_open_takes_no_lock_and_garbage_collects_nothing() {
    let dir = PathBuf::from("/vstore-ro-nogc");
    let (fs, writer) = spilling_engine(&dir);
    for i in 0..9 {
        writer.ingest(&statement(i)).expect("ingest");
    }
    writer.checkpoint().expect("checkpoint");
    drop(writer);
    // Plant leftovers a writable resume would sweep: an unreferenced
    // shard file and an orphaned .tmp.
    let orphan_bin = dir.join("shard-99999-orphan.bin");
    let orphan_tmp = dir.join("shard-99999-orphan.tmp");
    fs.write(&orphan_bin, b"junk").unwrap();
    fs.write(&orphan_tmp, b"junk").unwrap();
    let reader =
        EngineBuilder::new().read_only().vfs(fs.clone()).resume(&dir).expect("read-only open");
    assert!(reader.summary().unwrap().is_some());
    assert!(!fs.exists(&dir.join("engine.lock")), "read-only open must not create a lock");
    assert!(fs.exists(&orphan_bin), "read-only open must not garbage-collect");
    assert!(fs.exists(&orphan_tmp), "read-only open must not garbage-collect");
    drop(reader);
    // A writable resume of the same store does sweep them.
    let writer = EngineBuilder::new().vfs(fs.clone()).resume(&dir).expect("writable resume");
    assert!(!fs.exists(&orphan_bin), "writable resume sweeps unreferenced shards");
    assert!(!fs.exists(&orphan_tmp), "writable resume sweeps orphaned tmp files");
    drop(writer);
}

#[test]
fn read_only_open_of_an_empty_directory_is_missing_manifest() {
    let fs = Arc::new(FaultFs::new());
    let dir = PathBuf::from("/vstore-ro-empty");
    match EngineBuilder::new().read_only().vfs(fs).open(&dir) {
        Err(Error::MissingManifest { dir: d }) => assert_eq!(d, dir),
        other => panic!("wrong outcome: {:?}", other.map(|_| ())),
    }
}

#[test]
fn stale_lock_of_a_dead_process_is_taken_over() {
    // A store whose last owner crashed: the lock file survives, naming a
    // pid that no longer exists. Acquisition must verify the owner is
    // dead and steal the lock instead of refusing the open.
    let dir = PathBuf::from("/vstore-lock-dead");
    let mut files = BTreeMap::new();
    // Largest representable pid: never a live process.
    files.insert(dir.join("engine.lock"), format!("{}\n", u32::MAX).into_bytes());
    let mut dirs = BTreeSet::new();
    dirs.insert(dir.clone());
    let fs = Arc::new(FaultFs::from_files(files, dirs));
    let engine = Engine::builder()
        .window(4)
        .clusters(2)
        .vfs(fs.clone())
        .open(&dir)
        .expect("stale lock must be taken over");
    engine.ingest("SELECT 1").expect("ingest");
    drop(engine);
    assert!(!fs.exists(&dir.join("engine.lock")), "lock released on drop");
}

#[test]
fn live_foreign_lock_refuses_the_open() {
    // pid 1 always exists. A lock naming it must refuse the open with
    // the typed StoreLocked error, never steal.
    let dir = PathBuf::from("/vstore-lock-live");
    let mut files = BTreeMap::new();
    files.insert(dir.join("engine.lock"), b"1\n".to_vec());
    let mut dirs = BTreeSet::new();
    dirs.insert(dir.clone());
    let fs = Arc::new(FaultFs::from_files(files, dirs));
    match Engine::builder().vfs(fs).open(&dir) {
        Err(Error::StoreLocked { pid, .. }) => assert_eq!(pid, 1),
        other => panic!("wrong outcome: {:?}", other.map(|_| ())),
    }
}

#[test]
fn lost_create_exclusive_race_is_retried_not_fatal() {
    // Simulate losing the O_EXCL race: the first create_exclusive fails
    // AlreadyExists even though no lock file is visible. The acquirer
    // must re-probe and win the next round, not give up.
    let dir = PathBuf::from("/vstore-lock-race");
    let fs = Arc::new(FaultFs::new());
    fs.inject(OpKind::CreateExclusive, "engine.lock", ErrorKind::AlreadyExists, 1);
    let engine = Engine::builder()
        .window(4)
        .clusters(2)
        .vfs(fs.clone())
        .open(&dir)
        .expect("lost race must be retried");
    engine.ingest("SELECT 1").expect("ingest");
}

#[test]
fn two_writable_opens_of_one_store_never_both_succeed() {
    let dir = PathBuf::from("/vstore-lock-twice");
    let (fs, first) = spilling_engine(&dir);
    match Engine::builder().vfs(fs.clone()).open(&dir) {
        Err(Error::StoreLocked { pid, .. }) => assert_eq!(pid, std::process::id()),
        other => panic!("second writable open must refuse: {:?}", other.map(|_| ())),
    }
    drop(first);
    Engine::builder().vfs(fs).open(&dir).expect("open succeeds once the first owner is gone");
}

#[test]
fn aliased_store_path_spellings_share_one_lock() {
    // PR 9 regression: `/vstore-canon`, `/vstore-canon/.` and
    // `/vstore-canon/../vstore-canon` all name the same store. The
    // in-process lock registry must normalize the path before the
    // exclusivity check, so a second spelling can never acquire a
    // second writable lock on a store that is already open.
    let dir = PathBuf::from("/vstore-canon");
    let (fs, first) = spilling_engine(&dir);
    for alias in ["/vstore-canon/../vstore-canon", "/vstore-canon/."] {
        match Engine::builder().vfs(fs.clone()).open(alias) {
            Err(Error::StoreLocked { pid, .. }) => assert_eq!(pid, std::process::id()),
            other => panic!("aliased open {alias:?} must refuse: {:?}", other.map(|_| ())),
        }
    }
    drop(first);
    // Released under one spelling, acquirable under another.
    Engine::builder()
        .vfs(fs)
        .open("/vstore-canon/../vstore-canon")
        .expect("open succeeds under an alias once the owner is gone");
}
