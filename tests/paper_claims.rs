//! Executable versions of the paper's headline claims, at test scale.
//!
//! Each test pins one qualitative result from the evaluation; the bench
//! harness (`repro`) reproduces the full quantitative sweeps.

use logr::baselines::{
    laserlight_error_of_naive, laserlight_mixture_fixed, mtv_error_of_naive, Laserlight,
    LaserlightConfig, Mtv, MtvConfig,
};
use logr::cluster::{cluster_log, ClusterMethod, Distance};
use logr::core::refine::{refine_mixture, RefineConfig};
use logr::core::NaiveMixtureEncoding;
use logr::workload::{
    generate_income, generate_mushroom, generate_usbank, IncomeConfig, MushroomConfig, UsBankConfig,
};
use std::time::Instant;

/// §6.1.1 / Fig. 2a: more clusters consistently reduce Error, for every
/// clustering method.
#[test]
fn fig2_more_clusters_reduce_error() {
    let (log, _) = generate_usbank(&UsBankConfig::small(21)).ingest();
    for method in [
        ClusterMethod::KMeansEuclidean,
        ClusterMethod::Spectral(Distance::Hamming),
        ClusterMethod::Spectral(Distance::Manhattan),
    ] {
        let e1 = NaiveMixtureEncoding::build(&log, &cluster_log(&log, 1, method, 0)).error();
        let e12 = NaiveMixtureEncoding::build(&log, &cluster_log(&log, 12, method, 0)).error();
        assert!(e12 < e1, "{}: error did not fall from k=1 ({e1}) to k=12 ({e12})", method.label());
    }
}

/// Fig. 2c: KMeans is (much) faster than spectral clustering.
#[test]
fn fig2_kmeans_faster_than_spectral() {
    let (log, _) = generate_usbank(&UsBankConfig::small(8)).ingest();
    let t0 = Instant::now();
    cluster_log(&log, 8, ClusterMethod::KMeansEuclidean, 0);
    let kmeans = t0.elapsed();
    let t1 = Instant::now();
    cluster_log(&log, 8, ClusterMethod::Spectral(Distance::Hamming), 0);
    let spectral = t1.elapsed();
    assert!(kmeans < spectral, "kmeans {kmeans:?} not faster than spectral {spectral:?}");
}

/// §7.2.2 / Fig. 5a: plugging miner patterns into the naive mixture yields
/// only a small (non-negative) improvement.
#[test]
fn fig5_refinement_small_but_nonnegative() {
    let (log, _) = generate_usbank(&UsBankConfig::small(5)).ingest();
    let clustering = cluster_log(&log, 4, ClusterMethod::KMeansEuclidean, 0);
    let mixture = NaiveMixtureEncoding::build(&log, &clustering);
    let refined = refine_mixture(&log, &mixture, &RefineConfig::default());
    assert!(refined.error <= mixture.error() + 1e-9, "refinement made things worse");
}

/// §8.1.2 / Fig. 6: the naive encoding beats the classical miners under
/// their own measures at comparable (or any feasible) verbosity.
#[test]
fn fig6_naive_encoding_competitive() {
    let mushroom = generate_mushroom(&MushroomConfig::small(5));
    let naive = mtv_error_of_naive(&mushroom);
    let mtv = Mtv::new(MtvConfig::new(8)).summarize(&mushroom).unwrap();
    // MTV at 8 itemsets cannot reach the naive encoding's fidelity.
    assert!(naive < mtv.error, "naive {naive} should beat 8-itemset MTV {}", mtv.error);
}

/// §8.1.3 / Fig. 8: partitioning improves Laserlight Mixture Fixed.
#[test]
fn fig8_partitioning_improves_laserlight() {
    let income = generate_income(&IncomeConfig::small(5));
    let k1 = laserlight_mixture_fixed(&income, 1, 12, 3);
    let k4 = laserlight_mixture_fixed(&income, 4, 12, 3);
    assert!(
        k4.combined_weighted <= k1.combined_weighted + 1e-6,
        "k=4 {} vs k=1 {}",
        k4.combined_weighted,
        k1.combined_weighted
    );
}

/// §8.1.4 / Fig. 9a: partitioned summaries beat their unpartitioned
/// baselines under the Laserlight measure.
#[test]
fn fig9_mixtures_beat_baselines() {
    let mushroom = generate_mushroom(&MushroomConfig::small(7));
    let naive_ll = laserlight_error_of_naive(&mushroom);

    // Naive mixture at k=6 under the Laserlight measure.
    let clustering = logr::baselines::mixtures::cluster_dataset(&mushroom, 6, 3);
    let total = mushroom.total() as f64;
    let mixture_ll: f64 = clustering
        .members()
        .into_iter()
        .filter(|g| !g.is_empty())
        .map(|g| {
            let cluster = mushroom.subset(&g);
            (cluster.total() as f64 / total) * laserlight_error_of_naive(&cluster)
        })
        .sum();
    assert!(
        mixture_ll <= naive_ll + 1e-9,
        "naive mixture {mixture_ll} vs unpartitioned naive {naive_ll}"
    );
}

/// §7.2.1 / Fig. 5c-flavored: naive mixture construction is much faster
/// than running a pattern miner.
#[test]
fn fig5_naive_mixture_faster_than_miners() {
    let income = generate_income(&IncomeConfig::small(9));
    let log = income.to_query_log();

    let t0 = Instant::now();
    let clustering = cluster_log(&log, 4, ClusterMethod::KMeansEuclidean, 0);
    NaiveMixtureEncoding::build(&log, &clustering);
    let naive = t0.elapsed();

    let t1 = Instant::now();
    Laserlight::new(LaserlightConfig::new(10, 0)).summarize(&income);
    let miner = t1.elapsed();

    assert!(naive < miner, "naive mixture {naive:?} not faster than Laserlight {miner:?}");
}

/// §5's worked example: mixtures capture anti-correlation that single
/// encodings cannot (phantom queries get probability 0).
#[test]
fn mixtures_capture_anticorrelation() {
    use logr::feature::{FeatureId, QueryLog, QueryVector};
    let qv = |ids: &[u32]| QueryVector::new(ids.iter().map(|&i| FeatureId(i)).collect());
    let mut log = QueryLog::new();
    log.add_vector(qv(&[0, 1]), 10); // workload A
    log.add_vector(qv(&[2, 3]), 10); // workload B
    let phantom = qv(&[0, 2]); // mixes the workloads; never occurs

    let single = NaiveMixtureEncoding::single(&log);
    assert!(single.probability(&phantom) > 0.0, "single encoding admits the phantom");

    let split = NaiveMixtureEncoding::build(&log, &logr::cluster::Clustering::new(2, vec![0, 1]));
    assert_eq!(split.probability(&phantom), 0.0, "mixture must rule the phantom out");
    assert_eq!(split.estimate_count(&phantom), 0.0);
}
