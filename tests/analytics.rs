//! PR 5 acceptance: the unified analytics read surface.
//!
//! * `WorkloadQuery::frequency` over single-feature (and purely
//!   conjunctive) predicates is **bit-identical** to the legacy
//!   `estimate_count_features` path, property-tested over random streams.
//! * Each shipped `Advisor` reproduces its example's former hand-rolled
//!   computation on the same seeded workload (parity tests): the old
//!   index-advisor loop, the view-advisor FROM-pair scan from
//!   `examples/view_advisor.rs`, and the conditional-marginal ranking
//!   from `examples/query_recommendation.rs`.
//! * `min_share` (and every advisor probability threshold) is validated:
//!   NaN or out-of-`[0,1]` is a typed `Error::Config`, on the engine and
//!   snapshot paths alike — which are one implementation.

use logr::analytics::{
    AdviceKind, Advisor, DriftAdvisor, IndexAdvisor, Pred, QueryRecommender, SummaryView,
    ViewAdvisor, WorkloadQuery,
};
use logr::cluster::{cluster_log, ClusterMethod};
use logr::core::{CompressionObjective, LogR, LogRConfig, LogRSummary, NaiveMixtureEncoding};
use logr::feature::{Feature, FeatureClass, LogIngest, QueryVector};
use logr::workload::{generate_pocketdata, generate_usbank, PocketDataConfig, UsBankConfig};
use logr::{Engine, Error};
use proptest::prelude::*;

/// The recovery-suite statement pool: repeats, novel queries, garbage,
/// and multi-branch (OR) statements.
fn statement(i: u64) -> String {
    match i % 7 {
        0 => format!("SELECT c{}, c{} FROM t{} WHERE a{} = ?", i % 13, i % 11, i % 3, i % 7),
        1 => format!("SELECT c{} FROM t{} WHERE a{} = ? AND b{} = ?", i % 17, i % 3, i % 7, i % 5),
        2 => format!("SELECT c{}, c{} FROM t{}", i % 13, i % 17, i % 4),
        3 => format!("SELECT c{} FROM t{} WHERE a{} > ?", i % 11, i % 4, i % 7),
        4 => format!("SELECT c{} FROM t{} WHERE x{} = ? OR y{} = ?", i % 5, i % 3, i % 5, i % 3),
        5 => "THIS IS NOT SQL @@@".to_string(),
        _ => format!("SELECT balance FROM accounts WHERE owner{} = ?", i % 6),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance property: for every feature the workload knows,
    /// the typed predicate path estimates the same count as the legacy
    /// slice path, to the bit — single features and conjunctions alike.
    #[test]
    fn frequency_is_bit_identical_to_estimate_count_features(
        seeds in prop::collection::vec(0u64..60, 12..90),
        counts in prop::collection::vec(1u64..4, 12..90),
        window in 8u64..24,
    ) {
        let engine = Engine::builder().window(window).clusters(3).in_memory().unwrap();
        for (s, c) in seeds.iter().zip(counts.iter().cycle()) {
            engine.ingest_with_count(&statement(*s), *c).unwrap();
        }
        engine.flush().unwrap();
        let snap = engine.snapshot().unwrap();
        let Some(query) = snap.query().unwrap() else {
            // Nothing parsed — both surfaces must agree on "nothing".
            #[allow(deprecated)]
            let legacy = snap.estimate_count_features(&[Feature::select("c1")]).unwrap();
            prop_assert_eq!(legacy, 0.0);
            return Ok(());
        };

        let features: Vec<Feature> =
            snap.history().codebook().iter().map(|(_, f)| f.clone()).collect();
        for f in &features {
            #[allow(deprecated)]
            let legacy = snap.estimate_count_features(std::slice::from_ref(f)).unwrap();
            let typed = query.frequency(&Pred::feature(f.clone())).unwrap();
            prop_assert_eq!(typed.to_bits(), legacy.to_bits(), "feature {}", f);
        }
        // Conjunctions resolve to the identical sorted pattern vector.
        for pair in features.windows(2) {
            #[allow(deprecated)]
            let legacy = snap.estimate_count_features(pair).unwrap();
            let typed = query.frequency(&Pred::all_of(pair.iter().cloned())).unwrap();
            prop_assert_eq!(typed.to_bits(), legacy.to_bits());
        }
        // An unknown feature is a typed error on the new surface and a
        // silent zero on the legacy one.
        let unknown = Feature::from_table("no_such_table_anywhere");
        #[allow(deprecated)]
        let legacy = snap.estimate_count_features(std::slice::from_ref(&unknown)).unwrap();
        prop_assert_eq!(legacy, 0.0);
        prop_assert!(matches!(
            query.frequency(&Pred::feature(unknown)),
            Err(Error::UnknownFeature { .. })
        ));
    }
}

/// A small but diverse engine workload shared by the non-property tests.
fn demo_engine() -> Engine {
    let engine = Engine::builder().window(64).clusters(3).in_memory().unwrap();
    for i in 0..400u64 {
        engine.ingest(&statement(i)).unwrap();
    }
    engine.flush().unwrap();
    engine
}

#[test]
fn index_advisor_reproduces_the_legacy_advise_loop() {
    let engine = demo_engine();
    let snap = engine.snapshot().unwrap();
    let summary = snap.summary().unwrap().expect("non-empty");
    let total = snap.history().total_queries() as f64;

    // The pre-redesign EngineSnapshot::advise body, verbatim.
    let mut expected: Vec<(String, f64, f64)> = Vec::new();
    for (id, feature) in snap.history().codebook().iter() {
        if feature.class != FeatureClass::Where {
            continue;
        }
        let estimated = summary.estimate_count(&QueryVector::new(vec![id]));
        let share = estimated / total;
        if share >= 0.01 {
            expected.push((feature.text.clone(), estimated, share));
        }
    }
    expected.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    let advice = IndexAdvisor::new(0.01).advise(&*snap).unwrap();
    assert_eq!(advice.len(), expected.len());
    assert!(!advice.is_empty(), "workload has WHERE predicates");
    for (a, (text, est, share)) in advice.iter().zip(&expected) {
        assert_eq!(&a.subject, text);
        assert_eq!(a.estimated.to_bits(), est.to_bits());
        assert_eq!(a.share.to_bits(), share.to_bits());
        assert_eq!(a.features, vec![Feature::where_atom(text.clone())]);
    }

    // Engine and snapshot paths are the same implementation.
    let via_engine = engine.advise(0.01).unwrap();
    let via_snapshot = snap.advise(0.01).unwrap();
    assert_eq!(via_engine, via_snapshot);
    assert_eq!(via_engine.len(), advice.len());
    for (legacy, a) in via_engine.iter().zip(&advice) {
        assert_eq!(legacy.predicate, a.subject);
        assert_eq!(legacy.estimated.to_bits(), a.estimated.to_bits());
        assert_eq!(legacy.share.to_bits(), a.share.to_bits());
    }
}

#[test]
fn view_advisor_reproduces_the_example_computation() {
    // The former examples/view_advisor.rs pipeline on a (scaled) seeded
    // US-bank workload: kmeans mixture, FROM-pair scan, est ≥ 1 floor,
    // descending sort, ≥ 1% advisor cut.
    let (log, _) = generate_usbank(&UsBankConfig::small(42)).ingest();
    let clustering = cluster_log(&log, 16, ClusterMethod::KMeansEuclidean, 0);
    let mixture = NaiveMixtureEncoding::build(&log, &clustering);
    let total = log.total_queries() as f64;

    let tables: Vec<_> = log
        .codebook()
        .iter()
        .filter(|(_, f)| f.class == FeatureClass::From)
        .map(|(id, f)| (id, f.text.clone()))
        .collect();
    let mut expected: Vec<(String, f64)> = Vec::new();
    for (i, (ida, a)) in tables.iter().enumerate() {
        for (idb, b) in &tables[i + 1..] {
            let est = mixture.estimate_count(&QueryVector::new(vec![*ida, *idb]));
            if est < 1.0 {
                continue;
            }
            expected.push((format!("{a} ⋈ {b}"), est));
        }
    }
    expected.sort_by(|x, y| y.1.total_cmp(&x.1));

    // min_share 0: parity over the full candidate list (the example's
    // ≥ 1% advisor cut is just a retain on `share`).
    let summary = LogRSummary { clustering, mixture, refined: None };
    let view = SummaryView::new(summary, &log);
    let advice = ViewAdvisor::new(0.0).advise(&view).unwrap();

    assert_eq!(advice.len(), expected.len());
    assert!(!advice.is_empty(), "workload has co-occurring tables");
    for (a, (subject, est)) in advice.iter().zip(&expected) {
        assert_eq!(&a.subject, subject);
        assert_eq!(a.estimated.to_bits(), est.to_bits());
        assert_eq!(a.share.to_bits(), (est / total).to_bits());
        assert_eq!(a.features.len(), 2);
    }
}

#[test]
fn query_recommender_reproduces_the_example_computation() {
    // The former examples/query_recommendation.rs pipeline on the seeded
    // PocketData workload: featurize the fragment, conditional-marginal
    // rank every other feature, keep > 10%.
    let (log, _) = generate_pocketdata(&PocketDataConfig::small(7)).ingest();
    let summary =
        LogR::new(LogRConfig { objective: CompressionObjective::FixedK(8), ..Default::default() })
            .compress(&log);

    let partial_sql = "SELECT sms_type FROM messages WHERE status = ?";
    let mut probe = LogIngest::new();
    probe.ingest(partial_sql);
    let (probe_log, _) = probe.finish();
    let mut partial_ids = Vec::new();
    for (_, feature) in probe_log.codebook().iter() {
        if let Some(id) = log.codebook().get(feature) {
            partial_ids.push(id);
        }
    }
    let partial: QueryVector = partial_ids.into_iter().collect();
    let base = summary.estimate_count(&partial);
    assert!(base > 0.0, "fragment must be known to the seeded workload");

    let mut expected: Vec<(String, f64)> = Vec::new();
    for (id, feature) in log.codebook().iter() {
        if partial.contains(id) {
            continue;
        }
        let mut extended_ids: Vec<_> = partial.iter().collect();
        extended_ids.push(id);
        let conditional = summary.estimate_count(&QueryVector::new(extended_ids)) / base;
        if conditional > 0.10 {
            expected.push((feature.text.clone(), conditional));
        }
    }
    expected.sort_by(|a, b| b.1.total_cmp(&a.1));

    let view = SummaryView::new(summary, &log);
    let advice = QueryRecommender::new(partial_sql, 0.10).advise(&view).unwrap();

    assert_eq!(advice.len(), expected.len());
    assert!(!advice.is_empty(), "fragment has likely continuations");
    for (a, (text, conditional)) in advice.iter().zip(&expected) {
        assert_eq!(&a.subject, text);
        assert_eq!(a.share.to_bits(), conditional.to_bits());
        assert!((a.estimated - conditional * base).abs() < 1e-9);
    }
}

#[test]
fn advisor_thresholds_are_validated_as_probabilities() {
    let engine = demo_engine();
    let snap = engine.snapshot().unwrap();
    for bad in [f64::NAN, -0.1, 1.5, f64::INFINITY, f64::NEG_INFINITY] {
        assert!(
            matches!(engine.advise(bad), Err(Error::Config { .. })),
            "Engine::advise accepted {bad}"
        );
        assert!(
            matches!(snap.advise(bad), Err(Error::Config { .. })),
            "EngineSnapshot::advise accepted {bad}"
        );
        assert!(matches!(IndexAdvisor::new(bad).advise(&*snap), Err(Error::Config { .. })));
        assert!(matches!(ViewAdvisor::new(bad).advise(&*snap), Err(Error::Config { .. })));
        assert!(matches!(
            QueryRecommender::new("SELECT balance FROM accounts", bad).advise(&*snap),
            Err(Error::Config { .. })
        ));
    }
    // The boundary values are legal.
    assert!(engine.advise(0.0).is_ok());
    assert!(engine.advise(1.0).is_ok());
}

#[test]
fn advisors_are_empty_not_erroring_before_any_close() {
    let engine = Engine::builder().window(1024).clusters(2).in_memory().unwrap();
    engine.ingest("SELECT a FROM t WHERE b = ?").unwrap();
    // No window closed yet: no summary, so every advisor yields nothing.
    let snap = engine.snapshot().unwrap();
    assert!(snap.query().unwrap().is_none());
    assert!(IndexAdvisor::new(0.0).advise(&*snap).unwrap().is_empty());
    assert!(ViewAdvisor::new(0.0).advise(&*snap).unwrap().is_empty());
    assert!(QueryRecommender::new("SELECT a FROM t", 0.0).advise(&*snap).unwrap().is_empty());
    assert!(snap.advise(0.0).unwrap().is_empty());
    assert!(snap.multiresolution(&[1, 2]).unwrap().is_empty());
    assert!(snap.summary_with(CompressionObjective::FixedK(2)).unwrap().is_none());
}

#[test]
fn unknown_fragment_recommender_is_empty() {
    let engine = demo_engine();
    let snap = engine.snapshot().unwrap();
    let advice =
        QueryRecommender::new("SELECT zz9 FROM plural_z WHERE q9 = ?", 0.0).advise(&*snap).unwrap();
    assert!(advice.is_empty());
}

#[test]
fn snapshot_summary_with_and_multiresolution_agree_with_the_memoized_cut() {
    let engine = demo_engine();
    let snap = engine.snapshot().unwrap();
    // The engine runs k = 3: the read-time FixedK(3) recompression and
    // the multiresolution cut at 3 must both reproduce the memoized
    // summary bit-for-bit (one dendrogram serves all three paths).
    let memoized = snap.summary().unwrap().expect("non-empty");
    let fixed = snap.summary_with(CompressionObjective::FixedK(3)).unwrap().expect("non-empty");
    assert_eq!(fixed.clustering, memoized.clustering);
    assert_eq!(fixed.error().to_bits(), memoized.error().to_bits());

    let sweep = snap.multiresolution(&[1, 3, 8]).unwrap();
    assert_eq!(sweep.len(), 3);
    assert_eq!(sweep[1].clustering, memoized.clustering);
    assert_eq!(sweep[1].error().to_bits(), memoized.error().to_bits());
    // Finer cuts never increase verbosity ordering-wise.
    assert!(sweep[0].total_verbosity() <= sweep[2].total_verbosity());
}

#[test]
fn workload_query_composes_over_live_snapshots() {
    let engine = demo_engine();
    let snap = engine.snapshot().unwrap();
    let query = snap.query().unwrap().expect("non-empty");
    // Inclusion–exclusion sanity on a live snapshot: |A ∪ B| = |A| + |B| − |A ∩ B|.
    let a = Pred::table("t0");
    let b = Pred::table("accounts");
    let union = query.frequency(&a.clone().or(b.clone())).unwrap();
    let lhs = query.frequency(&a.clone()).unwrap() + query.frequency(&b.clone()).unwrap()
        - query.frequency(&a.clone().and(b.clone())).unwrap();
    assert!((union - lhs).abs() < 1e-9);
    // Conditional agrees with its definition.
    let c = query.conditional(&a, &b).unwrap();
    let direct = query.frequency(&a.clone().and(b.clone())).unwrap() / query.frequency(&a).unwrap();
    assert!((c - direct).abs() < 1e-12);
    // top_k covers the workload's tables, descending.
    let tables = query.top_k(FeatureClass::From, 64).unwrap();
    assert!(!tables.is_empty());
    for w in tables.windows(2) {
        assert!(w[0].estimated >= w[1].estimated);
    }
}

#[test]
fn workload_query_over_a_batch_summary_matches_the_engine_path() {
    // One workload, two roads to a WorkloadQuery: the engine snapshot and
    // a hand-built batch summary over the same history log with the same
    // compressor configuration — estimates agree bit-for-bit.
    let engine = demo_engine();
    let snap = engine.snapshot().unwrap();
    let query = snap.query().unwrap().expect("non-empty");

    let batch = snap.summary().unwrap().expect("non-empty");
    let batch_query = WorkloadQuery::new(batch, snap.history());
    for (_, f) in snap.history().codebook().iter().take(16) {
        let a = query.frequency(&Pred::feature(f.clone())).unwrap();
        let b = batch_query.frequency(&Pred::feature(f.clone())).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn negated_predicates_complement_on_live_snapshots() {
    // PR 10 satellite: Pred::not estimates complements through the
    // mixture, in parity with 1 − frequency-share on the same snapshot.
    let engine = demo_engine();
    let snap = engine.snapshot().unwrap();
    let query = snap.query().unwrap().expect("non-empty");
    let top = query.summary().estimate_count(&QueryVector::empty());
    for (_, f) in snap.history().codebook().iter().take(24) {
        let p = Pred::feature(f.clone());
        let yes = query.frequency(&p).unwrap();
        let no = query.frequency(&p.clone().not()).unwrap();
        assert!((no - (top - yes)).abs() < 1e-6, "feature {f}: {no} vs {}", top - yes);
    }
    // ¬a ∧ ¬b via De Morgan agrees with 1 − share(a ∨ b).
    let a = Pred::table("t0");
    let b = Pred::table("accounts");
    let neither = query.frequency(&a.clone().or(b.clone()).not()).unwrap();
    let direct = top - query.frequency(&a.clone().or(b.clone())).unwrap();
    assert!((neither - direct).abs() < 1e-6);
}

#[test]
fn all_four_advisors_render_dba_facing_text() {
    // PR 10 satellite: every shipped advisor's picks render through the
    // shared interpret renderer — shade glyph, subject, percentage.
    let engine = demo_engine();
    let snap = engine.snapshot().unwrap();
    let drifty = Engine::builder().window(32).clusters(2).in_memory().unwrap();
    for _ in 0..32 {
        drifty.ingest("SELECT id FROM messages WHERE status = ?").unwrap();
    }
    for _ in 0..32 {
        drifty.ingest("SELECT total FROM invoices WHERE region = ?").unwrap();
    }
    let drifty_snap = drifty.snapshot().unwrap();
    let reports: Vec<(&str, Vec<logr::analytics::Advice>)> = vec![
        ("index", IndexAdvisor::new(0.0).advise(&*snap).unwrap()),
        ("view", ViewAdvisor::new(0.0).advise(&*snap).unwrap()),
        (
            "recommend",
            QueryRecommender::new("SELECT balance FROM accounts", 0.0).advise(&*snap).unwrap(),
        ),
        ("drift", DriftAdvisor::new(0.0).advise(&*drifty_snap).unwrap()),
    ];
    for (name, advice) in &reports {
        assert!(!advice.is_empty(), "{name} advisor produced no picks to render");
        let text = logr::analytics::render_report(advice);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), advice.len(), "{name}: one line per pick");
        for (line, pick) in lines.iter().zip(advice) {
            assert!(
                line.contains(&pick.subject),
                "{name}: line {line:?} must carry its subject {:?}",
                pick.subject
            );
            assert!(line.contains('%'), "{name}: line {line:?} must annotate a percentage");
            let glyph = line.chars().next().unwrap();
            assert!(
                ['█', '▓', '▒', '░'].contains(&glyph),
                "{name}: line {line:?} must lead with a shade glyph"
            );
        }
    }
    // Empty advice renders a sentinel, never silence.
    assert_eq!(logr::analytics::render_report(&[]), "(no advice)");
}

#[test]
fn drift_advisor_mirrors_engine_drift() {
    // PR 9 satellite: drift alarms flow through the Advisor trait with
    // the exact numbers [`Engine::drift`] reports — same overall
    // divergence, one alarm per new feature, one alarm per baseline
    // feature whose per-feature divergence exceeds the tolerance.
    let engine = Engine::builder().window(32).clusters(2).in_memory().unwrap();
    for _ in 0..32 {
        engine.ingest("SELECT id, body FROM messages WHERE status = ?").unwrap();
    }
    for _ in 0..32 {
        engine.ingest("SELECT total FROM invoices WHERE region = ?").unwrap();
    }
    let report = engine.drift().unwrap().expect("second window reports drift");
    assert!(!report.new_features.is_empty(), "workload swap must surface new features");

    let snap = engine.snapshot().unwrap();
    let advice = DriftAdvisor::new(0.0).advise(&*snap).unwrap();

    // Leading aggregate alarm carries the report's overall divergence.
    assert_eq!(advice[0].kind, AdviceKind::Drift);
    assert_eq!(advice[0].subject, "workload drift");
    assert!((advice[0].estimated - report.overall).abs() < 1e-12);
    // Every alarm in the family is typed Drift.
    assert!(advice.iter().all(|a| a.kind == AdviceKind::Drift));
    // One alarm per new feature, rendered exactly as the report renders it.
    for text in &report.new_features {
        assert!(advice.iter().any(|a| &a.subject == text), "missing new-feature alarm: {text}");
    }
    // One alarm per baseline feature above tolerance, js carried through,
    // subject resolved against the baseline codebook (never "feature #N").
    let over: Vec<_> = report.per_feature.iter().filter(|(_, js)| *js > 0.0).collect();
    for (id, js) in &over {
        let feature = snap.baseline().codebook().feature(*id).to_string();
        let alarm = advice
            .iter()
            .find(|a| a.subject == feature)
            .unwrap_or_else(|| panic!("missing per-feature alarm: {feature}"));
        assert!((alarm.estimated - js).abs() < 1e-12);
    }
    assert_eq!(advice.len(), 1 + report.new_features.len() + over.len());

    // A stable workload (identical windows) raises no alarms.
    let calm = Engine::builder().window(32).clusters(2).in_memory().unwrap();
    for _ in 0..64 {
        calm.ingest("SELECT id, body FROM messages WHERE status = ?").unwrap();
    }
    let calm_snap = calm.snapshot().unwrap();
    assert!(DriftAdvisor::new(1e-6).advise(&*calm_snap).unwrap().is_empty());

    // Thresholds are validated like every other advisor's.
    assert!(matches!(DriftAdvisor::new(f64::NAN).advise(&*snap), Err(Error::Config { .. })));
    assert!(matches!(DriftAdvisor::new(-0.5).advise(&*snap), Err(Error::Config { .. })));
}
